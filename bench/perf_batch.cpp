// Bit-parallel trial-batch benchmark: the scalar-vs-batched acceptance
// harness for the 64-trials-per-word Monte-Carlo kernel.
//
// main() runs hard validation gates before any timing:
//   1. batch dead sets are bit-identical to the scalar sampler lane by
//      lane (including the post-draw rng stream state),
//   2. run_trials under the default (batched) engine is bit-identical to
//      TrialEngine::kScalar at every thread count and every moment,
//   3. the batched pipeline feeds ConnectivityObserver and the scalar
//      observers the same numbers as the scalar pipeline,
//   4. the steady-state batch loop (sample + all three aggregate passes)
//      performs ZERO heap allocations,
//   5. figure-checkpoint sanity through the batch path: uniform p = 0.01
//      at 150 km spacing loses ~15.8% of submarine cables / ~11.0% of
//      nodes (paper §4.3.1).
// Any failure exits non-zero, so CI's bench smoke job doubles as an
// equivalence gate. Then it times scalar-engine run_trials against the
// batched engine on the same budget, asserts the >= 5x acceptance
// speedup, and emits BENCH_batch.json.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench_util.h"
#include "datasets/submarine.h"
#include "gic/failure_model.h"
#include "services/availability.h"
#include "sim/monte_carlo.h"
#include "sim/pipeline.h"
#include "sim/trial_batch.h"
#include "util/bitset.h"
#include "util/rng.h"

// --- global allocation counter ----------------------------------------------
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace solarnet;

const topo::InfrastructureNetwork& submarine() {
  static const auto net = datasets::make_submarine_network({});
  return net;
}

sim::TrialConfig config_with(sim::TrialEngine engine, std::size_t threads) {
  sim::TrialConfig cfg;
  cfg.engine = engine;
  cfg.threads = threads;
  return cfg;
}

const gic::LatitudeBandFailureModel& s1_model() {
  static const auto model = gic::LatitudeBandFailureModel::s1();
  return model;
}

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "perf_batch equivalence check FAILED: %s\n", what);
  std::exit(1);
}

void check_stats_identical(const util::RunningStats& a,
                           const util::RunningStats& b, const char* what) {
  if (a.count() != b.count() || a.mean() != b.mean() ||
      a.sample_stddev() != b.sample_stddev() || a.min() != b.min() ||
      a.max() != b.max()) {
    fail(what);
  }
}

// --- validation gates -------------------------------------------------------

// Gate 1: lane-by-lane dead sets and post-draw stream states equal the
// scalar sampler's.
void check_sampler_bit_identity() {
  const sim::FailureSimulator simulator(
      submarine(), config_with(sim::TrialEngine::kAuto, 1));
  const auto table = simulator.death_probability_table(s1_model());
  const sim::TrialBatchKernel kernel(simulator, table);
  const util::Rng base(911);
  sim::TrialBatch batch;
  util::Bitset lane_dead, scalar_dead;
  for (const std::size_t first : {std::size_t{0}, std::size_t{64},
                                  std::size_t{4096}}) {
    kernel.sample(base, first, sim::TrialBatchKernel::kLanes, batch);
    for (unsigned lane = 0; lane < batch.lanes; ++lane) {
      kernel.extract_lane(batch, lane, lane_dead);
      util::Rng rng = base.split(first + lane);
      simulator.sample_cable_failures(table, rng, scalar_dead);
      if (!(lane_dead == scalar_dead)) {
        fail("batch dead set diverged from the scalar sampler");
      }
      if (batch.lane_rng[lane].next_u64() != rng.next_u64()) {
        fail("post-draw rng state diverged from the scalar sampler");
      }
    }
  }
}

// Gate 2: run_trials is engine- and thread-invariant, moment for moment.
void check_run_trials_bit_identity() {
  constexpr std::size_t kTrials = 300;
  constexpr std::uint64_t kSeed = 42;
  const sim::FailureSimulator scalar_sim(
      submarine(), config_with(sim::TrialEngine::kScalar, 1));
  const sim::AggregateResult reference =
      scalar_sim.run_trials(s1_model(), kTrials, kSeed);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    const sim::FailureSimulator batched_sim(
        submarine(), config_with(sim::TrialEngine::kAuto, threads));
    const sim::AggregateResult batched =
        batched_sim.run_trials(s1_model(), kTrials, kSeed);
    if (batched.trials != reference.trials) {
      fail("batched run_trials trial count diverged from scalar engine");
    }
    check_stats_identical(batched.cables_failed_pct,
                          reference.cables_failed_pct,
                          "cables-failed diverged from the scalar engine");
    check_stats_identical(batched.nodes_unreachable_pct,
                          reference.nodes_unreachable_pct,
                          "nodes-unreachable diverged from the scalar engine");
  }
}

// Gate 3: the batched pipeline (fast-path ConnectivityObserver + scalar
// AvailabilityObserver over reconstructed lanes) matches the scalar
// pipeline at every thread count.
void check_pipeline_bit_identity() {
  constexpr std::size_t kTrials = 200;
  constexpr std::uint64_t kSeed = 63;
  services::ServiceSpec spec;
  spec.name = "probe";
  spec.replicas = {{40.7, -74.0}, {1.35, 103.8}, {51.5, -0.1}};
  spec.write_quorum = 2;

  const sim::FailureSimulator scalar_sim(
      submarine(), config_with(sim::TrialEngine::kScalar, 1));
  sim::TrialPipeline scalar_pipeline(scalar_sim, s1_model());
  sim::ConnectivityObserver scalar_conn;
  services::AvailabilityObserver scalar_avail(submarine(), spec);
  scalar_pipeline.add_observer(scalar_conn);
  scalar_pipeline.add_observer(scalar_avail);
  scalar_pipeline.run(kTrials, kSeed, 1);

  const sim::FailureSimulator batched_sim(
      submarine(), config_with(sim::TrialEngine::kAuto, 1));
  sim::TrialPipeline pipeline(batched_sim, s1_model());
  sim::ConnectivityObserver conn;
  services::AvailabilityObserver avail(submarine(), spec);
  pipeline.add_observer(conn);
  pipeline.add_observer(avail);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    pipeline.run(kTrials, kSeed, threads);
    check_stats_identical(conn.result().cables_failed_pct,
                          scalar_conn.result().cables_failed_pct,
                          "pipeline cables-failed diverged from scalar path");
    check_stats_identical(
        conn.result().nodes_unreachable_pct,
        scalar_conn.result().nodes_unreachable_pct,
        "pipeline nodes-unreachable diverged from scalar path");
    check_stats_identical(
        conn.result().largest_component_pct,
        scalar_conn.result().largest_component_pct,
        "pipeline largest-component diverged from scalar path");
    check_stats_identical(avail.result().read_availability,
                          scalar_avail.result().read_availability,
                          "read availability diverged from scalar path");
    check_stats_identical(avail.result().write_availability,
                          scalar_avail.result().write_availability,
                          "write availability diverged from scalar path");
  }
}

// Gate 4: once the TrialBatch and scratch are warm, the batch loop
// (sample + cables + nodes + components) never allocates.
void check_zero_steady_state_allocations() {
  const sim::FailureSimulator simulator(
      submarine(), config_with(sim::TrialEngine::kAuto, 1));
  const auto table = simulator.death_probability_table(s1_model());
  const sim::TrialBatchKernel kernel(simulator, table);
  const util::Rng base(55);
  sim::TrialBatch batch;
  sim::BatchConnectivityScratch scratch;
  std::uint32_t cables[sim::TrialBatchKernel::kLanes];
  std::uint32_t nodes[sim::TrialBatchKernel::kLanes];
  std::uint32_t largest[sim::TrialBatchKernel::kLanes];
  constexpr std::size_t kBatches = 4;
  auto loop = [&] {
    for (std::size_t b = 0; b < kBatches; ++b) {
      kernel.sample(base, b * sim::TrialBatchKernel::kLanes,
                    sim::TrialBatchKernel::kLanes, batch);
      kernel.count_cables_failed(batch, cables);
      kernel.count_unreachable_nodes(batch, nodes);
      kernel.largest_components(batch, scratch, largest);
    }
  };
  loop();  // warm every buffer over the same sequence
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  loop();
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  if (after != before) {
    std::fprintf(stderr,
                 "perf_batch equivalence check FAILED: steady-state batch "
                 "loop allocated %zu times over %zu batches\n",
                 after - before, kBatches);
    std::exit(1);
  }
}

// Gate 5: paper §4.3.1 checkpoint through the batched engine: uniform
// p = 0.01 at the default 150 km repeater spacing loses ~15.8% of
// submarine cables and ~11.0% of nodes.
void check_figure_checkpoints() {
  const gic::UniformFailureModel model(0.01);
  const sim::FailureSimulator simulator(
      submarine(), config_with(sim::TrialEngine::kAuto, 1));
  const sim::AggregateResult agg = simulator.run_trials(model, 512, 2021);
  std::printf(
      "perf_batch: p=0.01 checkpoint: %.1f%% cables, %.1f%% nodes "
      "(paper: 15.8%% / 11.0%%)\n",
      agg.cables_failed_pct.mean(), agg.nodes_unreachable_pct.mean());
  if (std::abs(agg.cables_failed_pct.mean() - 15.8) > 2.0 ||
      std::abs(agg.nodes_unreachable_pct.mean() - 11.0) > 2.5) {
    fail("figure checkpoint drifted from the paper's §4.3.1 values");
  }
}

}  // namespace

int main() {
  check_sampler_bit_identity();
  check_run_trials_bit_identity();
  check_pipeline_bit_identity();
  check_zero_steady_state_allocations();
  check_figure_checkpoints();
  std::printf("perf_batch: all equivalence checks passed\n");

  // --- timing: the acceptance comparison ------------------------------------
  // Same network, model, seed, and trial budget; single-threaded so the
  // comparison is engine layout only (trial-major Bitset loop vs
  // cable-major 64-lane words). The scalar engine is the PR 5 baseline
  // run_trials path, forced via TrialEngine::kScalar.
  constexpr std::size_t kTrials = 512;
  constexpr std::uint64_t kSeed = 1859;
  const sim::FailureSimulator scalar_sim(
      submarine(), config_with(sim::TrialEngine::kScalar, 1));
  const sim::FailureSimulator batched_sim(
      submarine(), config_with(sim::TrialEngine::kAuto, 1));

  const double scalar_ms = benchutil::time_best_ms([&] {
    const sim::AggregateResult agg =
        scalar_sim.run_trials(s1_model(), kTrials, kSeed);
    if (agg.trials != kTrials) std::exit(1);
  });
  const double batched_ms = benchutil::time_best_ms([&] {
    const sim::AggregateResult agg =
        batched_sim.run_trials(s1_model(), kTrials, kSeed);
    if (agg.trials != kTrials) std::exit(1);
  });

  const double speedup = scalar_ms / batched_ms;
  const double cables = static_cast<double>(submarine().cable_count());
  std::printf("perf_batch: run_trials, %zu trials, %.0f-cable network, "
              "1 thread\n",
              kTrials, cables);
  std::printf("  scalar engine (trial-major):  %10.3f ms  (%8.3f us/trial)\n",
              scalar_ms, 1000.0 * scalar_ms / static_cast<double>(kTrials));
  std::printf("  batched engine (cable-major): %10.3f ms  (%8.3f us/trial)\n",
              batched_ms, 1000.0 * batched_ms / static_cast<double>(kTrials));
  std::printf("  speedup (scalar/batched):     %10.2fx\n", speedup);

  benchutil::write_bench_json(
      "batch", {{"trials", static_cast<double>(kTrials), "count"},
                {"scalar_run_trials_ms", scalar_ms, "ms"},
                {"batched_run_trials_ms", batched_ms, "ms"},
                {"scalar_us_per_trial",
                 1000.0 * scalar_ms / static_cast<double>(kTrials), "us"},
                {"batched_us_per_trial",
                 1000.0 * batched_ms / static_cast<double>(kTrials), "us"},
                {"speedup", speedup, "x"}});

  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "perf_batch FAILED: speedup %.2fx below the 5x acceptance "
                 "threshold\n",
                 speedup);
    return 1;
  }
  return 0;
}
