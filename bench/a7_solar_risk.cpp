// §2 extension: solar-activity risk arithmetic. Regenerates the occurrence
// statistics the paper's motivation rests on: 2.6-5.2 direct impacts per
// century, 1.6-12% per-decade Carrington probability, the 9% Bernoulli
// footnote, cycle-25 strength scenarios, and the Gleissberg modulation of
// near-term risk.
#include <iostream>

#include "solar/cycle.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace solarnet;

  const solar::SolarCycleModel cycle;
  util::print_banner(std::cout, "Solar cycle model");
  util::TextTable ssn({"year", "sunspot number", "relative CME rate"});
  for (double year : {2014.0, 2019.96, 2025.5, 2031.0, 2063.96, 2069.5}) {
    ssn.add_row({util::format_fixed(year, 1),
                 util::format_fixed(cycle.sunspot_number(year), 0),
                 util::format_fixed(cycle.relative_event_rate(year), 2)});
  }
  ssn.print(std::cout);
  std::cout << "paper §2.3: cycle 24 peaked at 116; cycle 25 forecasts "
               "ranged from weak to 210-260; the Gleissberg maximum in the "
               "2060s roughly doubles peak activity\n";

  util::print_banner(std::cout,
                     "Extreme-event probabilities (paper: 2.6-5.2 direct "
                     "impacts/century; Carrington 1.6-12% per decade)");
  util::TextTable risk({"events/century", "P(direct impact)/decade",
                        "P(Carrington)/decade"});
  for (double rate : {2.6, 3.9, 5.2}) {
    solar::ExtremeEventRiskParams params;
    params.events_per_century = rate;
    const solar::ExtremeEventRisk r{cycle, params};
    risk.add_row(
        {util::format_fixed(rate, 1),
         util::format_fixed(100.0 * r.probability_of_event(2020.0, 10.0,
                                                           false),
                            1) +
             "%",
         util::format_fixed(
             100.0 * r.probability_of_carrington(2020.0, 10.0, false), 1) +
             "%"});
  }
  risk.print(std::cout);

  std::cout << "Bernoulli footnote check: once-in-100-years event per "
               "decade = "
            << util::format_fixed(
                   100.0 *
                       solar::ExtremeEventRisk::bernoulli_decade_probability(
                           100.0),
                   1)
            << "% (paper: 9%)\n";

  util::print_banner(std::cout,
                     "Gleissberg modulation of decade risk (modulated "
                     "Poisson)");
  const solar::ExtremeEventRisk risk_model{cycle};
  util::TextTable mod({"decade", "P(direct impact)"});
  for (double start : {2020.0, 2030.0, 2040.0, 2050.0, 2060.0, 2070.0}) {
    mod.add_row(
        {util::format_fixed(start, 0) + "s",
         util::format_fixed(
             100.0 * risk_model.probability_of_event(start, 10.0, true), 1) +
             "%"});
  }
  mod.print(std::cout);
  std::cout << "paper §2.3: the coming decades climb out of the Gleissberg "
               "minimum — 'the current Internet infrastructure has not "
               "been stress-tested by strong solar events'\n";
  return 0;
}
