// Trial-pipeline benchmark: the old-vs-new acceptance harness for the
// unified trial-observer pipeline (one failure draw, every metric).
//
// main() runs hard validation gates before any timing:
//   1. ConnectivityObserver is bit-identical to FailureSimulator::run_trials
//      (same seed, same trial count, every moment),
//   2. AvailabilityObserver is bit-identical to services::availability_sweep,
//   3. DnsResolutionObserver matches a serial replay of the same split
//      streams through DnsResolutionEvaluator exactly,
//   4. CountryIsolationObserver converges to the analytic
//      all_fail_probability / expected_survivors (4 SE at 512 trials) and is
//      exact at the deterministic p = 1 endpoint,
//   5. the full observer set is bit-identical across thread counts,
//   6. the steady-state trial loop performs ZERO heap allocations,
//   7. figure-checkpoint sanity: uniform p = 0.01 at 150 km spacing loses
//      ~15.8% of submarine cables / ~11.0% of nodes (paper §4.3.1).
// Any failure exits non-zero, so CI's bench smoke job doubles as an
// equivalence gate. Then it times the old multi-metric report path (one
// independent Monte-Carlo pass per metric, each redrawing failures and
// re-decomposing components) against one pipeline pass fanning the shared
// draw out to all five observers, asserts the >= 3x acceptance speedup,
// and emits BENCH_pipeline.json.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "analysis/country.h"
#include "analysis/dns_resolution.h"
#include "bench_util.h"
#include "datasets/datacenters.h"
#include "datasets/infra_points.h"
#include "datasets/submarine.h"
#include "services/availability.h"
#include "sim/monte_carlo.h"
#include "sim/pipeline.h"
#include "util/rng.h"

// --- global allocation counter ----------------------------------------------
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace solarnet;

const topo::InfrastructureNetwork& submarine() {
  static const auto net = datasets::make_submarine_network({});
  return net;
}

// Single-threaded simulator so old-vs-new timing compares equal budgets.
const sim::FailureSimulator& submarine_sim() {
  static const sim::FailureSimulator s(submarine(), [] {
    sim::TrialConfig cfg;
    cfg.threads = 1;
    return cfg;
  }());
  return s;
}

const gic::LatitudeBandFailureModel& s1_model() {
  static const auto model = gic::LatitudeBandFailureModel::s1();
  return model;
}

services::ServiceSpec datacenter_service(datasets::DataCenterOperator op) {
  services::ServiceSpec spec;
  spec.name = std::string(datasets::to_string(op));
  for (const datasets::DataCenter& dc : datasets::datacenters_of(op)) {
    spec.replicas.push_back(dc.location);
  }
  spec.write_quorum = 2;
  return spec;
}

const std::vector<datasets::DnsRootInstance>& dns_roots() {
  static const auto roots = datasets::make_dns_dataset({});
  return roots;
}

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "perf_pipeline equivalence check FAILED: %s\n", what);
  std::exit(1);
}

void check_stats_identical(const util::RunningStats& a,
                           const util::RunningStats& b, const char* what) {
  if (a.count() != b.count() || a.mean() != b.mean() ||
      a.sample_stddev() != b.sample_stddev() || a.min() != b.min() ||
      a.max() != b.max()) {
    fail(what);
  }
}

// --- validation gates -------------------------------------------------------

void check_connectivity_bit_identity() {
  constexpr std::size_t kTrials = 256;
  const sim::AggregateResult reference =
      submarine_sim().run_trials(s1_model(), kTrials, 42);
  sim::TrialPipeline pipeline(submarine_sim(), s1_model());
  sim::ConnectivityObserver connectivity;
  pipeline.add_observer(connectivity);
  pipeline.run(kTrials, 42, 1);
  if (connectivity.result().trials != reference.trials) {
    fail("connectivity trial counts diverged from run_trials");
  }
  check_stats_identical(connectivity.result().cables_failed_pct,
                        reference.cables_failed_pct,
                        "cables-failed stats diverged from run_trials");
  check_stats_identical(connectivity.result().nodes_unreachable_pct,
                        reference.nodes_unreachable_pct,
                        "nodes-unreachable stats diverged from run_trials");
}

void check_availability_bit_identity() {
  constexpr std::size_t kDraws = 256;
  const services::ServiceSpec spec =
      datacenter_service(datasets::DataCenterOperator::kGoogle);
  const services::AvailabilitySweep reference = services::availability_sweep(
      submarine_sim(), s1_model(), spec, kDraws, 77, 1);
  sim::TrialPipeline pipeline(submarine_sim(), s1_model());
  services::AvailabilityObserver availability(submarine(), spec);
  pipeline.add_observer(availability);
  pipeline.run(kDraws, 77, 1);
  if (availability.result().draws != reference.draws) {
    fail("availability draw counts diverged from availability_sweep");
  }
  check_stats_identical(availability.result().read_availability,
                        reference.read_availability,
                        "read availability diverged from availability_sweep");
  check_stats_identical(availability.result().write_availability,
                        reference.write_availability,
                        "write availability diverged from availability_sweep");
}

// Replays the same per-trial split streams through a serial
// DnsResolutionEvaluator with the pipeline's chunked merge discipline; the
// observer must reproduce every statistic exactly.
void check_dns_exact_replay() {
  constexpr std::size_t kTrials = 128;
  constexpr std::uint64_t kSeed = 5;
  constexpr double kThresholdPct = 10.0;
  sim::TrialPipeline pipeline(submarine_sim(), s1_model());
  analysis::DnsResolutionObserver observer(submarine(), dns_roots(),
                                           kThresholdPct);
  pipeline.add_observer(observer);
  pipeline.run(kTrials, kSeed, 0);

  const auto table = submarine_sim().death_probability_table(s1_model());
  analysis::DnsResolutionEvaluator evaluator(submarine(), dns_roots());
  analysis::DnsResolutionReport report;
  util::Bitset dead;
  graph::AliveMask mask;
  graph::ComponentScratch scratch;
  graph::ComponentResult components;
  const util::Rng base(kSeed);
  const std::size_t chunks = sim::TrialPipeline::chunk_count(kTrials);
  struct Chunk {
    util::RunningStats availability;
    util::RunningStats letters;
    std::size_t degraded = 0, heavy = 0, joint = 0;
  };
  std::vector<Chunk> per_chunk(chunks);
  const double cables = static_cast<double>(submarine().cable_count());
  for (std::size_t t = 0; t < kTrials; ++t) {
    util::Rng rng = base.split(t);
    submarine_sim().sample_cable_failures(table, rng, dead);
    submarine().mask_for_failures(dead, mask);
    graph::connected_components(submarine().csr(), mask, scratch, components);
    evaluator.evaluate(dead, components, report);
    Chunk& slot = per_chunk[t / sim::TrialPipeline::kTrialChunk];
    slot.availability.add(report.resolution_availability);
    slot.letters.add(report.mean_letters_reachable);
    const double cables_pct =
        100.0 * static_cast<double>(dead.count()) / cables;
    const bool degraded =
        analysis::resolution_degraded(report.resolution_availability);
    const bool heavy = cables_pct > kThresholdPct;
    if (degraded) ++slot.degraded;
    if (heavy) ++slot.heavy;
    if (degraded && heavy) ++slot.joint;
  }
  analysis::DnsResolutionSweep replay;
  for (const Chunk& slot : per_chunk) {
    replay.resolution_availability.merge(slot.availability);
    replay.mean_letters_reachable.merge(slot.letters);
    replay.degraded_trials += slot.degraded;
    replay.heavy_loss_trials += slot.heavy;
    replay.joint_trials += slot.joint;
  }
  check_stats_identical(observer.result().resolution_availability,
                        replay.resolution_availability,
                        "DNS resolution availability diverged from replay");
  check_stats_identical(observer.result().mean_letters_reachable,
                        replay.mean_letters_reachable,
                        "DNS letters-reachable diverged from replay");
  if (observer.result().degraded_trials != replay.degraded_trials ||
      observer.result().heavy_loss_trials != replay.heavy_loss_trials ||
      observer.result().joint_trials != replay.joint_trials) {
    fail("DNS joint-statistic counters diverged from replay");
  }
  if (observer.result().joint_trials > observer.result().degraded_trials ||
      observer.result().joint_trials > observer.result().heavy_loss_trials) {
    fail("DNS joint count exceeds a marginal count");
  }
}

void check_country_against_analytic() {
  const std::vector<std::string> countries = {"US", "JP", "BR"};
  {
    constexpr std::size_t kTrials = 512;
    sim::TrialPipeline pipeline(submarine_sim(), s1_model());
    analysis::CountryIsolationObserver isolation(submarine(), countries);
    pipeline.add_observer(isolation);
    pipeline.run(kTrials, 99, 0);
    for (const analysis::CountryIsolationResult& r : isolation.results()) {
      const auto cables =
          analysis::international_cables(submarine(), r.country);
      if (r.international_cable_count != cables.size()) {
        fail("country cable set size diverged from international_cables");
      }
      const double p_all =
          analysis::all_fail_probability(submarine_sim(), s1_model(), cables);
      const double e_surv =
          analysis::expected_survivors(submarine_sim(), s1_model(), cables);
      const double se_iso =
          std::sqrt(p_all * (1.0 - p_all) / static_cast<double>(kTrials));
      if (std::abs(r.isolation_rate() - p_all) > 4.0 * se_iso + 1e-9) {
        fail("country isolation rate diverged from analytic probability");
      }
      const double se_surv = r.surviving_cables.sample_stddev() /
                             std::sqrt(static_cast<double>(kTrials));
      if (std::abs(r.surviving_cables.mean() - e_surv) >
          4.0 * se_surv + 1e-9) {
        fail("country survivor mean diverged from analytic expectation");
      }
    }
  }
  {
    // Deterministic endpoint: p = 1 kills every repeater-bearing cable.
    const gic::UniformFailureModel certain(1.0);
    sim::TrialPipeline pipeline(submarine_sim(), certain);
    analysis::CountryIsolationObserver isolation(submarine(), countries);
    pipeline.add_observer(isolation);
    pipeline.run(32, 7, 0);
    for (const analysis::CountryIsolationResult& r : isolation.results()) {
      const auto cables =
          analysis::international_cables(submarine(), r.country);
      const double e_surv =
          analysis::expected_survivors(submarine_sim(), certain, cables);
      if (r.surviving_cables.mean() != e_surv) {
        fail("p=1 endpoint survivor count diverged from analytic expectation");
      }
    }
  }
}

void check_thread_bit_identity() {
  constexpr std::size_t kTrials = 200;
  const services::ServiceSpec spec =
      datacenter_service(datasets::DataCenterOperator::kFacebook);
  sim::TrialPipeline pipeline(submarine_sim(), s1_model());
  sim::ConnectivityObserver connectivity;
  services::AvailabilityObserver availability(submarine(), spec);
  analysis::DnsResolutionObserver dns(submarine(), dns_roots(), 10.0);
  analysis::CountryIsolationObserver isolation(submarine(), {"US", "SG"});
  pipeline.add_observer(connectivity);
  pipeline.add_observer(availability);
  pipeline.add_observer(dns);
  pipeline.add_observer(isolation);

  pipeline.run(kTrials, 63, 1);
  const sim::ConnectivityObserver::Result conn_ref = connectivity.result();
  const services::AvailabilitySweep avail_ref = availability.result();
  const analysis::DnsResolutionSweep dns_ref = dns.result();
  const std::vector<analysis::CountryIsolationResult> iso_ref =
      isolation.results();

  for (const std::size_t threads :
       {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    pipeline.run(kTrials, 63, threads);
    check_stats_identical(connectivity.result().cables_failed_pct,
                          conn_ref.cables_failed_pct,
                          "cables-failed diverged across thread counts");
    check_stats_identical(connectivity.result().largest_component_pct,
                          conn_ref.largest_component_pct,
                          "largest-component diverged across thread counts");
    check_stats_identical(availability.result().read_availability,
                          avail_ref.read_availability,
                          "read availability diverged across thread counts");
    check_stats_identical(availability.result().write_availability,
                          avail_ref.write_availability,
                          "write availability diverged across thread counts");
    check_stats_identical(dns.result().resolution_availability,
                          dns_ref.resolution_availability,
                          "DNS availability diverged across thread counts");
    if (dns.result().joint_trials != dns_ref.joint_trials) {
      fail("DNS joint counter diverged across thread counts");
    }
    for (std::size_t i = 0; i < iso_ref.size(); ++i) {
      if (isolation.results()[i].isolated_trials !=
          iso_ref[i].isolated_trials) {
        fail("country isolation diverged across thread counts");
      }
      check_stats_identical(isolation.results()[i].surviving_cables,
                            iso_ref[i].surviving_cables,
                            "country survivors diverged across thread counts");
    }
  }
}

// Once per-worker scratch and the observers' slots are warm, the per-trial
// loop (draw + mask + components + all five observers) never allocates.
// The counted pass replays the warm-up's exact draw sequence.
void check_zero_steady_state_allocations() {
  constexpr std::size_t kSteadyTrials = 64;
  const services::ServiceSpec spec =
      datacenter_service(datasets::DataCenterOperator::kGoogle);
  sim::TrialPipeline pipeline(submarine_sim(), s1_model());
  sim::ConnectivityObserver connectivity;
  services::AvailabilityObserver availability(submarine(), spec);
  analysis::DnsResolutionObserver dns(submarine(), dns_roots(), 10.0);
  analysis::CountryIsolationObserver isolation(submarine(), {"US", "SG"});
  std::vector<sim::TrialObserver*> observers = {&connectivity, &availability,
                                                &dns, &isolation};
  for (sim::TrialObserver* o : observers) pipeline.add_observer(*o);

  const std::size_t chunks = sim::TrialPipeline::chunk_count(kSteadyTrials);
  for (sim::TrialObserver* o : observers) o->begin_run(pipeline, 1, chunks);
  sim::PipelineScratch scratch;
  const util::Rng base(55);
  auto loop = [&] {
    for (std::size_t t = 0; t < kSteadyTrials; ++t) {
      pipeline.run_trial(t, base, scratch, 0,
                         t / sim::TrialPipeline::kTrialChunk);
    }
  };
  loop();  // warm every buffer over the same sequence
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  loop();
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  for (sim::TrialObserver* o : observers) o->end_run();
  if (after != before) {
    std::fprintf(stderr,
                 "perf_pipeline equivalence check FAILED: steady-state trial "
                 "loop allocated %zu times over %zu trials\n",
                 after - before, kSteadyTrials);
    std::exit(1);
  }
}

// Paper §4.3.1 checkpoint: uniform p = 0.01 at the default 150 km repeater
// spacing loses ~15.8% of submarine cables and ~11.0% of nodes.
void check_figure_checkpoints() {
  const gic::UniformFailureModel model(0.01);
  const sim::AggregateResult agg =
      submarine_sim().run_trials(model, 512, 2021);
  std::printf(
      "perf_pipeline: p=0.01 checkpoint: %.1f%% cables, %.1f%% nodes "
      "(paper: 15.8%% / 11.0%%)\n",
      agg.cables_failed_pct.mean(), agg.nodes_unreachable_pct.mean());
  if (std::abs(agg.cables_failed_pct.mean() - 15.8) > 2.0 ||
      std::abs(agg.nodes_unreachable_pct.mean() - 11.0) > 2.5) {
    fail("figure checkpoint drifted from the paper's §4.3.1 values");
  }
}

}  // namespace

int main() {
  check_connectivity_bit_identity();
  check_availability_bit_identity();
  check_dns_exact_replay();
  check_country_against_analytic();
  check_thread_bit_identity();
  check_zero_steady_state_allocations();
  check_figure_checkpoints();
  std::printf("perf_pipeline: all equivalence checks passed\n");

  // --- timing: the acceptance comparison ------------------------------------
  // Old path: the pre-pipeline report drive — one independent Monte-Carlo
  // pass per metric through the one-shot analysis entry points, the way the
  // old scenario driver sequenced N analysis calls. Connectivity via
  // run_trials, two availability_sweep passes, and a per-trial DNS loop
  // through evaluate_dns_resolution — which, like every one-shot call,
  // re-resolves the 1076 root instances to landing stations on each
  // realization — plus a per-trial country isolation scan. Each pass
  // redraws cable failures and (where needed) re-decomposes components.
  // New path: construct the pipeline and its observers cold (replica/root
  // resolution happens once, in observer construction), then one pass fans
  // the shared draw out to all five observers. Both single-threaded on the
  // 470-cable submarine network with the same trial count.
  constexpr std::size_t kTrials = 48;
  constexpr std::uint64_t kSeed = 1859;
  const services::ServiceSpec google =
      datacenter_service(datasets::DataCenterOperator::kGoogle);
  const services::ServiceSpec facebook =
      datacenter_service(datasets::DataCenterOperator::kFacebook);
  const std::vector<std::string> countries = {"US", "GB", "SG", "JP", "BR"};

  const double old_ms = benchutil::time_best_ms(
      [&] {
        const sim::AggregateResult agg =
            submarine_sim().run_trials(s1_model(), kTrials, kSeed);
        if (agg.trials != kTrials) std::exit(1);
        const services::AvailabilitySweep g = services::availability_sweep(
            submarine_sim(), s1_model(), google, kTrials, kSeed, 1);
        const services::AvailabilitySweep f = services::availability_sweep(
            submarine_sim(), s1_model(), facebook, kTrials, kSeed, 1);
        if (g.draws != kTrials || f.draws != kTrials) std::exit(1);

        // DNS through the one-shot API, as the old report driver had to.
        const auto table =
            submarine_sim().death_probability_table(s1_model());
        util::Bitset dead;
        util::RunningStats dns_avail;
        const util::Rng base(kSeed);
        std::vector<bool> dead_bits(submarine().cable_count(), false);
        for (std::size_t t = 0; t < kTrials; ++t) {
          util::Rng rng = base.split(t);
          submarine_sim().sample_cable_failures(table, rng, dead);
          for (std::size_t c = 0; c < dead_bits.size(); ++c) {
            dead_bits[c] = dead[c];
          }
          const analysis::DnsResolutionReport report =
              analysis::evaluate_dns_resolution(submarine(), dead_bits,
                                                dns_roots());
          dns_avail.add(report.resolution_availability);
        }
        if (dns_avail.count() != kTrials) std::exit(1);

        // Standalone country isolation sweep: one more redraw per trial.
        std::vector<std::vector<topo::CableId>> sets;
        for (const std::string& c : countries) {
          sets.push_back(analysis::international_cables(submarine(), c));
        }
        std::size_t isolated = 0;
        for (std::size_t t = 0; t < kTrials; ++t) {
          util::Rng rng = base.split(t);
          submarine_sim().sample_cable_failures(table, rng, dead);
          for (const auto& set : sets) {
            std::size_t survivors = 0;
            for (topo::CableId c : set) {
              if (!dead[c]) ++survivors;
            }
            if (survivors == 0) ++isolated;
          }
        }
        if (isolated > kTrials * countries.size()) std::exit(1);
      },
      2);

  const double new_ms = benchutil::time_best_ms([&] {
    // Pipeline + observer construction (death-table fold, replica and root
    // resolution) counts toward the new path: it is what a cold report
    // run pays.
    sim::TrialPipeline pipeline(submarine_sim(), s1_model());
    sim::ConnectivityObserver connectivity;
    services::AvailabilityObserver g(submarine(), google);
    services::AvailabilityObserver f(submarine(), facebook);
    analysis::DnsResolutionObserver dns(submarine(), dns_roots(), 10.0);
    analysis::CountryIsolationObserver isolation(submarine(), countries);
    pipeline.add_observer(connectivity);
    pipeline.add_observer(g);
    pipeline.add_observer(f);
    pipeline.add_observer(dns);
    pipeline.add_observer(isolation);
    pipeline.run(kTrials, kSeed, 1);
    if (connectivity.result().trials != kTrials ||
        g.result().draws != kTrials || dns.result().trials != kTrials) {
      std::exit(1);
    }
  });

  // Warm pipeline: observers and evaluators already built — the marginal
  // cost of one more multi-metric pass (what each extra (network, model)
  // section of a report pays after the first).
  sim::TrialPipeline warm_pipeline(submarine_sim(), s1_model());
  sim::ConnectivityObserver warm_conn;
  services::AvailabilityObserver warm_g(submarine(), google);
  services::AvailabilityObserver warm_f(submarine(), facebook);
  analysis::DnsResolutionObserver warm_dns(submarine(), dns_roots(), 10.0);
  analysis::CountryIsolationObserver warm_iso(submarine(), countries);
  warm_pipeline.add_observer(warm_conn);
  warm_pipeline.add_observer(warm_g);
  warm_pipeline.add_observer(warm_f);
  warm_pipeline.add_observer(warm_dns);
  warm_pipeline.add_observer(warm_iso);
  const double warm_ms = benchutil::time_best_ms([&] {
    warm_pipeline.run(kTrials, kSeed, 1);
    if (warm_conn.result().trials != kTrials) std::exit(1);
  });

  const double speedup = old_ms / new_ms;
  std::printf(
      "perf_pipeline: 5 metrics, %zu trials, 470-cable network, 1 thread\n",
      kTrials);
  std::printf("  old (per-metric one-shot passes): %10.3f ms\n", old_ms);
  std::printf("  new (one pipeline pass, cold):    %10.3f ms\n", new_ms);
  std::printf("  new (one pipeline pass, warm):    %10.3f ms\n", warm_ms);
  std::printf("  speedup (old/new cold):           %10.2fx\n", speedup);

  benchutil::write_bench_json(
      "pipeline", {{"trials", static_cast<double>(kTrials), "count"},
                   {"metrics", 5.0, "count"},
                   {"old_report_path_ms", old_ms, "ms"},
                   {"new_pipeline_cold_ms", new_ms, "ms"},
                   {"new_pipeline_warm_ms", warm_ms, "ms"},
                   {"speedup_cold", speedup, "x"}});

  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "perf_pipeline FAILED: speedup %.2fx below the 3x acceptance "
                 "threshold\n",
                 speedup);
    return 1;
  }
  return 0;
}
