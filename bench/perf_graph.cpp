// Graph-kernel benchmarks: the old-vs-new acceptance harness for the CSR +
// word-packed-mask connectivity engine.
//
// The `legacy` namespace below is a faithful reimplementation of the
// pre-CSR kernels this PR replaced: std::vector<bool> alive masks built
// fresh per draw, a per-call UnionFind + relabel-table allocation in
// connected_components, a std::queue BFS frontier, and a service
// availability evaluation that re-resolves every replica/anchor landing
// point on every draw. Benchmarks compare those against the current
// Csr/ComponentScratch/ServiceEvaluator hot path on the paper-scale
// synthetic submarine network (470 cables).
//
// main() runs hard equivalence checks before any timing:
//   1. legacy vs CSR connected_components / is_connected / reachable_from /
//      bfs_hops are result-identical over S1 failure draws,
//   2. legacy per-draw availability == ServiceEvaluator availability,
//   3. availability_sweep is bit-identical across thread counts,
//   4. the steady-state trial loop performs ZERO heap allocations
//      (checked with a global operator new counter).
// Any mismatch exits non-zero, so CI's bench smoke job doubles as an
// equivalence gate.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <queue>
#include <vector>

#include "bench_util.h"
#include "datasets/datacenters.h"
#include "datasets/submarine.h"
#include "geo/distance.h"
#include "graph/components.h"
#include "graph/traversal.h"
#include "graph/union_find.h"
#include "services/availability.h"
#include "sim/monte_carlo.h"
#include "util/rng.h"

// --- global allocation counter ----------------------------------------------
// Counts every operator-new hit so the steady-state loops can assert they
// never touch the allocator. Relaxed atomics: the checked loops are serial;
// the counter only needs to not tear.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace solarnet;

// --- legacy (pre-CSR) kernels ----------------------------------------------

namespace legacy {

struct AliveMask {
  std::vector<bool> vertex_alive;
  std::vector<bool> edge_alive;
};

AliveMask all_alive(const graph::Graph& g) {
  return {std::vector<bool>(g.vertex_count(), true),
          std::vector<bool>(g.edge_count(), true)};
}

bool traversable(const graph::Graph& g, const AliveMask& mask,
                 graph::EdgeId e) {
  if (e >= mask.edge_alive.size() || !mask.edge_alive[e]) return false;
  const graph::Edge& ed = g.edge(e);
  return mask.vertex_alive[ed.u] && mask.vertex_alive[ed.v];
}

// Fresh mask per draw, exactly as the old
// InfrastructureNetwork::mask_for_failures allocated one.
AliveMask mask_for_failures(const topo::InfrastructureNetwork& net,
                            const std::vector<bool>& cable_dead) {
  AliveMask mask = all_alive(net.graph());
  for (graph::EdgeId e = 0; e < net.graph().edge_count(); ++e) {
    if (cable_dead[net.cable_of_edge(e)]) mask.edge_alive[e] = false;
  }
  return mask;
}

// Per-call UnionFind + relabel-table allocation, as before the
// ComponentScratch overloads existed.
graph::ComponentResult connected_components(const graph::Graph& g,
                                            const AliveMask& mask) {
  const std::size_t n = g.vertex_count();
  graph::UnionFind uf(n);
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    if (!traversable(g, mask, e)) continue;
    const graph::Edge& ed = g.edge(e);
    uf.unite(ed.u, ed.v);
  }
  graph::ComponentResult result;
  result.component.assign(n, graph::ComponentResult::kNoComponent);
  std::vector<std::uint32_t> root_to_dense(
      n, graph::ComponentResult::kNoComponent);
  for (graph::VertexId v = 0; v < n; ++v) {
    if (v >= mask.vertex_alive.size() || !mask.vertex_alive[v]) continue;
    const std::size_t root = uf.find(v);
    if (root_to_dense[root] == graph::ComponentResult::kNoComponent) {
      root_to_dense[root] =
          static_cast<std::uint32_t>(result.component_sizes.size());
      result.component_sizes.push_back(0);
    }
    result.component[v] = root_to_dense[root];
    ++result.component_sizes[root_to_dense[root]];
  }
  return result;
}

bool is_connected(const graph::Graph& g, const AliveMask& mask) {
  return connected_components(g, mask).component_count() <= 1;
}

std::vector<bool> reachable_from(const graph::Graph& g, const AliveMask& mask,
                                 graph::VertexId source) {
  std::vector<bool> visited(g.vertex_count(), false);
  if (source >= g.vertex_count() || !mask.vertex_alive[source]) {
    return visited;
  }
  std::vector<graph::VertexId> stack{source};
  visited[source] = true;
  while (!stack.empty()) {
    const graph::VertexId v = stack.back();
    stack.pop_back();
    for (const auto& [neighbor, edge] : g.incident(v)) {
      if (visited[neighbor] || !traversable(g, mask, edge)) continue;
      visited[neighbor] = true;
      stack.push_back(neighbor);
    }
  }
  return visited;
}

// std::queue frontier, one push/pop pair of deque traffic per vertex.
std::vector<std::uint32_t> bfs_hops(const graph::Graph& g,
                                    const AliveMask& mask,
                                    graph::VertexId source) {
  std::vector<std::uint32_t> hops(g.vertex_count(), graph::kUnreachableHops);
  if (source >= g.vertex_count() || !mask.vertex_alive[source]) return hops;
  std::queue<graph::VertexId> queue;
  queue.push(source);
  hops[source] = 0;
  while (!queue.empty()) {
    const graph::VertexId v = queue.front();
    queue.pop();
    for (const auto& [neighbor, edge] : g.incident(v)) {
      if (hops[neighbor] != graph::kUnreachableHops ||
          !traversable(g, mask, edge)) {
        continue;
      }
      hops[neighbor] = hops[v] + 1;
      queue.push(neighbor);
    }
  }
  return hops;
}

// The old evaluate_service: nearest-landing-point scans re-run per draw,
// allocating mask/components/unreachable-list per call. Anchor locations
// and population weights mirror services/availability.cpp.
const std::vector<std::pair<geo::Continent, geo::GeoPoint>>&
continent_anchors() {
  static const std::vector<std::pair<geo::Continent, geo::GeoPoint>> anchors =
      {
          {geo::Continent::kNorthAmerica, {40.7, -74.0}},
          {geo::Continent::kSouthAmerica, {-23.5, -46.6}},
          {geo::Continent::kEurope, {50.1, 8.7}},
          {geo::Continent::kAfrica, {6.5, 3.4}},
          {geo::Continent::kAsia, {1.35, 103.8}},
          {geo::Continent::kOceania, {-33.9, 151.2}},
      };
  return anchors;
}

topo::NodeId nearest_connected_node(const topo::InfrastructureNetwork& net,
                                    const geo::GeoPoint& p) {
  constexpr double kAttachmentRadiusKm = 1500.0;
  topo::NodeId best_in_range = topo::kInvalidNode;
  std::size_t best_degree = 0;
  double best_in_range_d = std::numeric_limits<double>::infinity();
  topo::NodeId nearest = topo::kInvalidNode;
  double nearest_d = std::numeric_limits<double>::infinity();
  for (topo::NodeId n = 0; n < net.node_count(); ++n) {
    const std::size_t degree = net.cables_at(n).size();
    if (degree == 0) continue;
    const double d = geo::haversine_km(p, net.node(n).location);
    if (d < nearest_d) {
      nearest_d = d;
      nearest = n;
    }
    if (d <= kAttachmentRadiusKm &&
        (degree > best_degree ||
         (degree == best_degree && d < best_in_range_d))) {
      best_degree = degree;
      best_in_range_d = d;
      best_in_range = n;
    }
  }
  return best_in_range != topo::kInvalidNode ? best_in_range : nearest;
}

services::AvailabilityReport evaluate_service(
    const topo::InfrastructureNetwork& net,
    const std::vector<bool>& cable_dead,
    const services::ServiceSpec& service) {
  const AliveMask mask = mask_for_failures(net, cable_dead);
  const graph::ComponentResult cc = connected_components(net.graph(), mask);
  const auto unreachable = net.unreachable_nodes(cable_dead);
  std::vector<bool> dark(net.node_count(), false);
  for (topo::NodeId n : unreachable) dark[n] = true;
  constexpr std::uint32_t kIslandBase = 0x80000000u;

  auto component_of = [&](const geo::GeoPoint& p) -> std::uint32_t {
    const topo::NodeId n = nearest_connected_node(net, p);
    if (n == topo::kInvalidNode) return graph::ComponentResult::kNoComponent;
    if (dark[n]) return kIslandBase + n;
    return cc.component[n];
  };

  std::vector<std::uint32_t> replica_components;
  replica_components.reserve(service.replicas.size());
  for (const geo::GeoPoint& r : service.replicas) {
    replica_components.push_back(component_of(r));
  }

  services::AvailabilityReport report;
  report.service = service.name;
  for (const auto& [continent, anchor] : continent_anchors()) {
    services::ContinentAvailability avail;
    avail.continent = continent;
    const std::uint32_t client = component_of(anchor);
    if (client != graph::ComponentResult::kNoComponent) {
      std::size_t reachable = 0;
      for (std::uint32_t rc : replica_components) {
        if (rc == client) ++reachable;
      }
      avail.read_available = reachable >= 1;
      avail.write_available = reachable >= service.write_quorum;
    }
    report.per_continent.push_back(avail);
  }
  for (const auto& [continent, share] :
       services::continent_population_shares()) {
    for (const services::ContinentAvailability& avail : report.per_continent) {
      if (avail.continent != continent) continue;
      if (avail.read_available) report.read_availability += share;
      if (avail.write_available) report.write_availability += share;
    }
  }
  return report;
}

}  // namespace legacy

// --- shared fixtures --------------------------------------------------------

const topo::InfrastructureNetwork& submarine() {
  static const auto net = datasets::make_submarine_network({});
  return net;
}

const sim::FailureSimulator& submarine_sim() {
  static const sim::FailureSimulator s(submarine(), {});
  return s;
}

services::ServiceSpec bench_service() {
  std::vector<geo::GeoPoint> sites;
  for (const auto& d :
       datasets::datacenters_of(datasets::DataCenterOperator::kGoogle)) {
    sites.push_back(d.location);
  }
  return services::service_from_datacenters("bench-google-q3", sites, 3);
}

constexpr std::uint64_t kDrawSeed = 2021;
constexpr std::size_t kEquivalenceDraws = 48;
constexpr std::size_t kBenchDraws = 64;

// One failure draw in both representations, sampled from the same child
// stream so the sets are bit-equal by construction.
struct DrawPair {
  std::vector<bool> dead_vb;
  util::Bitset dead_bits;
};

std::vector<DrawPair> make_draws(std::size_t count) {
  const auto model = gic::LatitudeBandFailureModel::s1();
  const util::Rng base(kDrawSeed);
  std::vector<DrawPair> draws(count);
  for (std::size_t d = 0; d < count; ++d) {
    util::Rng rng_a = base.split(d);
    util::Rng rng_b = base.split(d);
    submarine_sim().sample_cable_failures(model, rng_a, draws[d].dead_vb);
    submarine_sim().sample_cable_failures(model, rng_b, draws[d].dead_bits);
  }
  return draws;
}

const std::vector<DrawPair>& bench_draws() {
  static const std::vector<DrawPair> draws = make_draws(kBenchDraws);
  return draws;
}

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "perf_graph equivalence check FAILED: %s\n", what);
  std::exit(1);
}

// --- equivalence gate -------------------------------------------------------

void check_kernel_equivalence() {
  const auto& net = submarine();
  const graph::Graph& g = net.graph();
  const graph::Csr& csr = net.csr();

  if (csr.vertex_count() != g.vertex_count() ||
      csr.edge_count() != g.edge_count()) {
    fail("CSR dimensions diverge from the graph");
  }

  graph::ComponentScratch comp_scratch;
  graph::ComponentResult cc;
  graph::TraversalScratch trav_scratch;
  graph::AliveMask mask;
  util::Bitset reach;
  std::vector<std::uint32_t> hops;

  for (std::size_t d = 0; d < kEquivalenceDraws; ++d) {
    const DrawPair& draw = bench_draws()[d];
    if (draw.dead_vb.size() != draw.dead_bits.size()) {
      fail("draw representations disagree on size");
    }
    for (std::size_t c = 0; c < draw.dead_vb.size(); ++c) {
      if (draw.dead_vb[c] != draw.dead_bits[c]) {
        fail("Bitset draw diverged from vector<bool> draw");
      }
    }

    const legacy::AliveMask old_mask =
        legacy::mask_for_failures(net, draw.dead_vb);
    net.mask_for_failures(draw.dead_bits, mask);

    // Components: identical dense labels and sizes.
    const graph::ComponentResult ref =
        legacy::connected_components(g, old_mask);
    graph::connected_components(csr, mask, comp_scratch, cc);
    if (cc.component != ref.component ||
        cc.component_sizes != ref.component_sizes) {
      fail("connected_components(Csr) != legacy connected_components");
    }
    if (graph::is_connected(csr, mask, comp_scratch) !=
        legacy::is_connected(g, old_mask)) {
      fail("is_connected(Csr) != legacy is_connected");
    }

    // Traversals from a few spread-out sources.
    for (const graph::VertexId source :
         {graph::VertexId{0}, static_cast<graph::VertexId>(g.vertex_count() / 2),
          static_cast<graph::VertexId>(g.vertex_count() - 1)}) {
      const auto ref_reach = legacy::reachable_from(g, old_mask, source);
      graph::reachable_from(csr, mask, source, trav_scratch, reach);
      for (std::size_t v = 0; v < ref_reach.size(); ++v) {
        if (ref_reach[v] != reach[v]) {
          fail("reachable_from(Csr) != legacy reachable_from");
        }
      }
      const auto ref_hops = legacy::bfs_hops(g, old_mask, source);
      graph::bfs_hops(csr, mask, source, trav_scratch, hops);
      if (hops != ref_hops) fail("bfs_hops(Csr) != legacy bfs_hops");
    }
  }
}

void check_availability_equivalence() {
  const auto& net = submarine();
  const services::ServiceSpec spec = bench_service();
  services::ServiceEvaluator evaluator(net, spec);
  services::AvailabilityReport report;
  for (std::size_t d = 0; d < kEquivalenceDraws; ++d) {
    const DrawPair& draw = bench_draws()[d];
    const auto ref = legacy::evaluate_service(net, draw.dead_vb, spec);
    evaluator.evaluate(draw.dead_bits, report);
    if (report.read_availability != ref.read_availability ||
        report.write_availability != ref.write_availability) {
      fail("ServiceEvaluator availability != legacy evaluate_service");
    }
    for (std::size_t i = 0; i < ref.per_continent.size(); ++i) {
      if (report.per_continent[i].read_available !=
              ref.per_continent[i].read_available ||
          report.per_continent[i].write_available !=
              ref.per_continent[i].write_available) {
        fail("per-continent availability diverged");
      }
    }
  }
}

void check_sweep_determinism() {
  const auto model = gic::LatitudeBandFailureModel::s1();
  const services::ServiceSpec spec = bench_service();
  const auto serial = services::availability_sweep(submarine_sim(), model,
                                                   spec, 200, 99, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const auto parallel = services::availability_sweep(submarine_sim(), model,
                                                       spec, 200, 99, threads);
    if (parallel.read_availability.mean() != serial.read_availability.mean() ||
        parallel.read_availability.sample_stddev() !=
            serial.read_availability.sample_stddev() ||
        parallel.write_availability.mean() !=
            serial.write_availability.mean() ||
        parallel.write_availability.sample_stddev() !=
            serial.write_availability.sample_stddev()) {
      fail("availability_sweep diverged across thread counts");
    }
  }
}

// The acceptance criterion: once the scratch is warm, the per-trial loop
// (table draw -> mask fill -> components -> availability) never allocates.
// The counted pass replays the exact draw sequence of the warm-up pass, so
// every buffer has already seen its high-water mark.
void check_zero_steady_state_allocations() {
  const auto& net = submarine();
  const auto model = gic::LatitudeBandFailureModel::s1();
  const sim::DeathProbabilityTable table =
      submarine_sim().death_probability_table(model);
  services::ServiceEvaluator evaluator(net, bench_service());
  services::AvailabilityReport report;
  graph::ComponentScratch comp_scratch;
  graph::ComponentResult cc;
  graph::AliveMask mask;
  util::Bitset dead;
  const util::Rng base(kDrawSeed);

  auto run_draws = [&](std::size_t count) {
    for (std::size_t d = 0; d < count; ++d) {
      util::Rng rng = base.split(d);
      submarine_sim().sample_cable_failures(table, rng, dead);
      net.mask_for_failures(dead, mask);
      graph::connected_components(net.csr(), mask, comp_scratch, cc);
      evaluator.evaluate(dead, report);
      benchmark::DoNotOptimize(cc.component.data());
      benchmark::DoNotOptimize(report.read_availability);
    }
  };

  constexpr std::size_t kSteadyDraws = 200;
  run_draws(kSteadyDraws);  // warm every buffer over the same sequence
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  run_draws(kSteadyDraws);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  if (after != before) {
    std::fprintf(stderr,
                 "perf_graph equivalence check FAILED: steady-state trial "
                 "loop allocated %zu times over %zu draws\n",
                 after - before, kSteadyDraws);
    std::exit(1);
  }
}

// --- benchmarks -------------------------------------------------------------

// Masked connected components, per trial: mask build + decomposition, the
// connectivity unit the Monte-Carlo loop pays per draw.
void BM_LegacyMaskedComponents(benchmark::State& state) {
  const auto& net = submarine();
  std::size_t d = 0;
  for (auto _ : state) {
    const DrawPair& draw = bench_draws()[d++ % kBenchDraws];
    const legacy::AliveMask mask =
        legacy::mask_for_failures(net, draw.dead_vb);
    benchmark::DoNotOptimize(
        legacy::connected_components(net.graph(), mask));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LegacyMaskedComponents);

void BM_CsrMaskedComponents(benchmark::State& state) {
  const auto& net = submarine();
  const graph::Csr& csr = net.csr();
  graph::ComponentScratch scratch;
  graph::ComponentResult cc;
  graph::AliveMask mask;
  std::size_t d = 0;
  for (auto _ : state) {
    const DrawPair& draw = bench_draws()[d++ % kBenchDraws];
    net.mask_for_failures(draw.dead_bits, mask);
    graph::connected_components(csr, mask, scratch, cc);
    benchmark::DoNotOptimize(cc.component.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CsrMaskedComponents);

void BM_LegacyBfsHops(benchmark::State& state) {
  const auto& net = submarine();
  const legacy::AliveMask mask = legacy::all_alive(net.graph());
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy::bfs_hops(net.graph(), mask, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LegacyBfsHops);

void BM_CsrBfsHops(benchmark::State& state) {
  const auto& net = submarine();
  const graph::Csr& csr = net.csr();
  graph::AliveMask mask;
  mask.reset_to_all_alive(net.graph());
  graph::TraversalScratch scratch;
  std::vector<std::uint32_t> hops;
  for (auto _ : state) {
    graph::bfs_hops(csr, mask, 0, scratch, hops);
    benchmark::DoNotOptimize(hops.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CsrBfsHops);

// Availability per trial: draw + evaluate, old shape (allocating sample,
// per-call landing-point resolution) vs new (table draw into warm Bitset,
// pre-resolved evaluator).
void BM_LegacyAvailabilityPerTrial(benchmark::State& state) {
  const auto& net = submarine();
  const auto model = gic::LatitudeBandFailureModel::s1();
  const services::ServiceSpec spec = bench_service();
  util::Rng rng(kDrawSeed);
  for (auto _ : state) {
    const auto dead = submarine_sim().sample_cable_failures(model, rng);
    benchmark::DoNotOptimize(legacy::evaluate_service(net, dead, spec));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LegacyAvailabilityPerTrial);

void BM_AvailabilityPerTrial(benchmark::State& state) {
  const auto model = gic::LatitudeBandFailureModel::s1();
  const sim::DeathProbabilityTable table =
      submarine_sim().death_probability_table(model);
  services::ServiceEvaluator evaluator(submarine(), bench_service());
  services::AvailabilityReport report;
  util::Bitset dead;
  util::Rng rng(kDrawSeed);
  for (auto _ : state) {
    submarine_sim().sample_cable_failures(table, rng, dead);
    evaluator.evaluate(dead, report);
    benchmark::DoNotOptimize(report.read_availability);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AvailabilityPerTrial);

// The full parallel sweep, for the thread-scaling picture.
void BM_AvailabilitySweep(benchmark::State& state) {
  const auto model = gic::LatitudeBandFailureModel::s1();
  const services::ServiceSpec spec = bench_service();
  constexpr std::size_t kDraws = 200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(services::availability_sweep(
        submarine_sim(), model, spec, kDraws, kDrawSeed,
        static_cast<std::size_t>(state.range(0))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDraws));
}
BENCHMARK(BM_AvailabilitySweep)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Headline chrono timings for BENCH_graph.json: the per-trial connectivity
// and availability units, old vs new, averaged over the bench draws.
void emit_bench_json() {
  const auto& net = submarine();
  const graph::Csr& csr = net.csr();
  graph::ComponentScratch comp_scratch;
  graph::ComponentResult cc;
  graph::AliveMask mask;
  services::ServiceEvaluator evaluator(net, bench_service());
  services::AvailabilityReport report;
  const double per_draw = 1.0 / static_cast<double>(kBenchDraws);

  const double legacy_components_ms = per_draw * benchutil::time_best_ms([&] {
    for (const DrawPair& draw : bench_draws()) {
      const legacy::AliveMask old_mask =
          legacy::mask_for_failures(net, draw.dead_vb);
      benchmark::DoNotOptimize(
          legacy::connected_components(net.graph(), old_mask));
    }
  });
  const double csr_components_ms = per_draw * benchutil::time_best_ms([&] {
    for (const DrawPair& draw : bench_draws()) {
      net.mask_for_failures(draw.dead_bits, mask);
      graph::connected_components(csr, mask, comp_scratch, cc);
      benchmark::DoNotOptimize(cc.component.data());
    }
  });
  const services::ServiceSpec spec = bench_service();
  const double legacy_avail_ms = per_draw * benchutil::time_best_ms([&] {
    for (const DrawPair& draw : bench_draws()) {
      benchmark::DoNotOptimize(
          legacy::evaluate_service(net, draw.dead_vb, spec));
    }
  });
  const double eval_avail_ms = per_draw * benchutil::time_best_ms([&] {
    for (const DrawPair& draw : bench_draws()) {
      evaluator.evaluate(draw.dead_bits, report);
      benchmark::DoNotOptimize(report.read_availability);
    }
  });
  benchutil::write_bench_json(
      "graph",
      {{"legacy_masked_components_ms", legacy_components_ms, "ms"},
       {"csr_masked_components_ms", csr_components_ms, "ms"},
       {"legacy_availability_per_trial_ms", legacy_avail_ms, "ms"},
       {"evaluator_availability_per_trial_ms", eval_avail_ms, "ms"}});
}

}  // namespace

int main(int argc, char** argv) {
  check_kernel_equivalence();
  check_availability_equivalence();
  check_sweep_determinism();
  check_zero_steady_state_allocations();
  std::printf("perf_graph: all equivalence checks passed\n");
  emit_bench_json();

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
