// Figure 6: % of cables failed under uniform repeater failure probability
// (x-axis 0.001..1, log), one panel per repeater spacing (50/100/150 km),
// three networks (submarine, Intertubes, ITU). 10 trials each, mean and sd.
#include <iostream>

#include "analysis/connectivity.h"
#include "bench_util.h"
#include "datasets/land.h"
#include "datasets/submarine.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  const auto csv = solarnet::benchutil::csv_dir(argc, argv);
  using namespace solarnet;

  const auto submarine = datasets::make_submarine_network({});
  const auto intertubes = datasets::make_intertubes_network({});
  const auto itu = datasets::make_itu_network({});
  const auto probs = analysis::default_probability_grid();
  constexpr std::size_t kTrials = 10;  // the paper's trial count

  for (double spacing : {50.0, 100.0, 150.0}) {
    util::print_banner(
        std::cout, "Figure 6: cables failed % (mean+-sd over 10 trials), "
                   "repeater spacing " +
                       util::format_fixed(spacing, 0) + " km");
    sim::TrialConfig cfg;
    cfg.repeater_spacing_km = spacing;
    const sim::FailureSimulator sub_sim(submarine, cfg);
    const sim::FailureSimulator land_sim(intertubes, cfg);
    const sim::FailureSimulator itu_sim(itu, cfg);
    const auto sub = analysis::uniform_failure_sweep(sub_sim, probs, kTrials,
                                                     1859);
    const auto land = analysis::uniform_failure_sweep(land_sim, probs,
                                                      kTrials, 1921);
    const auto itu_sweep =
        analysis::uniform_failure_sweep(itu_sim, probs, kTrials, 1989);

    util::TextTable t({"p(repeater)", "submarine", "sd", "intertubes", "sd",
                       "ITU", "sd"});
    for (std::size_t i = 0; i < probs.size(); ++i) {
      t.add_row({util::format_fixed(probs[i], 3),
                 util::format_fixed(sub[i].cables_failed_mean_pct, 1),
                 util::format_fixed(sub[i].cables_failed_sd_pct, 1),
                 util::format_fixed(land[i].cables_failed_mean_pct, 1),
                 util::format_fixed(land[i].cables_failed_sd_pct, 1),
                 util::format_fixed(itu_sweep[i].cables_failed_mean_pct, 1),
                 util::format_fixed(itu_sweep[i].cables_failed_sd_pct, 1)});
    }
    t.print(std::cout);
    {
      std::vector<util::CsvRow> rows = {
          {"probability", "submarine_mean", "submarine_sd",
           "intertubes_mean", "intertubes_sd", "itu_mean", "itu_sd"}};
      for (std::size_t i = 0; i < probs.size(); ++i) {
        rows.push_back(
            {util::format_fixed(probs[i], 4),
             util::format_fixed(sub[i].cables_failed_mean_pct, 3),
             util::format_fixed(sub[i].cables_failed_sd_pct, 3),
             util::format_fixed(land[i].cables_failed_mean_pct, 3),
             util::format_fixed(land[i].cables_failed_sd_pct, 3),
             util::format_fixed(itu_sweep[i].cables_failed_mean_pct, 3),
             util::format_fixed(itu_sweep[i].cables_failed_sd_pct, 3)});
      }
      benchutil::write_series(
          csv, "fig6_spacing_" + util::format_fixed(spacing, 0), rows);
    }
  }
  std::cout << "\npaper checkpoints @150 km: p=0.01 -> 14.9% submarine / "
               "1.7% intertubes / 0.6% ITU; p=1 -> ~80% submarine / 52% "
               "intertubes\n";
  return 0;
}
