// Timeline-engine benchmark: the acceptance harness for incremental storm
// playback (onset → peak → decay → repair).
//
// main() runs hard validation gates before any timing:
//   1. a non-any-failure rule and malformed playback axes are rejected up
//      front with invalid_argument,
//   2. playback's per-step percentages are bit-identical to a naive
//      per-step full recompute (independent CRN replay, fault draw and
//      fleet schedule, then one unreachable_nodes + connected_components
//      build per unified step) on the paper-scale 470-cable network,
//   3. observer aggregates are bit-identical across thread counts,
//   4. the steady-state playback loop performs ZERO heap allocations.
// Any failure exits non-zero, so CI's bench smoke job doubles as an
// equivalence gate. Then it times the naive per-step full recompute
// against playback on the 97-step default axis (73 storm steps at 1 h +
// 24 repair steps), asserts the >= 5x acceptance speedup, and emits
// BENCH_timeline.json.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench_util.h"
#include "datasets/submarine.h"
#include "gic/failure_model.h"
#include "gic/timeline.h"
#include "graph/components.h"
#include "recovery/repair.h"
#include "sim/monte_carlo.h"
#include "sim/timeline_engine.h"
#include "util/rng.h"

// --- global allocation counter ----------------------------------------------
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace solarnet;

const topo::InfrastructureNetwork& submarine() {
  static const auto net = datasets::make_submarine_network({});
  return net;
}

// Single-threaded simulator so old-vs-new timing compares equal budgets.
const sim::FailureSimulator& submarine_sim() {
  static const sim::FailureSimulator s(submarine(), [] {
    sim::TrialConfig cfg;
    cfg.threads = 1;
    return cfg;
  }());
  return s;
}

// Default playback: the paper's S1 latitude-band storm spread over the
// default 72 h phase profile at 1 h resolution (73 storm steps) plus the
// default 24-step repair horizon — 97 unified steps.
sim::TimelineEngine& default_engine() {
  static sim::TimelineEngine engine(
      submarine_sim(),
      submarine_sim().death_probability_table(
          gic::LatitudeBandFailureModel::s1()),
      sim::TimelineConfig::from_profile(gic::StormPhaseProfile{}, 1.0));
  return engine;
}

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "perf_timeline equivalence check FAILED: %s\n", what);
  std::exit(1);
}

// --- naive baseline ---------------------------------------------------------

// The historical shape of a storm playback: derive the trial's event times
// with the plain one-shot components, then pay one full connectivity
// build per unified time step. Replays the engine's exact draw sequence
// (CRN uniforms ascending over repeater-bearing cables, fault counts from
// the split repair substream) so the comparison is bitwise, not
// statistical.
struct NaiveTrial {
  std::vector<std::uint32_t> fail_step;
  std::vector<double> restore_hour;
  std::vector<double> cables_dead_pct;
  std::vector<double> nodes_unreachable_pct;
  std::vector<double> largest_component_pct;
};

void naive_playback(const sim::TimelineEngine& engine, util::Rng& rng,
                    NaiveTrial& out) {
  const auto& net = engine.simulator().network();
  const sim::TimelineConfig& config = engine.config();
  const std::size_t cables = net.cable_count();
  const std::size_t storm_steps = engine.storm_step_count();
  const std::size_t repair_steps = engine.repair_step_count();
  const std::size_t total_steps = storm_steps + repair_steps;
  const std::size_t connected = net.connected_node_count();

  // CRN draw + proportional-hazard thresholding, cable by cable.
  out.fail_step.assign(cables, static_cast<std::uint32_t>(storm_steps));
  for (topo::CableId c = 0; c < cables; ++c) {
    if (engine.simulator().cable_repeater_count(c) == 0) continue;
    const double u = rng.uniform();
    const double p = engine.table().probability[c];
    if (!(u < p)) continue;
    const double threshold = std::log1p(-u) / std::log1p(-p);
    std::uint32_t dead_steps = 0;
    for (std::size_t g = 0; g < storm_steps; ++g) {
      dead_steps += config.dose_share[g] > threshold ? 1u : 0u;
    }
    out.fail_step[c] = static_cast<std::uint32_t>(storm_steps) - dead_steps;
  }

  // Fault counts and fleet schedule through the one-shot-parity forms.
  std::vector<std::uint8_t> dead_end(cables);
  for (std::size_t c = 0; c < cables; ++c) {
    dead_end[c] = out.fail_step[c] < storm_steps ? 1 : 0;
  }
  util::Rng repair_rng = rng.split(sim::TimelineEngine::kRepairStream);
  const recovery::FaultSampler sampler(engine.simulator(), engine.table());
  std::vector<std::uint32_t> faults(cables);
  sampler.sample(dead_end, repair_rng, faults);
  const recovery::RepairScheduler scheduler(net, config.fleet);
  recovery::RepairScheduler::Scratch repair_scratch;
  std::vector<double> restore_day(cables);
  scheduler.schedule(dead_end, faults, repair_scratch, restore_day);
  const double storm_end = engine.storm_end_hour();
  out.restore_hour.assign(cables, 0.0);
  for (std::size_t c = 0; c < cables; ++c) {
    if (dead_end[c]) out.restore_hour[c] = storm_end + restore_day[c] * 24.0;
  }

  // One full connectivity build per unified step, identical percentage
  // arithmetic to TimelineEngine::playback's record lambda.
  out.cables_dead_pct.resize(total_steps);
  out.nodes_unreachable_pct.resize(total_steps);
  out.largest_component_pct.resize(total_steps);
  std::vector<bool> dead(cables);
  for (std::size_t i = 0; i < total_steps; ++i) {
    std::size_t dead_count = 0;
    for (std::size_t c = 0; c < cables; ++c) {
      const bool d = i < storm_steps
                         ? out.fail_step[c] <= i
                         : dead_end[c] != 0 &&
                               engine.step_hour(i) < out.restore_hour[c];
      dead[c] = d;
      dead_count += d ? 1 : 0;
    }
    out.cables_dead_pct[i] =
        cables > 0 ? 100.0 * static_cast<double>(dead_count) /
                         static_cast<double>(cables)
                   : 0.0;
    const std::size_t unreachable = net.unreachable_nodes(dead).size();
    out.nodes_unreachable_pct[i] =
        connected > 0 ? 100.0 * static_cast<double>(unreachable) /
                            static_cast<double>(connected)
                      : 0.0;
    const auto components =
        graph::connected_components(net.graph(), net.mask_for_failures(dead));
    const std::size_t largest =
        std::max<std::size_t>(components.largest_component_size(),
                              net.node_count() > 0 ? 1 : 0);
    out.largest_component_pct[i] =
        connected > 0 ? 100.0 * static_cast<double>(largest) /
                            static_cast<double>(connected)
                      : 0.0;
  }
}

// --- validation gates -------------------------------------------------------

void check_validation() {
  const auto table = submarine_sim().death_probability_table(
      gic::UniformFailureModel(0.3));
  sim::TrialConfig cfg;
  cfg.rule = sim::CableDeathRule::kFractionFails;
  const sim::FailureSimulator fraction_sim(submarine(), cfg);
  bool threw = false;
  try {
    sim::TimelineEngine engine(
        fraction_sim, fraction_sim.death_probability_table(
                          gic::UniformFailureModel(0.3)),
        sim::TimelineConfig::from_profile(gic::StormPhaseProfile{}, 6.0));
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  if (!threw) fail("kFractionFails rule was not rejected by the engine");

  threw = false;
  try {
    sim::TimelineEngine engine(
        submarine_sim(), table,
        sim::TimelineConfig::from_dose_schedule({0.0, 6.0}, {0.0, 0.5}));
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  if (!threw) fail("dose_share not ending at 1.0 was not rejected");

  threw = false;
  try {
    sim::TimelineConfig config =
        sim::TimelineConfig::from_profile(gic::StormPhaseProfile{}, 6.0);
    config.repair_steps = 0;
    sim::TimelineEngine engine(submarine_sim(), table, std::move(config));
  } catch (const std::invalid_argument&) {
    threw = true;
  }
  if (!threw) fail("repair_steps == 0 was not rejected");
}

void check_playback_against_naive() {
  const sim::TimelineEngine& engine = default_engine();
  const std::size_t cables = submarine().cable_count();
  sim::TimelineScratch scratch;
  NaiveTrial naive;
  const util::Rng base(1859);
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    util::Rng rng_a = base.split(trial);
    engine.playback(rng_a, scratch);
    util::Rng rng_b = base.split(trial);
    naive_playback(engine, rng_b, naive);
    for (std::size_t c = 0; c < cables; ++c) {
      if (scratch.fail_step[c] != naive.fail_step[c]) {
        fail("fail_step diverges from the naive CRN replay");
      }
      if (scratch.restore_hour[c] != naive.restore_hour[c]) {
        fail("restore_hour diverges from the one-shot schedule");
      }
    }
    for (std::size_t i = 0; i < engine.step_count(); ++i) {
      if (scratch.cables_dead_pct[i] != naive.cables_dead_pct[i] ||
          scratch.nodes_unreachable_pct[i] !=
              naive.nodes_unreachable_pct[i] ||
          scratch.largest_component_pct[i] !=
              naive.largest_component_pct[i]) {
        std::fprintf(stderr,
                     "perf_timeline equivalence check FAILED: playback "
                     "diverges from full recompute at trial %llu step %zu\n",
                     static_cast<unsigned long long>(trial), i);
        std::exit(1);
      }
    }
    // The end of the storm must land exactly on the end-state CRN draw.
    util::Rng rng_c = base.split(trial);
    const std::size_t last = engine.storm_step_count() - 1;
    for (topo::CableId c = 0; c < cables; ++c) {
      if (engine.simulator().cable_repeater_count(c) == 0) continue;
      const bool dead_at_end = scratch.fail_step[c] <= last;
      if (dead_at_end != (rng_c.uniform() < engine.table().probability[c])) {
        fail("storm end state diverges from the end-state CRN draw");
      }
    }
  }
}

void check_thread_bit_identity() {
  sim::TimelineEngine& engine = default_engine();
  constexpr std::size_t kTrials = 101;
  sim::TimelineConnectivityObserver observer(50.0);
  engine.add_observer(observer);
  engine.run(kTrials, 9, 1);
  const sim::TimelineConnectivityResult serial = observer.result();
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{0}}) {
    engine.run(kTrials, 9, threads);
    const sim::TimelineConnectivityResult& p = observer.result();
    bool equal = serial.trials == p.trials &&
                 serial.partitioned_trials == p.partitioned_trials &&
                 serial.time_to_partition_hours.count() ==
                     p.time_to_partition_hours.count() &&
                 serial.time_to_partition_hours.mean() ==
                     p.time_to_partition_hours.mean() &&
                 serial.peak_nodes_unreachable_pct.mean() ==
                     p.peak_nodes_unreachable_pct.mean() &&
                 serial.peak_nodes_unreachable_pct.sample_stddev() ==
                     p.peak_nodes_unreachable_pct.sample_stddev();
    for (std::size_t i = 0; equal && i < serial.steps.size(); ++i) {
      equal = serial.steps[i].hour == p.steps[i].hour &&
              serial.steps[i].cables_dead_pct.mean() ==
                  p.steps[i].cables_dead_pct.mean() &&
              serial.steps[i].nodes_unreachable_pct.sample_stddev() ==
                  p.steps[i].nodes_unreachable_pct.sample_stddev() &&
              serial.steps[i].largest_component_pct.mean() ==
                  p.steps[i].largest_component_pct.mean();
    }
    if (!equal) fail("observer aggregates diverged across thread counts");
  }
}

// Once the scratch is warm, playback never allocates. The counted pass
// replays the warm-up's exact draw sequence.
void check_zero_steady_state_allocations() {
  const sim::TimelineEngine& engine = default_engine();
  sim::TimelineScratch scratch;
  const util::Rng base(55);
  constexpr std::size_t kSteadyTrials = 16;
  auto run = [&] {
    for (std::uint64_t t = 0; t < kSteadyTrials; ++t) {
      util::Rng rng = base.split(t);
      engine.playback(rng, scratch);
    }
  };
  run();  // warm every buffer over the same sequence
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  run();
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  if (after != before) {
    std::fprintf(stderr,
                 "perf_timeline equivalence check FAILED: steady-state "
                 "playback loop allocated %zu times over %zu trials\n",
                 after - before, kSteadyTrials);
    std::exit(1);
  }
}

}  // namespace

int main() {
  check_validation();
  check_playback_against_naive();
  check_thread_bit_identity();
  check_zero_steady_state_allocations();
  std::printf("perf_timeline: all equivalence checks passed\n");

  // --- timing: the acceptance comparison ------------------------------------
  // Old path: event derivation through the one-shot components plus one
  // full connectivity build per unified step. New path: the same events
  // plus two incremental resurrection walks. Both single-threaded on the
  // 470-cable network over the 97-step default axis.
  const sim::TimelineEngine& engine = default_engine();
  constexpr std::size_t kTrials = 4;
  constexpr std::uint64_t kSeed = 1859;

  NaiveTrial naive;
  const double old_ms = benchutil::time_best_ms([&] {
    const util::Rng base(kSeed);
    for (std::uint64_t t = 0; t < kTrials; ++t) {
      util::Rng rng = base.split(t);
      naive_playback(engine, rng, naive);
      if (naive.cables_dead_pct.size() != engine.step_count()) std::exit(1);
    }
  }, 5);

  sim::TimelineScratch scratch;
  const double new_ms = benchutil::time_best_ms([&] {
    const util::Rng base(kSeed);
    for (std::uint64_t t = 0; t < kTrials; ++t) {
      util::Rng rng = base.split(t);
      engine.playback(rng, scratch);
      if (scratch.cables_dead_pct.size() != engine.step_count()) std::exit(1);
    }
  }, 5);

  const double speedup = old_ms / new_ms;
  std::printf("perf_timeline: %zu-step playback (%zu storm + %zu repair), "
              "%zu trials, 470-cable network\n",
              engine.step_count(), engine.storm_step_count(),
              engine.repair_step_count(), kTrials);
  std::printf("  old (full recompute per step):  %8.3f ms\n", old_ms);
  std::printf("  new (incremental playback):     %8.3f ms\n", new_ms);
  std::printf("  speedup (old/new):              %8.2fx\n", speedup);

  benchutil::write_bench_json(
      "timeline",
      {{"steps", static_cast<double>(engine.step_count()), "count"},
       {"trials", static_cast<double>(kTrials), "count"},
       {"naive_playback_ms", old_ms, "ms"},
       {"incremental_playback_ms", new_ms, "ms"},
       {"speedup", speedup, "x"}});

  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "perf_timeline FAILED: speedup %.2fx below the 5x "
                 "acceptance threshold\n", speedup);
    return 1;
  }
  return 0;
}
