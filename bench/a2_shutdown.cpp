// §5.2 extension: lead-time shutdown strategy. Expected cable failures with
// and without a prioritized power-down plan, across lead times and storm
// strengths, plus the §5.3 partition view after a severe draw.
#include <iostream>

#include "core/partition.h"
#include "core/shutdown.h"
#include "datasets/submarine.h"
#include "gic/failure_model.h"
#include "gic/timeline.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace solarnet;

  const auto net = datasets::make_submarine_network({});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const auto s2 = gic::LatitudeBandFailureModel::s2();

  util::print_banner(std::cout,
                     "Shutdown strategy: expected failed cables vs lead time "
                     "(0.5 h per cable shutdown, powered-off factor 0.65)");
  util::TextTable t({"model", "lead time h", "cables shut down",
                     "E[failures] no action", "E[failures] with plan",
                     "E[cables saved]"});
  for (const gic::RepeaterFailureModel* model :
       std::initializer_list<const gic::RepeaterFailureModel*>{&s1, &s2}) {
    for (double lead : {13.0, 24.0, 72.0, 120.0}) {
      core::ShutdownPolicy policy;
      policy.lead_time_hours = lead;
      const auto out = core::evaluate_shutdown(net, *model, policy);
      t.add_row({model->name(), util::format_fixed(lead, 0),
                 std::to_string(out.cables_shut_down),
                 util::format_fixed(out.expected_failures_no_action, 1),
                 util::format_fixed(out.expected_failures_with_plan, 1),
                 util::format_fixed(out.expected_cables_saved(), 1)});
    }
  }
  t.print(std::cout);
  std::cout << "paper §5.2: powering off gives only partial protection — "
               "GIC flows through powered-off cables too\n";

  util::print_banner(std::cout,
                     "Ablation: shutdown triage policy (S2, 24 h lead time)");
  util::TextTable abl({"priority", "E[failures] with plan",
                       "E[cables saved]"});
  for (const auto& [label, priority] :
       std::initializer_list<std::pair<const char*, core::ShutdownPriority>>{
           {"by expected benefit", core::ShutdownPriority::kByBenefit},
           {"by raw risk", core::ShutdownPriority::kByRisk},
           {"no triage (id order)", core::ShutdownPriority::kNone}}) {
    core::ShutdownPolicy policy;
    policy.lead_time_hours = 24.0;
    policy.priority = priority;
    const auto out = core::evaluate_shutdown(net, s2, policy);
    abl.add_row({label,
                 util::format_fixed(out.expected_failures_with_plan, 1),
                 util::format_fixed(out.expected_cables_saved(), 1)});
  }
  abl.print(std::cout);

  // Time-resolved damage: how fast does the main phase lock the losses in?
  util::print_banner(std::cout,
                     "Damage timeline under S1 (onset 2 h, main phase 10 h, "
                     "recovery tau 18 h)");
  {
    sim::TrialConfig cfg;
    const sim::FailureSimulator simulator(net, cfg);
    const gic::StormPhaseProfile profile;
    const auto series =
        gic::failure_time_series(simulator, s1, profile, 6.0);
    util::TextTable tl({"hour", "E[cables failed]", "% of final damage"});
    for (const auto& pt : series) {
      tl.add_row({util::format_fixed(pt.hours, 0),
                  util::format_fixed(pt.expected_cables_failed, 1),
                  util::format_fixed(100.0 * pt.fraction_of_final, 1)});
    }
    tl.print(std::cout);
    std::cout << "shutdown decisions must land inside the onset window — "
                 "by the end of the main phase most damage is locked in\n";
  }

  // §5.3: what partition does a severe storm leave behind?
  util::print_banner(std::cout,
                     "Partitioned Internet after one S1 draw (§5.3)");
  sim::TrialConfig cfg;
  const sim::FailureSimulator simulator(net, cfg);
  util::Rng rng(1859);
  const auto dead = simulator.sample_cable_failures(s1, rng);
  const auto report = core::analyze_partition(net, dead);
  std::cout << core::render_partition(report);
  return 0;
}
