// Scenario-server benchmark: the acceptance harness for ScenarioService +
// ResultCache + request coalescing (`solarnet serve`).
//
// main() runs hard validation gates before any timing:
//   1. a served report body is byte-identical to serialize_report_body()
//      over a direct TrialPipeline run with the same observers and seed,
//   2. a served sweep body is byte-identical to serialize_sweep_body()
//      over a direct SweepEngine::uniform run,
//   3. repeating a request is a cache hit returning identical bytes,
//   4. N threads issuing the same cold request coalesce onto exactly ONE
//      engine pass, all receiving identical bodies,
//   5. the steady-state cache-hit path (parse + key build + lookup)
//      performs ZERO heap allocations,
//   6. hit latency is >= 20x faster than the cold path.
// Any failure exits non-zero, so CI's bench smoke job doubles as a
// served-equals-direct determinism gate. Then it times a Zipf-like
// multi-threaded request mix over a pool of scenarios and emits
// BENCH_serve.json (cold/hit latency, speedup, sustained req/s, hit rate).
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "analysis/country.h"
#include "analysis/dns_resolution.h"
#include "bench_util.h"
#include "datasets/datacenters.h"
#include "datasets/infra_points.h"
#include "datasets/land.h"
#include "datasets/submarine.h"
#include "gic/failure_model.h"
#include "server/request.h"
#include "server/scenario_service.h"
#include "services/availability.h"
#include "sim/monte_carlo.h"
#include "sim/pipeline.h"
#include "sim/sweep.h"
#include "util/rng.h"

// --- global allocation counter ----------------------------------------------
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace solarnet;

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "perf_serve gate FAILED: %s\n", what);
  std::exit(1);
}

const topo::InfrastructureNetwork& submarine() {
  static const auto net = datasets::make_submarine_network({});
  return net;
}

const topo::InfrastructureNetwork& intertubes() {
  static const auto net = datasets::make_intertubes_network({});
  return net;
}

const std::vector<datasets::DnsRootInstance>& dns_roots() {
  static const auto roots = datasets::make_dns_dataset({});
  return roots;
}

server::ServiceContext context() {
  server::ServiceContext ctx;
  ctx.submarine = &submarine();
  ctx.intertubes = &intertubes();
  ctx.itu = nullptr;
  ctx.dns_roots = &dns_roots();
  return ctx;
}

// The same replica-set construction the service uses, so the direct run
// evaluates the identical service specs.
services::ServiceSpec datacenter_service(datasets::DataCenterOperator op,
                                         std::size_t quorum) {
  std::vector<geo::GeoPoint> sites;
  for (const datasets::DataCenter& dc : datasets::datacenters_of(op)) {
    sites.push_back(dc.location);
  }
  return services::service_from_datacenters(
      std::string(datasets::to_string(op)), sites,
      std::max<std::size_t>(1, std::min(quorum, sites.size())));
}

// Direct (no server, no cache) computation of the exact bytes the service
// must serve for a report request.
std::string direct_report_body(const server::ScenarioRequest& req,
                               const std::vector<std::string>& countries) {
  const auto model = req.model == "uniform" ? gic::make_uniform(req.uniform_p)
                     : req.model == "s2"    ? gic::make_s2()
                                            : gic::make_s1();
  sim::TrialConfig cfg;
  cfg.repeater_spacing_km = req.spacing_km;
  cfg.engine = req.engine;
  const sim::FailureSimulator simulator(submarine(), cfg);
  sim::TrialPipeline pipeline(simulator, *model);
  sim::ConnectivityObserver conn;
  services::AvailabilityObserver google(
      submarine(),
      datacenter_service(datasets::DataCenterOperator::kGoogle, req.quorum));
  services::AvailabilityObserver facebook(
      submarine(),
      datacenter_service(datasets::DataCenterOperator::kFacebook, req.quorum));
  analysis::DnsResolutionObserver dns(submarine(), dns_roots(),
                                      req.dns_threshold_pct);
  analysis::CountryIsolationObserver isolation(submarine(), countries);
  pipeline.add_observer(conn);
  pipeline.add_observer(google);
  pipeline.add_observer(facebook);
  pipeline.add_observer(dns);
  pipeline.add_observer(isolation);
  pipeline.run(req.trials, req.seed);
  return server::serialize_report_body(req, conn.result(), google.result(),
                                       facebook.result(), dns.result(),
                                       isolation.results());
}

std::string direct_sweep_body(const server::ScenarioRequest& req) {
  sim::TrialConfig cfg;
  cfg.repeater_spacing_km = req.spacing_km;
  const sim::FailureSimulator simulator(submarine(), cfg);
  const sim::SweepEngine engine =
      sim::SweepEngine::uniform(simulator, req.grid);
  const sim::SweepResult result = engine.run(req.trials, req.seed, 0);
  return server::serialize_sweep_body(req, result);
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  server::ServiceOptions options;  // default cache budget, auto threads
  server::ScenarioService service(context(), options);
  server::RequestScratch scratch;

  // --- gate 1: served report == direct report, byte for byte ---------------
  const std::string report_line =
      R"({"cmd":"report","model":"uniform","p":0.01,"trials":64,"seed":11})";
  const double cold_start_ms = now_ms();
  const server::Body served_report = service.handle_line(report_line, scratch);
  const double cold_ms = now_ms() - cold_start_ms;
  {
    server::ScenarioRequest req;
    server::parse_request(report_line, req);
    const std::string direct = direct_report_body(req, options.countries);
    if (*served_report != direct) {
      fail("served report body differs from direct TrialPipeline bytes");
    }
  }

  // --- gate 2: served sweep == direct sweep, byte for byte -----------------
  const std::string sweep_line =
      R"({"cmd":"sweep","grid":[0.001,0.01,0.1],"trials":32,"seed":5})";
  const server::Body served_sweep = service.handle_line(sweep_line, scratch);
  {
    server::ScenarioRequest req;
    server::parse_request(sweep_line, req);
    if (*served_sweep != direct_sweep_body(req)) {
      fail("served sweep body differs from direct SweepEngine bytes");
    }
  }

  // --- gate 3: repeat request is a cache hit with identical bytes ----------
  {
    const auto before = service.stats();
    const server::Body again = service.handle_line(report_line, scratch);
    const auto after = service.stats();
    if (after.cache_hits != before.cache_hits + 1) {
      fail("repeated request did not hit the cache");
    }
    if (*again != *served_report) fail("cache hit served different bytes");
  }

  // --- gate 4: concurrent identical misses coalesce to one computation -----
  {
    const std::string fresh_line =
        R"({"cmd":"report","model":"uniform","p":0.02,"trials":64,"seed":977})";
    const auto before = service.stats();
    constexpr std::size_t kThreads = 8;
    std::vector<server::Body> bodies(kThreads);
    std::atomic<std::size_t> ready{0};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        server::RequestScratch local;
        ready.fetch_add(1);
        while (ready.load() < kThreads) {
        }  // crude barrier: maximize overlap
        bodies[t] = service.handle_line(fresh_line, local);
      });
    }
    for (std::thread& t : threads) t.join();
    const auto after = service.stats();
    if (after.computed != before.computed + 1) {
      fail("coalescing: concurrent identical requests ran >1 computation");
    }
    for (const server::Body& body : bodies) {
      if (!body || *body != *bodies[0]) {
        fail("coalescing: waiters received different bodies");
      }
    }
  }

  // --- gate 5: zero steady-state allocations on the hit path ---------------
  constexpr std::size_t kHitIters = 4096;
  for (std::size_t i = 0; i < 64; ++i) {
    (void)service.handle_line(report_line, scratch);  // warm scratch/cache
  }
  const std::size_t allocs_before = g_allocations.load();
  for (std::size_t i = 0; i < kHitIters; ++i) {
    (void)service.handle_line(report_line, scratch);
  }
  const std::size_t hit_allocs = g_allocations.load() - allocs_before;
  if (hit_allocs != 0) {
    std::fprintf(stderr, "hit path allocated %zu times over %zu requests\n",
                 hit_allocs, kHitIters);
    fail("steady-state cache-hit path must be allocation-free");
  }

  // --- gate 6: hit latency >= 20x faster than the cold path ----------------
  const double hit_block_start = now_ms();
  for (std::size_t i = 0; i < kHitIters; ++i) {
    (void)service.handle_line(report_line, scratch);
  }
  const double hit_us =
      (now_ms() - hit_block_start) * 1000.0 / static_cast<double>(kHitIters);
  const double speedup = cold_ms * 1000.0 / hit_us;
  if (speedup < 20.0) {
    std::fprintf(stderr, "cold %.3f ms vs hit %.3f us (%.1fx)\n", cold_ms,
                 hit_us, speedup);
    fail("cache hit must be >= 20x faster than the cold path");
  }

  // --- throughput: Zipf-like mix over a scenario pool, 4 client threads ----
  // Rank r is requested with weight ~ 1/(r+1) — a few hot scenarios, a
  // long warm tail, the shape a dashboard fanning out over severities
  // produces. All scenarios are pre-warmed so this measures the sustained
  // served-from-cache regime (the occasional recompute would measure the
  // engine, which perf_pipeline already covers).
  constexpr std::size_t kScenarios = 16;
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPerClient = 8192;
  std::vector<std::string> lines;
  for (std::size_t s = 0; s < kScenarios; ++s) {
    lines.push_back(
        "{\"cmd\":\"report\",\"model\":\"uniform\",\"p\":0.01,\"trials\":32,"
        "\"seed\":" +
        std::to_string(100 + s) + "}");
  }
  for (const std::string& line : lines) {
    (void)service.handle_line(line, scratch);  // pre-warm every scenario
  }
  std::vector<double> cumulative(kScenarios);
  double total_weight = 0.0;
  for (std::size_t s = 0; s < kScenarios; ++s) {
    total_weight += 1.0 / static_cast<double>(s + 1);
    cumulative[s] = total_weight;
  }
  const auto stats_before = service.stats();
  const double mix_start = now_ms();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      server::RequestScratch local;
      util::SplitMix64 mix(0xbe9cu + c);
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const double u = total_weight *
                         (static_cast<double>(mix.next() >> 11) * 0x1.0p-53);
        std::size_t pick = 0;
        while (pick + 1 < kScenarios && cumulative[pick] < u) ++pick;
        (void)service.handle_line(lines[pick], local);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double mix_seconds = (now_ms() - mix_start) / 1000.0;
  const auto stats_after = service.stats();
  const double sustained_rps =
      static_cast<double>(kClients * kPerClient) / mix_seconds;
  const double hit_rate =
      100.0 *
      static_cast<double>(stats_after.cache_hits - stats_before.cache_hits) /
      static_cast<double>(kClients * kPerClient);

  std::printf("perf_serve: all gates passed\n");
  std::printf("  cold request (engine build + %d trials): %9.3f ms\n", 64,
              cold_ms);
  std::printf("  cache hit:                               %9.3f us\n", hit_us);
  std::printf("  hit speedup over cold:                   %9.1f x\n", speedup);
  std::printf("  sustained mixed load (%zu threads):       %9.0f req/s\n",
              kClients, sustained_rps);
  std::printf("  mix cache-hit rate:                      %9.2f %%\n",
              hit_rate);
  std::printf("  steady-state hit-path allocations:       %9zu\n", hit_allocs);

  benchutil::write_bench_json(
      "serve",
      {{"cold_request_ms", cold_ms, "ms"},
       {"cache_hit_us", hit_us, "us"},
       {"hit_speedup", speedup, "x"},
       {"sustained_rps", sustained_rps, "req/s"},
       {"mix_hit_rate_pct", hit_rate, "%"},
       {"hit_path_allocations", static_cast<double>(hit_allocs), "count"}});
  return 0;
}
