// §3.3 extension: storm impact on LEO constellations. Coverage of a
// Starlink-class shell, storm-time drag enhancement, station-keeping
// margins, and fleet-loss fractions per storm scenario and shell altitude.
#include <iostream>

#include "satellite/constellation.h"
#include "satellite/drag.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace solarnet;

  const satellite::Constellation shell550;  // Starlink shell 1
  util::print_banner(std::cout, "Constellation: 72x22 @550 km, 53 deg");
  std::cout << "satellites: " << shell550.size() << ", orbital period "
            << util::format_fixed(shell550.orbital_period_s() / 60.0, 1)
            << " min, coverage (|lat|<53, 25 deg min elevation): "
            << util::format_fixed(
                   100.0 * shell550.coverage_fraction(0.0, 25.0, 53.0, 4.0),
                   1)
            << "%\n";

  const satellite::DragModel drag;
  util::print_banner(std::cout,
                     "Storm drag: decay rates and fleet loss by scenario");
  util::TextTable t({"storm", "density x", "decay km/day @550",
                     "decay km/day @340", "fleet loss @550 (14d)",
                     "fleet loss @340 (14d)"});
  satellite::ConstellationConfig low;
  low.altitude_km = 340.0;
  const satellite::Constellation shell340(low);
  for (const gic::StormScenario& storm :
       {gic::moderate_storm(), gic::quebec_1989(), gic::ny_railroad_1921(),
        gic::carrington_1859()}) {
    const double mult = satellite::storm_density_multiplier(storm);
    const auto hi = satellite::evaluate_fleet_impact(shell550, storm, 14.0,
                                                     drag);
    const auto lo = satellite::evaluate_fleet_impact(shell340, storm, 14.0,
                                                     drag);
    t.add_row({storm.name, util::format_fixed(mult, 1),
               util::format_fixed(hi.decay_rate_storm_km_day, 3),
               util::format_fixed(lo.decay_rate_storm_km_day, 3),
               util::format_fixed(100.0 * hi.fleet_loss_fraction, 1) + "%",
               util::format_fixed(100.0 * lo.fleet_loss_fraction, 1) + "%"});
  }
  t.print(std::cout);

  util::print_banner(std::cout, "Passive (no-thrust) orbit lifetimes");
  util::TextTable life({"altitude km", "quiet days", "Carrington-storm days"});
  for (double altitude : {340.0, 450.0, 550.0}) {
    const double quiet = drag.passive_lifetime_days(altitude, 1.0);
    const double storm = drag.passive_lifetime_days(
        altitude,
        satellite::storm_density_multiplier(gic::carrington_1859()));
    life.add_row({util::format_fixed(altitude, 0),
                  util::format_fixed(quiet, 0),
                  util::format_fixed(storm, 0)});
  }
  life.print(std::cout);
  std::cout << "\npaper §3.3: storms add drag, 'particularly in low earth "
               "orbit systems such as Starlink', risking orbital decay and "
               "uncontrolled reentry — the low shell is the fragile one\n";
  return 0;
}
