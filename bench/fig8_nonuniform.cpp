// Figure 8: cable and node failures under the paper's two non-uniform
// latitude-band states S1 (high: [1, 0.1, 0.01]) and S2 (low:
// [0.1, 0.01, 0.001]), at spacings 50/100/150 km, for the submarine and
// Intertubes networks. Includes the per-repeater-latitude ablation
// (DESIGN.md design-choice #1).
#include <iostream>

#include "analysis/connectivity.h"
#include "datasets/land.h"
#include "datasets/submarine.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace solarnet;

  const auto submarine = datasets::make_submarine_network({});
  const auto intertubes = datasets::make_intertubes_network({});
  constexpr std::size_t kTrials = 10;

  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const auto s2 = gic::LatitudeBandFailureModel::s2();

  util::print_banner(std::cout,
                     "Figure 8: failures under non-uniform latitude-band "
                     "states (mean % over 10 trials)");
  util::TextTable t({"state", "spacing km", "submarine cables",
                     "submarine nodes", "intertubes cables",
                     "intertubes nodes"});
  for (const auto* model :
       std::initializer_list<const gic::RepeaterFailureModel*>{&s1, &s2}) {
    for (double spacing : {50.0, 100.0, 150.0}) {
      const auto sub = analysis::band_failure_run(submarine, *model, spacing,
                                                  kTrials, 8);
      const auto land = analysis::band_failure_run(intertubes, *model,
                                                   spacing, kTrials, 9);
      t.add_row({model == &s1 ? "S1 (high)" : "S2 (low)",
                 util::format_fixed(spacing, 0),
                 util::format_fixed(sub.cables_failed_mean_pct, 1),
                 util::format_fixed(sub.nodes_unreachable_mean_pct, 1),
                 util::format_fixed(land.cables_failed_mean_pct, 1),
                 util::format_fixed(land.nodes_unreachable_mean_pct, 1)});
    }
  }
  t.print(std::cout);
  std::cout << "\npaper checkpoints @150 km: S1 -> 43% submarine cables "
               "fail; S2 -> ~10% submarine cables/nodes; intertubes "
               "negligible under both\n";

  // Ablation: band keyed on each repeater's own latitude instead of the
  // cable's highest endpoint. Long low-latitude cables with northern tips
  // fare better; purely northern cables are unchanged.
  const gic::PerRepeaterBandModel ab1("S1/per-repeater", {1.0, 0.1, 0.01});
  const gic::PerRepeaterBandModel ab2("S2/per-repeater", {0.1, 0.01, 0.001});
  util::print_banner(std::cout,
                     "Ablation: cable-endpoint banding (paper) vs "
                     "per-repeater banding, submarine @150 km");
  util::TextTable abl({"model", "cables failed %", "nodes unreachable %"});
  for (const gic::RepeaterFailureModel* m :
       std::initializer_list<const gic::RepeaterFailureModel*>{&s1, &ab1, &s2,
                                                               &ab2}) {
    const auto r = analysis::band_failure_run(submarine, *m, 150.0, kTrials,
                                              21);
    abl.add_row({m->name(), util::format_fixed(r.cables_failed_mean_pct, 1),
                 util::format_fixed(r.nodes_unreachable_mean_pct, 1)});
  }
  abl.print(std::cout);
  return 0;
}
