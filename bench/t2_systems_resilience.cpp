// §4.4.2 / §4.4.3: systems resilience — hyperscale data center footprints
// (Google vs Facebook) and DNS root server distribution.
#include <iostream>

#include "analysis/as_impact.h"
#include "analysis/dns_resolution.h"
#include "analysis/systems.h"
#include "datasets/infra_points.h"
#include "datasets/routers.h"
#include "datasets/submarine.h"
#include "sim/monte_carlo.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace solarnet;

  util::print_banner(std::cout,
                     "Hyperscale data center footprints (§4.4.2)");
  util::TextTable dc({"operator", "sites", "continents", "% above |40|",
                      "low-risk sites", "lat spread deg", "score"});
  for (auto op : {datasets::DataCenterOperator::kGoogle,
                  datasets::DataCenterOperator::kFacebook}) {
    const auto s = analysis::summarize_datacenters(op);
    dc.add_row({s.label, std::to_string(s.site_count),
                std::to_string(s.continents_covered),
                util::format_fixed(100.0 * s.fraction_above_40, 0),
                std::to_string(s.low_risk_sites),
                util::format_fixed(s.latitude_spread_deg, 1),
                util::format_fixed(analysis::footprint_resilience_score(s),
                                   2)});
  }
  dc.print(std::cout);
  std::cout << "paper: Google has the better spread (Asia + South America); "
               "Facebook, concentrated in the northern latitudes, is more "
               "vulnerable\n";

  const auto roots = datasets::make_dns_dataset({});
  const auto dns = analysis::summarize_dns(roots);
  util::print_banner(std::cout, "DNS root servers (§4.4.3)");
  std::cout << "instances: " << dns.instance_count
            << " across " << dns.root_letters << " root letters and "
            << dns.continents_covered << " continents\n"
            << "share above |40 deg|: "
            << util::format_fixed(100.0 * dns.fraction_above_40, 1)
            << "% (paper: 39%)\n"
            << "letters still served if every instance above |40 deg| is "
               "lost: "
            << dns.letters_surviving_40_cutoff << "/13 (paper: resilient)\n";

  util::TextTable per({"continent", "instances"});
  for (const auto& [cont, n] : dns.per_continent) {
    per.add_row({std::string(geo::to_string(cont)), std::to_string(n)});
  }
  per.print(std::cout);

  // Operational DNS view: can clients still resolve the root after an S1
  // draw over the submarine plant?
  {
    const auto net = datasets::make_submarine_network({});
    const sim::FailureSimulator simulator(net, {});
    const auto s1 = gic::LatitudeBandFailureModel::s1();
    util::Rng rng(13);
    double availability = 0.0;
    double letters = 0.0;
    constexpr int kDraws = 10;
    for (int d = 0; d < kDraws; ++d) {
      const auto dead = simulator.sample_cable_failures(s1, rng);
      const auto r = analysis::evaluate_dns_resolution(net, dead, roots);
      availability += r.resolution_availability;
      letters += r.mean_letters_reachable;
    }
    util::print_banner(std::cout,
                       "DNS root resolution under S1 (10 draws, "
                       "population-weighted)");
    std::cout << "clients that can still resolve the root: "
              << util::format_fixed(100.0 * availability / kDraws, 1)
              << "%\nmean root letters reachable: "
              << util::format_fixed(letters / kDraws, 1) << "/13\n";
  }

  // §4.4.1: AS impact classes per storm (direct field exposure vs dark
  // grid), router-weighted.
  {
    const auto routers = datasets::make_router_dataset({});
    util::print_banner(std::cout,
                       "AS impact classification (router-weighted shares)");
    util::TextTable t({"storm", "ASes direct %", "ASes grid-impacted %",
                       "routers direct %", "routers clear %"});
    for (const gic::StormScenario& storm :
         {gic::quebec_1989(), gic::ny_railroad_1921(),
          gic::carrington_1859()}) {
      const gic::GeoelectricFieldModel field(storm);
      const auto grid = powergrid::evaluate_grid(field);
      const auto s = analysis::classify_as_impact(routers, field, grid);
      t.add_row(
          {storm.name,
           util::format_fixed(100.0 * s.fraction_direct(), 1),
           util::format_fixed(100.0 * static_cast<double>(s.grid_impacted) /
                                  static_cast<double>(s.as_total),
                              1),
           util::format_fixed(100.0 * s.router_share_direct, 1),
           util::format_fixed(100.0 * s.router_share_clear, 1)});
    }
    t.print(std::cout);
    std::cout << "paper §4.4.1: 57% of ASes have a presence above |40 deg|; "
                 "a severe storm touches most of them directly\n";
  }
  return 0;
}
