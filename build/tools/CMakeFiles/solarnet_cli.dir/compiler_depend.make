# Empty compiler generated dependencies file for solarnet_cli.
# This may be replaced when dependencies are built.
