file(REMOVE_RECURSE
  "CMakeFiles/solarnet_cli.dir/cli_args.cpp.o"
  "CMakeFiles/solarnet_cli.dir/cli_args.cpp.o.d"
  "CMakeFiles/solarnet_cli.dir/solarnet_cli.cpp.o"
  "CMakeFiles/solarnet_cli.dir/solarnet_cli.cpp.o.d"
  "solarnet"
  "solarnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solarnet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
