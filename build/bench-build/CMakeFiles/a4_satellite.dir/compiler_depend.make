# Empty compiler generated dependencies file for a4_satellite.
# This may be replaced when dependencies are built.
