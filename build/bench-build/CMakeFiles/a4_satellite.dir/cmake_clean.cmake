file(REMOVE_RECURSE
  "../bench/a4_satellite"
  "../bench/a4_satellite.pdb"
  "CMakeFiles/a4_satellite.dir/a4_satellite.cpp.o"
  "CMakeFiles/a4_satellite.dir/a4_satellite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a4_satellite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
