file(REMOVE_RECURSE
  "../bench/a2_shutdown"
  "../bench/a2_shutdown.pdb"
  "CMakeFiles/a2_shutdown.dir/a2_shutdown.cpp.o"
  "CMakeFiles/a2_shutdown.dir/a2_shutdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a2_shutdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
