# Empty compiler generated dependencies file for a2_shutdown.
# This may be replaced when dependencies are built.
