file(REMOVE_RECURSE
  "../bench/a8_service_availability"
  "../bench/a8_service_availability.pdb"
  "CMakeFiles/a8_service_availability.dir/a8_service_availability.cpp.o"
  "CMakeFiles/a8_service_availability.dir/a8_service_availability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a8_service_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
