# Empty dependencies file for a8_service_availability.
# This may be replaced when dependencies are built.
