file(REMOVE_RECURSE
  "../bench/a1_planner_ablation"
  "../bench/a1_planner_ablation.pdb"
  "CMakeFiles/a1_planner_ablation.dir/a1_planner_ablation.cpp.o"
  "CMakeFiles/a1_planner_ablation.dir/a1_planner_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a1_planner_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
