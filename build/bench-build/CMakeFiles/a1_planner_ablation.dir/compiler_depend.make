# Empty compiler generated dependencies file for a1_planner_ablation.
# This may be replaced when dependencies are built.
