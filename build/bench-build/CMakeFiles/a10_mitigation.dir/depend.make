# Empty dependencies file for a10_mitigation.
# This may be replaced when dependencies are built.
