file(REMOVE_RECURSE
  "../bench/a10_mitigation"
  "../bench/a10_mitigation.pdb"
  "CMakeFiles/a10_mitigation.dir/a10_mitigation.cpp.o"
  "CMakeFiles/a10_mitigation.dir/a10_mitigation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a10_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
