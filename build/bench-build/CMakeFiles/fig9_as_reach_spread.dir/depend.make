# Empty dependencies file for fig9_as_reach_spread.
# This may be replaced when dependencies are built.
