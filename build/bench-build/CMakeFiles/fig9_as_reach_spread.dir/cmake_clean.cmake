file(REMOVE_RECURSE
  "../bench/fig9_as_reach_spread"
  "../bench/fig9_as_reach_spread.pdb"
  "CMakeFiles/fig9_as_reach_spread.dir/fig9_as_reach_spread.cpp.o"
  "CMakeFiles/fig9_as_reach_spread.dir/fig9_as_reach_spread.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_as_reach_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
