# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig9_as_reach_spread.
