file(REMOVE_RECURSE
  "../bench/fig7_node_failures"
  "../bench/fig7_node_failures.pdb"
  "CMakeFiles/fig7_node_failures.dir/fig7_node_failures.cpp.o"
  "CMakeFiles/fig7_node_failures.dir/fig7_node_failures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_node_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
