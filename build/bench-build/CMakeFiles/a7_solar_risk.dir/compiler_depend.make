# Empty compiler generated dependencies file for a7_solar_risk.
# This may be replaced when dependencies are built.
