file(REMOVE_RECURSE
  "../bench/a7_solar_risk"
  "../bench/a7_solar_risk.pdb"
  "CMakeFiles/a7_solar_risk.dir/a7_solar_risk.cpp.o"
  "CMakeFiles/a7_solar_risk.dir/a7_solar_risk.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a7_solar_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
