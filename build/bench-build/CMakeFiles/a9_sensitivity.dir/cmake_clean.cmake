file(REMOVE_RECURSE
  "../bench/a9_sensitivity"
  "../bench/a9_sensitivity.pdb"
  "CMakeFiles/a9_sensitivity.dir/a9_sensitivity.cpp.o"
  "CMakeFiles/a9_sensitivity.dir/a9_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a9_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
