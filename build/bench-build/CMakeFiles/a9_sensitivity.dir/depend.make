# Empty dependencies file for a9_sensitivity.
# This may be replaced when dependencies are built.
