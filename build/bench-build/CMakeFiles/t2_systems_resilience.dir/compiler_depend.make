# Empty compiler generated dependencies file for t2_systems_resilience.
# This may be replaced when dependencies are built.
