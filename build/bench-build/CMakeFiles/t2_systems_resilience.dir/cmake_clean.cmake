file(REMOVE_RECURSE
  "../bench/t2_systems_resilience"
  "../bench/t2_systems_resilience.pdb"
  "CMakeFiles/t2_systems_resilience.dir/t2_systems_resilience.cpp.o"
  "CMakeFiles/t2_systems_resilience.dir/t2_systems_resilience.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t2_systems_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
