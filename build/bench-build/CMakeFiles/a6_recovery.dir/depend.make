# Empty dependencies file for a6_recovery.
# This may be replaced when dependencies are built.
