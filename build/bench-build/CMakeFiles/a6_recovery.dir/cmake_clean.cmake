file(REMOVE_RECURSE
  "../bench/a6_recovery"
  "../bench/a6_recovery.pdb"
  "CMakeFiles/a6_recovery.dir/a6_recovery.cpp.o"
  "CMakeFiles/a6_recovery.dir/a6_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a6_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
