# Empty compiler generated dependencies file for fig3_latitude_pdf.
# This may be replaced when dependencies are built.
