file(REMOVE_RECURSE
  "../bench/fig3_latitude_pdf"
  "../bench/fig3_latitude_pdf.pdb"
  "CMakeFiles/fig3_latitude_pdf.dir/fig3_latitude_pdf.cpp.o"
  "CMakeFiles/fig3_latitude_pdf.dir/fig3_latitude_pdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_latitude_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
