# Empty dependencies file for a5_interdependence.
# This may be replaced when dependencies are built.
