file(REMOVE_RECURSE
  "../bench/a5_interdependence"
  "../bench/a5_interdependence.pdb"
  "CMakeFiles/a5_interdependence.dir/a5_interdependence.cpp.o"
  "CMakeFiles/a5_interdependence.dir/a5_interdependence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a5_interdependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
