# Empty dependencies file for t1_country_connectivity.
# This may be replaced when dependencies are built.
