file(REMOVE_RECURSE
  "../bench/t1_country_connectivity"
  "../bench/t1_country_connectivity.pdb"
  "CMakeFiles/t1_country_connectivity.dir/t1_country_connectivity.cpp.o"
  "CMakeFiles/t1_country_connectivity.dir/t1_country_connectivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/t1_country_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
