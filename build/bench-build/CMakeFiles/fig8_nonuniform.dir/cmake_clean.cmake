file(REMOVE_RECURSE
  "../bench/fig8_nonuniform"
  "../bench/fig8_nonuniform.pdb"
  "CMakeFiles/fig8_nonuniform.dir/fig8_nonuniform.cpp.o"
  "CMakeFiles/fig8_nonuniform.dir/fig8_nonuniform.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_nonuniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
