# Empty dependencies file for fig8_nonuniform.
# This may be replaced when dependencies are built.
