# Empty dependencies file for a3_traffic_shift.
# This may be replaced when dependencies are built.
