file(REMOVE_RECURSE
  "../bench/a3_traffic_shift"
  "../bench/a3_traffic_shift.pdb"
  "CMakeFiles/a3_traffic_shift.dir/a3_traffic_shift.cpp.o"
  "CMakeFiles/a3_traffic_shift.dir/a3_traffic_shift.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3_traffic_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
