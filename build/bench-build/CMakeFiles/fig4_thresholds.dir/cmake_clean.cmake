file(REMOVE_RECURSE
  "../bench/fig4_thresholds"
  "../bench/fig4_thresholds.pdb"
  "CMakeFiles/fig4_thresholds.dir/fig4_thresholds.cpp.o"
  "CMakeFiles/fig4_thresholds.dir/fig4_thresholds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
