# Empty dependencies file for fig4_thresholds.
# This may be replaced when dependencies are built.
