file(REMOVE_RECURSE
  "../bench/fig6_cable_failures"
  "../bench/fig6_cable_failures.pdb"
  "CMakeFiles/fig6_cable_failures.dir/fig6_cable_failures.cpp.o"
  "CMakeFiles/fig6_cable_failures.dir/fig6_cable_failures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cable_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
