file(REMOVE_RECURSE
  "../bench/fig5_length_cdf"
  "../bench/fig5_length_cdf.pdb"
  "CMakeFiles/fig5_length_cdf.dir/fig5_length_cdf.cpp.o"
  "CMakeFiles/fig5_length_cdf.dir/fig5_length_cdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_length_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
