# Empty dependencies file for storm_drill.
# This may be replaced when dependencies are built.
