file(REMOVE_RECURSE
  "CMakeFiles/storm_drill.dir/storm_drill.cpp.o"
  "CMakeFiles/storm_drill.dir/storm_drill.cpp.o.d"
  "storm_drill"
  "storm_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storm_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
