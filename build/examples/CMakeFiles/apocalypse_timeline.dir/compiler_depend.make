# Empty compiler generated dependencies file for apocalypse_timeline.
# This may be replaced when dependencies are built.
