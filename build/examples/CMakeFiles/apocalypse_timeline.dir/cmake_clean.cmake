file(REMOVE_RECURSE
  "CMakeFiles/apocalypse_timeline.dir/apocalypse_timeline.cpp.o"
  "CMakeFiles/apocalypse_timeline.dir/apocalypse_timeline.cpp.o.d"
  "apocalypse_timeline"
  "apocalypse_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apocalypse_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
