# Empty compiler generated dependencies file for cable_planner.
# This may be replaced when dependencies are built.
