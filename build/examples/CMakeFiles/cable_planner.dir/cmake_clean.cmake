file(REMOVE_RECURSE
  "CMakeFiles/cable_planner.dir/cable_planner.cpp.o"
  "CMakeFiles/cable_planner.dir/cable_planner.cpp.o.d"
  "cable_planner"
  "cable_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cable_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
