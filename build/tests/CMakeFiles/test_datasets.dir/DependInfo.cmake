
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/datasets/cities_test.cpp" "tests/CMakeFiles/test_datasets.dir/datasets/cities_test.cpp.o" "gcc" "tests/CMakeFiles/test_datasets.dir/datasets/cities_test.cpp.o.d"
  "/root/repo/tests/datasets/datacenters_test.cpp" "tests/CMakeFiles/test_datasets.dir/datasets/datacenters_test.cpp.o" "gcc" "tests/CMakeFiles/test_datasets.dir/datasets/datacenters_test.cpp.o.d"
  "/root/repo/tests/datasets/infra_points_test.cpp" "tests/CMakeFiles/test_datasets.dir/datasets/infra_points_test.cpp.o" "gcc" "tests/CMakeFiles/test_datasets.dir/datasets/infra_points_test.cpp.o.d"
  "/root/repo/tests/datasets/land_test.cpp" "tests/CMakeFiles/test_datasets.dir/datasets/land_test.cpp.o" "gcc" "tests/CMakeFiles/test_datasets.dir/datasets/land_test.cpp.o.d"
  "/root/repo/tests/datasets/loaders_test.cpp" "tests/CMakeFiles/test_datasets.dir/datasets/loaders_test.cpp.o" "gcc" "tests/CMakeFiles/test_datasets.dir/datasets/loaders_test.cpp.o.d"
  "/root/repo/tests/datasets/population_test.cpp" "tests/CMakeFiles/test_datasets.dir/datasets/population_test.cpp.o" "gcc" "tests/CMakeFiles/test_datasets.dir/datasets/population_test.cpp.o.d"
  "/root/repo/tests/datasets/routers_test.cpp" "tests/CMakeFiles/test_datasets.dir/datasets/routers_test.cpp.o" "gcc" "tests/CMakeFiles/test_datasets.dir/datasets/routers_test.cpp.o.d"
  "/root/repo/tests/datasets/submarine_test.cpp" "tests/CMakeFiles/test_datasets.dir/datasets/submarine_test.cpp.o" "gcc" "tests/CMakeFiles/test_datasets.dir/datasets/submarine_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/solarnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
