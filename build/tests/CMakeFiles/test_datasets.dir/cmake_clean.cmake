file(REMOVE_RECURSE
  "CMakeFiles/test_datasets.dir/datasets/cities_test.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/cities_test.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/datacenters_test.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/datacenters_test.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/infra_points_test.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/infra_points_test.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/land_test.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/land_test.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/loaders_test.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/loaders_test.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/population_test.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/population_test.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/routers_test.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/routers_test.cpp.o.d"
  "CMakeFiles/test_datasets.dir/datasets/submarine_test.cpp.o"
  "CMakeFiles/test_datasets.dir/datasets/submarine_test.cpp.o.d"
  "test_datasets"
  "test_datasets.pdb"
  "test_datasets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
