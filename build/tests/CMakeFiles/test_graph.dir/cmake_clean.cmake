file(REMOVE_RECURSE
  "CMakeFiles/test_graph.dir/graph/components_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/components_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/cut_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/cut_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/graph_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/graph_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/traversal_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/traversal_test.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/union_find_test.cpp.o"
  "CMakeFiles/test_graph.dir/graph/union_find_test.cpp.o.d"
  "test_graph"
  "test_graph.pdb"
  "test_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
