# Empty compiler generated dependencies file for test_powergrid.
# This may be replaced when dependencies are built.
