file(REMOVE_RECURSE
  "CMakeFiles/test_gic.dir/gic/efield_test.cpp.o"
  "CMakeFiles/test_gic.dir/gic/efield_test.cpp.o.d"
  "CMakeFiles/test_gic.dir/gic/failure_model_test.cpp.o"
  "CMakeFiles/test_gic.dir/gic/failure_model_test.cpp.o.d"
  "CMakeFiles/test_gic.dir/gic/induction_test.cpp.o"
  "CMakeFiles/test_gic.dir/gic/induction_test.cpp.o.d"
  "CMakeFiles/test_gic.dir/gic/storm_test.cpp.o"
  "CMakeFiles/test_gic.dir/gic/storm_test.cpp.o.d"
  "CMakeFiles/test_gic.dir/gic/timeline_test.cpp.o"
  "CMakeFiles/test_gic.dir/gic/timeline_test.cpp.o.d"
  "test_gic"
  "test_gic.pdb"
  "test_gic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
