# Empty dependencies file for test_gic.
# This may be replaced when dependencies are built.
