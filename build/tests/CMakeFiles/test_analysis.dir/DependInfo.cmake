
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/as_analysis_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/as_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/as_analysis_test.cpp.o.d"
  "/root/repo/tests/analysis/as_impact_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/as_impact_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/as_impact_test.cpp.o.d"
  "/root/repo/tests/analysis/connectivity_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/connectivity_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/connectivity_test.cpp.o.d"
  "/root/repo/tests/analysis/country_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/country_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/country_test.cpp.o.d"
  "/root/repo/tests/analysis/distribution_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/distribution_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/distribution_test.cpp.o.d"
  "/root/repo/tests/analysis/dns_resolution_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/dns_resolution_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/dns_resolution_test.cpp.o.d"
  "/root/repo/tests/analysis/economics_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/economics_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/economics_test.cpp.o.d"
  "/root/repo/tests/analysis/latency_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/latency_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/latency_test.cpp.o.d"
  "/root/repo/tests/analysis/lengths_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/lengths_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/lengths_test.cpp.o.d"
  "/root/repo/tests/analysis/report_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/report_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/report_test.cpp.o.d"
  "/root/repo/tests/analysis/systems_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/systems_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/systems_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/solarnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
