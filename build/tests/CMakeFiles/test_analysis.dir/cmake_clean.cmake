file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/as_analysis_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/as_analysis_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/as_impact_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/as_impact_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/connectivity_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/connectivity_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/country_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/country_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/distribution_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/distribution_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/dns_resolution_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/dns_resolution_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/economics_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/economics_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/latency_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/latency_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/lengths_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/lengths_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/report_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/report_test.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/systems_test.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/systems_test.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
