file(REMOVE_RECURSE
  "CMakeFiles/test_solar.dir/solar/cycle_test.cpp.o"
  "CMakeFiles/test_solar.dir/solar/cycle_test.cpp.o.d"
  "test_solar"
  "test_solar.pdb"
  "test_solar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
