file(REMOVE_RECURSE
  "CMakeFiles/test_satellite.dir/satellite/satellite_test.cpp.o"
  "CMakeFiles/test_satellite.dir/satellite/satellite_test.cpp.o.d"
  "test_satellite"
  "test_satellite.pdb"
  "test_satellite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_satellite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
