
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/geo/coords_test.cpp" "tests/CMakeFiles/test_geo.dir/geo/coords_test.cpp.o" "gcc" "tests/CMakeFiles/test_geo.dir/geo/coords_test.cpp.o.d"
  "/root/repo/tests/geo/distance_test.cpp" "tests/CMakeFiles/test_geo.dir/geo/distance_test.cpp.o" "gcc" "tests/CMakeFiles/test_geo.dir/geo/distance_test.cpp.o.d"
  "/root/repo/tests/geo/grid_test.cpp" "tests/CMakeFiles/test_geo.dir/geo/grid_test.cpp.o" "gcc" "tests/CMakeFiles/test_geo.dir/geo/grid_test.cpp.o.d"
  "/root/repo/tests/geo/regions_test.cpp" "tests/CMakeFiles/test_geo.dir/geo/regions_test.cpp.o" "gcc" "tests/CMakeFiles/test_geo.dir/geo/regions_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/solarnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
