
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/mitigation_test.cpp" "tests/CMakeFiles/test_core.dir/core/mitigation_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/mitigation_test.cpp.o.d"
  "/root/repo/tests/core/partition_test.cpp" "tests/CMakeFiles/test_core.dir/core/partition_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/partition_test.cpp.o.d"
  "/root/repo/tests/core/planner_test.cpp" "tests/CMakeFiles/test_core.dir/core/planner_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/planner_test.cpp.o.d"
  "/root/repo/tests/core/scenario_test.cpp" "tests/CMakeFiles/test_core.dir/core/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/scenario_test.cpp.o.d"
  "/root/repo/tests/core/shutdown_test.cpp" "tests/CMakeFiles/test_core.dir/core/shutdown_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/shutdown_test.cpp.o.d"
  "/root/repo/tests/core/world_test.cpp" "tests/CMakeFiles/test_core.dir/core/world_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/world_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/solarnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
