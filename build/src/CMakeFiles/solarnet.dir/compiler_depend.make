# Empty compiler generated dependencies file for solarnet.
# This may be replaced when dependencies are built.
