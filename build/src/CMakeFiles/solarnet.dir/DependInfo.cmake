
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/as_analysis.cpp" "src/CMakeFiles/solarnet.dir/analysis/as_analysis.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/analysis/as_analysis.cpp.o.d"
  "/root/repo/src/analysis/as_impact.cpp" "src/CMakeFiles/solarnet.dir/analysis/as_impact.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/analysis/as_impact.cpp.o.d"
  "/root/repo/src/analysis/connectivity.cpp" "src/CMakeFiles/solarnet.dir/analysis/connectivity.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/analysis/connectivity.cpp.o.d"
  "/root/repo/src/analysis/country.cpp" "src/CMakeFiles/solarnet.dir/analysis/country.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/analysis/country.cpp.o.d"
  "/root/repo/src/analysis/distribution.cpp" "src/CMakeFiles/solarnet.dir/analysis/distribution.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/analysis/distribution.cpp.o.d"
  "/root/repo/src/analysis/dns_resolution.cpp" "src/CMakeFiles/solarnet.dir/analysis/dns_resolution.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/analysis/dns_resolution.cpp.o.d"
  "/root/repo/src/analysis/economics.cpp" "src/CMakeFiles/solarnet.dir/analysis/economics.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/analysis/economics.cpp.o.d"
  "/root/repo/src/analysis/latency.cpp" "src/CMakeFiles/solarnet.dir/analysis/latency.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/analysis/latency.cpp.o.d"
  "/root/repo/src/analysis/lengths.cpp" "src/CMakeFiles/solarnet.dir/analysis/lengths.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/analysis/lengths.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/solarnet.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/analysis/report.cpp.o.d"
  "/root/repo/src/analysis/systems.cpp" "src/CMakeFiles/solarnet.dir/analysis/systems.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/analysis/systems.cpp.o.d"
  "/root/repo/src/core/mitigation.cpp" "src/CMakeFiles/solarnet.dir/core/mitigation.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/core/mitigation.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/CMakeFiles/solarnet.dir/core/partition.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/core/partition.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/CMakeFiles/solarnet.dir/core/planner.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/core/planner.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/solarnet.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/core/scenario.cpp.o.d"
  "/root/repo/src/core/shutdown.cpp" "src/CMakeFiles/solarnet.dir/core/shutdown.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/core/shutdown.cpp.o.d"
  "/root/repo/src/core/world.cpp" "src/CMakeFiles/solarnet.dir/core/world.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/core/world.cpp.o.d"
  "/root/repo/src/datasets/cities.cpp" "src/CMakeFiles/solarnet.dir/datasets/cities.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/datasets/cities.cpp.o.d"
  "/root/repo/src/datasets/datacenters.cpp" "src/CMakeFiles/solarnet.dir/datasets/datacenters.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/datasets/datacenters.cpp.o.d"
  "/root/repo/src/datasets/infra_points.cpp" "src/CMakeFiles/solarnet.dir/datasets/infra_points.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/datasets/infra_points.cpp.o.d"
  "/root/repo/src/datasets/land.cpp" "src/CMakeFiles/solarnet.dir/datasets/land.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/datasets/land.cpp.o.d"
  "/root/repo/src/datasets/loaders.cpp" "src/CMakeFiles/solarnet.dir/datasets/loaders.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/datasets/loaders.cpp.o.d"
  "/root/repo/src/datasets/population.cpp" "src/CMakeFiles/solarnet.dir/datasets/population.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/datasets/population.cpp.o.d"
  "/root/repo/src/datasets/routers.cpp" "src/CMakeFiles/solarnet.dir/datasets/routers.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/datasets/routers.cpp.o.d"
  "/root/repo/src/datasets/submarine.cpp" "src/CMakeFiles/solarnet.dir/datasets/submarine.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/datasets/submarine.cpp.o.d"
  "/root/repo/src/geo/coords.cpp" "src/CMakeFiles/solarnet.dir/geo/coords.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/geo/coords.cpp.o.d"
  "/root/repo/src/geo/distance.cpp" "src/CMakeFiles/solarnet.dir/geo/distance.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/geo/distance.cpp.o.d"
  "/root/repo/src/geo/grid.cpp" "src/CMakeFiles/solarnet.dir/geo/grid.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/geo/grid.cpp.o.d"
  "/root/repo/src/geo/regions.cpp" "src/CMakeFiles/solarnet.dir/geo/regions.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/geo/regions.cpp.o.d"
  "/root/repo/src/gic/efield.cpp" "src/CMakeFiles/solarnet.dir/gic/efield.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/gic/efield.cpp.o.d"
  "/root/repo/src/gic/failure_model.cpp" "src/CMakeFiles/solarnet.dir/gic/failure_model.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/gic/failure_model.cpp.o.d"
  "/root/repo/src/gic/induction.cpp" "src/CMakeFiles/solarnet.dir/gic/induction.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/gic/induction.cpp.o.d"
  "/root/repo/src/gic/storm.cpp" "src/CMakeFiles/solarnet.dir/gic/storm.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/gic/storm.cpp.o.d"
  "/root/repo/src/gic/timeline.cpp" "src/CMakeFiles/solarnet.dir/gic/timeline.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/gic/timeline.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/CMakeFiles/solarnet.dir/graph/components.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/graph/components.cpp.o.d"
  "/root/repo/src/graph/cut.cpp" "src/CMakeFiles/solarnet.dir/graph/cut.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/graph/cut.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/solarnet.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/traversal.cpp" "src/CMakeFiles/solarnet.dir/graph/traversal.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/graph/traversal.cpp.o.d"
  "/root/repo/src/graph/union_find.cpp" "src/CMakeFiles/solarnet.dir/graph/union_find.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/graph/union_find.cpp.o.d"
  "/root/repo/src/powergrid/grid.cpp" "src/CMakeFiles/solarnet.dir/powergrid/grid.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/powergrid/grid.cpp.o.d"
  "/root/repo/src/recovery/repair.cpp" "src/CMakeFiles/solarnet.dir/recovery/repair.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/recovery/repair.cpp.o.d"
  "/root/repo/src/routing/assignment.cpp" "src/CMakeFiles/solarnet.dir/routing/assignment.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/routing/assignment.cpp.o.d"
  "/root/repo/src/routing/capacity.cpp" "src/CMakeFiles/solarnet.dir/routing/capacity.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/routing/capacity.cpp.o.d"
  "/root/repo/src/routing/demand.cpp" "src/CMakeFiles/solarnet.dir/routing/demand.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/routing/demand.cpp.o.d"
  "/root/repo/src/satellite/constellation.cpp" "src/CMakeFiles/solarnet.dir/satellite/constellation.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/satellite/constellation.cpp.o.d"
  "/root/repo/src/satellite/drag.cpp" "src/CMakeFiles/solarnet.dir/satellite/drag.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/satellite/drag.cpp.o.d"
  "/root/repo/src/services/availability.cpp" "src/CMakeFiles/solarnet.dir/services/availability.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/services/availability.cpp.o.d"
  "/root/repo/src/sim/monte_carlo.cpp" "src/CMakeFiles/solarnet.dir/sim/monte_carlo.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/sim/monte_carlo.cpp.o.d"
  "/root/repo/src/sim/outcome.cpp" "src/CMakeFiles/solarnet.dir/sim/outcome.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/sim/outcome.cpp.o.d"
  "/root/repo/src/solar/cycle.cpp" "src/CMakeFiles/solarnet.dir/solar/cycle.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/solar/cycle.cpp.o.d"
  "/root/repo/src/topology/builders.cpp" "src/CMakeFiles/solarnet.dir/topology/builders.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/topology/builders.cpp.o.d"
  "/root/repo/src/topology/cable.cpp" "src/CMakeFiles/solarnet.dir/topology/cable.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/topology/cable.cpp.o.d"
  "/root/repo/src/topology/network.cpp" "src/CMakeFiles/solarnet.dir/topology/network.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/topology/network.cpp.o.d"
  "/root/repo/src/topology/repeater.cpp" "src/CMakeFiles/solarnet.dir/topology/repeater.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/topology/repeater.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/solarnet.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/solarnet.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/solarnet.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/solarnet.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/solarnet.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/solarnet.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
