file(REMOVE_RECURSE
  "libsolarnet.a"
)
