#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geo/distance.h"
#include "satellite/constellation.h"
#include "satellite/drag.h"

namespace solarnet::satellite {
namespace {

TEST(Constellation, SizeAndValidation) {
  const Constellation c;
  EXPECT_EQ(c.size(), 72u * 22u);
  ConstellationConfig bad;
  bad.planes = 0;
  EXPECT_THROW(Constellation{bad}, std::invalid_argument);
  bad = ConstellationConfig{};
  bad.altitude_km = 50.0;
  EXPECT_THROW(Constellation{bad}, std::invalid_argument);
  bad = ConstellationConfig{};
  bad.inclination_deg = 200.0;
  EXPECT_THROW(Constellation{bad}, std::invalid_argument);
}

TEST(Constellation, OrbitalPeriodMatchesKepler) {
  const Constellation c;  // 550 km
  // ISS-like LEO periods are ~90-96 minutes.
  EXPECT_NEAR(c.orbital_period_s(), 5730.0, 60.0);
  EXPECT_NEAR(c.orbital_speed_km_s(), 7.59, 0.05);
}

TEST(Constellation, GroundTracksBoundedByInclination) {
  const Constellation c;  // 53 deg inclination
  for (double t : {0.0, 1000.0, 5000.0}) {
    for (const SatelliteState& s : c.states_at(t)) {
      EXPECT_LE(std::abs(s.ground_point.lat_deg), 53.0 + 1e-6);
      EXPECT_DOUBLE_EQ(s.altitude_km, 550.0);
    }
  }
}

TEST(Constellation, SatellitesActuallyMove) {
  const Constellation c;
  const auto s0 = c.states_at(0.0);
  const auto s1 = c.states_at(300.0);
  const double moved =
      geo::haversine_km(s0[0].ground_point, s1[0].ground_point);
  // ~7.6 km/s ground speed (minus earth rotation) for 300 s.
  EXPECT_GT(moved, 1500.0);
}

TEST(Constellation, CoverageHalfAngleShrinksWithElevation) {
  const Constellation c;
  const double wide = c.coverage_half_angle_deg(25.0);
  const double narrow = c.coverage_half_angle_deg(40.0);
  EXPECT_GT(wide, narrow);
  EXPECT_GT(narrow, 0.0);
  // 550 km / 25 deg elevation: roughly 9-10 degrees of earth-central angle.
  EXPECT_NEAR(wide, 9.5, 2.0);
}

TEST(Constellation, FullShellCoversMidLatitudes) {
  const Constellation c;
  const double coverage = c.coverage_fraction(0.0, 25.0, 53.0, 6.0);
  EXPECT_GT(coverage, 0.95);  // 1584 satellites blanket |lat| < 53
}

TEST(Constellation, SparseShellHasGaps) {
  ConstellationConfig sparse;
  sparse.planes = 6;
  sparse.sats_per_plane = 6;
  const Constellation c(sparse);
  const double coverage = c.coverage_fraction(0.0, 25.0, 53.0, 6.0);
  EXPECT_LT(coverage, 0.6);
}

TEST(StormDensity, AnchorsMatchDesign) {
  EXPECT_DOUBLE_EQ(storm_density_multiplier(gic::StormScenario{"quiet", 0.0,
                                                               40, 5, 0.01}),
                   1.0);
  // 1989-class roughly doubles density; Carrington ~10x.
  EXPECT_NEAR(storm_density_multiplier(gic::quebec_1989()), 2.1, 0.4);
  EXPECT_NEAR(storm_density_multiplier(gic::carrington_1859()), 10.0, 2.0);
}

TEST(DragModel, DensityExponentialInAltitude) {
  const DragModel m;
  const double rho550 = m.density(550.0);
  const double rho625 = m.density(625.0);  // one scale height up
  EXPECT_NEAR(rho550 / rho625, std::numbers::e, 0.01);
  EXPECT_DOUBLE_EQ(m.density(550.0, 3.0), 3.0 * rho550);
  EXPECT_THROW(m.density(550.0, 0.0), std::invalid_argument);
}

TEST(DragModel, QuietDecayRateIsMetersPerDay) {
  const DragModel m;
  const double rate = m.decay_rate_km_per_day(550.0);
  EXPECT_GT(rate, 0.001);  // > 1 m/day
  EXPECT_LT(rate, 0.1);    // < 100 m/day at 550 km, quiet sun
}

TEST(DragModel, DecayAcceleratesLowerDown) {
  const DragModel m;
  EXPECT_GT(m.decay_rate_km_per_day(350.0), m.decay_rate_km_per_day(550.0));
}

TEST(DragModel, PassiveLifetimeShrinksWithStorm) {
  const DragModel m;
  const double quiet = m.passive_lifetime_days(550.0, 1.0);
  const double storm = m.passive_lifetime_days(550.0, 10.0);
  EXPECT_GT(quiet, storm);
  EXPECT_GT(storm, 0.0);
  EXPECT_DOUBLE_EQ(m.passive_lifetime_days(150.0), 0.0);  // below floor
}

TEST(DragModel, StationKeepingHoldsQuietOrbit) {
  const DragModel m;
  // Quiet: thrusters (0.35 km/day authority) dominate ~0.01 km/day drag.
  EXPECT_DOUBLE_EQ(m.net_altitude_loss_km(550.0, 1.0, 30.0), 0.0);
}

TEST(DragModel, ExtremeStormOverwhelmsLowShell) {
  const DragModel m;
  // A 340 km shell (Starlink VLEO) under a 10x density storm loses
  // altitude despite station keeping.
  const double loss = m.net_altitude_loss_km(340.0, 10.0, 14.0);
  EXPECT_GT(loss, 0.0);
}

TEST(FleetImpact, CarringtonVsQuebecOrdering) {
  ConstellationConfig low;
  low.altitude_km = 340.0;
  const Constellation shell(low);
  const auto carrington =
      evaluate_fleet_impact(shell, gic::carrington_1859(), 14.0);
  const auto quebec = evaluate_fleet_impact(shell, gic::quebec_1989(), 14.0);
  EXPECT_GT(carrington.decay_rate_storm_km_day,
            quebec.decay_rate_storm_km_day);
  EXPECT_GE(carrington.fleet_loss_fraction, quebec.fleet_loss_fraction);
  EXPECT_EQ(carrington.fleet_size, shell.size());
}

TEST(FleetImpact, HighShellSurvivesModerateStorm) {
  const Constellation shell;  // 550 km
  const auto impact =
      evaluate_fleet_impact(shell, gic::moderate_storm(), 7.0);
  EXPECT_TRUE(impact.station_keeping_holds);
  EXPECT_DOUBLE_EQ(impact.fleet_loss_fraction, 0.0);
}

TEST(FleetImpact, LossFractionBounded) {
  ConstellationConfig low;
  low.altitude_km = 250.0;
  const Constellation shell(low);
  const auto impact =
      evaluate_fleet_impact(shell, gic::carrington_1859(), 30.0);
  EXPECT_GE(impact.fleet_loss_fraction, 0.0);
  EXPECT_LE(impact.fleet_loss_fraction, 1.0);
  EXPECT_GT(impact.fleet_loss_fraction, 0.5);  // §3.3's worst case
}

}  // namespace
}  // namespace solarnet::satellite
