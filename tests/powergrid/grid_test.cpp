#include "powergrid/grid.h"

#include <gtest/gtest.h>

#include "datasets/submarine.h"
#include "sim/monte_carlo.h"

namespace solarnet::powergrid {
namespace {

TEST(GridRegions, CuratedSetIsSane) {
  const auto& regions = grid_regions();
  EXPECT_GE(regions.size(), 12u);
  for (const GridRegion& r : regions) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_GT(r.peak_load_gw, 0.0);
    EXPECT_GT(r.hv_transformers, 0u);
    EXPECT_TRUE(r.footprint.contains(r.centroid)) << r.name;
  }
}

TEST(GridRegions, PaperNamedInterconnectionsPresent) {
  // §5.5: "in the US, there are three regional power grids".
  std::size_t us = 0;
  for (const GridRegion& r : grid_regions()) {
    if (r.name.find("Interconnection") != std::string::npos ||
        r.name.find("ERCOT") != std::string::npos) {
      ++us;
    }
  }
  EXPECT_EQ(us, 3u);
}

TEST(RegionIndexAt, MajorCitiesLandInRightGrid) {
  EXPECT_EQ(grid_regions()[region_index_at({40.7, -74.0})].name,
            "US Eastern Interconnection");
  EXPECT_EQ(grid_regions()[region_index_at({34.0, -118.2})].name,
            "US Western Interconnection");
  EXPECT_EQ(grid_regions()[region_index_at({30.3, -97.7})].name,
            "ERCOT (Texas)");
  EXPECT_EQ(grid_regions()[region_index_at({52.0, -71.0})].name,
            "Hydro-Quebec");
  EXPECT_EQ(grid_regions()[region_index_at({51.5, -0.1})].name,
            "UK National Grid");
}

TEST(RegionIndexAt, FallsBackToNearestForOceanPoints) {
  const std::size_t idx = region_index_at({30.0, -60.0});  // Atlantic
  EXPECT_LT(idx, grid_regions().size());
}

TEST(EvaluateGrid, CarringtonBlacksOutHighLatitudesWorst) {
  // A Carrington event reaches fields "as low as 20 deg" (§3.1), so even
  // low-latitude grids suffer — but damage must still grow with latitude.
  const gic::GeoelectricFieldModel field(gic::carrington_1859());
  const auto outcomes = evaluate_grid(field);
  ASSERT_EQ(outcomes.size(), grid_regions().size());
  double nordic = 0.0;
  double brazil = 0.0;
  bool nordic_blackout = false;
  for (const GridOutcome& o : outcomes) {
    if (o.region == "Nordic Grid") {
      nordic = o.transformer_failure_fraction;
      nordic_blackout = o.blackout;
    }
    if (o.region == "Brazil SIN") brazil = o.transformer_failure_fraction;
    EXPECT_GE(o.transformer_failure_fraction, 0.0);
    EXPECT_LE(o.transformer_failure_fraction, 1.0);
  }
  EXPECT_TRUE(nordic_blackout);
  EXPECT_GT(nordic, 2.0 * brazil);
}

TEST(EvaluateGrid, ModerateStormSparesLowLatitudes) {
  const gic::GeoelectricFieldModel field(gic::quebec_1989());
  const auto outcomes = evaluate_grid(field);
  for (const GridOutcome& o : outcomes) {
    if (o.region == "India National Grid" || o.region == "Brazil SIN" ||
        o.region == "Australia NEM") {
      EXPECT_FALSE(o.blackout) << o.region;
    }
  }
}

TEST(EvaluateGrid, QuebecScaleHitsOnlyHighLatitudes) {
  // 1989: Quebec collapsed; lower-latitude grids stayed up.
  const gic::GeoelectricFieldModel field(gic::quebec_1989().scaled(3.0));
  const auto outcomes = evaluate_grid(field);
  double quebec_frac = 0.0;
  double india_frac = 0.0;
  for (const GridOutcome& o : outcomes) {
    if (o.region == "Hydro-Quebec") quebec_frac = o.transformer_failure_fraction;
    if (o.region == "India National Grid") {
      india_frac = o.transformer_failure_fraction;
    }
  }
  EXPECT_GT(quebec_frac, india_frac);
}

TEST(EvaluateGrid, RestorationTimesScaleWithDamage) {
  const gic::GeoelectricFieldModel strong(gic::carrington_1859());
  const gic::GeoelectricFieldModel weak(gic::moderate_storm());
  const auto bad = evaluate_grid(strong);
  const auto mild = evaluate_grid(weak);
  double worst_bad = 0.0;
  double worst_mild = 0.0;
  for (const auto& o : bad) worst_bad = std::max(worst_bad, o.restoration_days);
  for (const auto& o : mild) {
    worst_mild = std::max(worst_mild, o.restoration_days);
  }
  EXPECT_GT(worst_bad, worst_mild);
  // Manufacturing-bound restorations run months-to-years (§5.5).
  EXPECT_GT(worst_bad, 90.0);
}

TEST(EvaluateGrid, RejectsBadParams) {
  const gic::GeoelectricFieldModel field(gic::quebec_1989());
  TransformerFailureParams bad;
  bad.blackout_fraction = 0.0;
  EXPECT_THROW(evaluate_grid(field, bad), std::invalid_argument);
  bad = TransformerFailureParams{};
  bad.spare_fraction = 1.5;
  EXPECT_THROW(evaluate_grid(field, bad), std::invalid_argument);
}

TEST(CoupledFailure, PowerOutagesAmplifyCableDamage) {
  const auto net = datasets::make_submarine_network({});
  const sim::FailureSimulator simulator(net, {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  util::Rng rng(5);
  const auto dead = simulator.sample_cable_failures(s1, rng);

  const gic::GeoelectricFieldModel field(gic::carrington_1859());
  const auto grid = evaluate_grid(field);
  util::Rng coupling_rng(6);
  const CoupledImpact impact =
      analyze_coupled_failure(net, dead, grid, /*backup=*/0.3, coupling_rng);

  EXPECT_GT(impact.nodes_without_power, 0u);
  EXPECT_GE(impact.nodes_down_combined, impact.nodes_unreachable_cables);
  EXPECT_GT(impact.amplification(), 1.0);
  EXPECT_GT(impact.combined_down_fraction, 0.0);
  EXPECT_LE(impact.combined_down_fraction, 1.0);
}

TEST(CoupledFailure, FullBackupMeansNoPowerLoss) {
  const auto net = datasets::make_submarine_network({});
  const std::vector<bool> none(net.cable_count(), false);
  const gic::GeoelectricFieldModel field(gic::carrington_1859());
  const auto grid = evaluate_grid(field);
  util::Rng rng(1);
  const CoupledImpact impact =
      analyze_coupled_failure(net, none, grid, /*backup=*/1.0, rng);
  EXPECT_EQ(impact.nodes_without_power, 0u);
  EXPECT_EQ(impact.nodes_down_combined, 0u);
}

TEST(CoupledFailure, Validation) {
  const auto net = datasets::make_submarine_network({});
  const std::vector<bool> none(net.cable_count(), false);
  util::Rng rng(1);
  EXPECT_THROW(analyze_coupled_failure(net, none, {}, 0.5, rng),
               std::invalid_argument);
  const gic::GeoelectricFieldModel field(gic::quebec_1989());
  const auto grid = evaluate_grid(field);
  EXPECT_THROW(analyze_coupled_failure(net, none, grid, 1.5, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace solarnet::powergrid
