#include "recovery/repair.h"

#include <gtest/gtest.h>

#include "datasets/submarine.h"

namespace solarnet::recovery {
namespace {

// Two submarine cables (10 repeaters each) and one land cable.
class RepairTest : public ::testing::Test {
 protected:
  RepairTest() : net_("repair") {
    for (int i = 0; i < 4; ++i) {
      net_.add_node({"N" + std::to_string(i),
                     {50.0, static_cast<double>(i) * 15.0},
                     "",
                     topo::NodeKind::kLandingPoint,
                     true});
    }
    sub1_ = add_cable("sub1", 0, 1, topo::CableKind::kSubmarine, 1500.0);
    sub2_ = add_cable("sub2", 1, 2, topo::CableKind::kSubmarine, 1500.0);
    land_ = add_cable("land", 2, 3, topo::CableKind::kLandLongHaul, 1500.0);
  }
  topo::CableId add_cable(const char* name, topo::NodeId a, topo::NodeId b,
                          topo::CableKind kind, double len) {
    topo::Cable c;
    c.name = name;
    c.kind = kind;
    c.segments = {{a, b, len}};
    return net_.add_cable(std::move(c));
  }
  topo::InfrastructureNetwork net_;
  topo::CableId sub1_{}, sub2_{}, land_{};
};

TEST_F(RepairTest, FaultCountsOnlyOnDeadCables) {
  const sim::FailureSimulator simulator(net_, {});
  const gic::UniformFailureModel m(0.3);
  util::Rng rng(3);
  std::vector<bool> dead = {true, false, true};
  const auto faults = sample_fault_counts(simulator, m, dead, rng);
  EXPECT_GE(faults[sub1_], 1u);
  EXPECT_EQ(faults[sub2_], 0u);
  EXPECT_GE(faults[land_], 1u);
  EXPECT_LE(faults[sub1_], 10u);
}

TEST_F(RepairTest, HigherModelProbabilityMeansMoreFaults) {
  const sim::FailureSimulator simulator(net_, {});
  util::Rng rng(11);
  std::vector<bool> dead = {true, true, true};
  double low_total = 0.0;
  double high_total = 0.0;
  for (int i = 0; i < 300; ++i) {
    const gic::UniformFailureModel low(0.05);
    const gic::UniformFailureModel high(0.8);
    for (auto f : sample_fault_counts(simulator, low, dead, rng)) {
      low_total += static_cast<double>(f);
    }
    for (auto f : sample_fault_counts(simulator, high, dead, rng)) {
      high_total += static_cast<double>(f);
    }
  }
  EXPECT_GT(high_total, 2.0 * low_total);
}

TEST_F(RepairTest, ScheduleCompletesAllJobs) {
  std::vector<bool> dead = {true, true, true};
  const std::vector<std::size_t> faults = {2, 3, 1};
  const RecoveryTimeline timeline = schedule_repairs(net_, dead, faults, {});
  EXPECT_EQ(timeline.jobs.size(), 3u);
  for (const CableRepairJob& j : timeline.jobs) {
    EXPECT_GT(j.completion_day, 0.0);
  }
  EXPECT_GT(timeline.restore_day[sub1_], 0.0);
  EXPECT_DOUBLE_EQ(timeline.days_to_restore_fraction(0.0), 0.0);
  EXPECT_GE(timeline.days_to_restore_fraction(1.0),
            timeline.days_to_restore_fraction(0.5));
}

TEST_F(RepairTest, LandRepairsAreFaster) {
  std::vector<bool> dead = {true, false, true};
  const std::vector<std::size_t> faults = {1, 0, 1};
  const RecoveryTimeline timeline = schedule_repairs(net_, dead, faults, {});
  EXPECT_LT(timeline.restore_day[land_], timeline.restore_day[sub1_]);
}

TEST_F(RepairTest, SingleShipSerializesSubmarineWork) {
  RepairFleetParams fleet;
  fleet.cable_ships = 1;
  std::vector<bool> dead = {true, true, false};
  const std::vector<std::size_t> faults = {1, 1, 0};
  const RecoveryTimeline one = schedule_repairs(net_, dead, faults, fleet);
  fleet.cable_ships = 2;
  const RecoveryTimeline two = schedule_repairs(net_, dead, faults, fleet);
  EXPECT_GT(one.days_to_restore_fraction(1.0),
            two.days_to_restore_fraction(1.0));
}

TEST_F(RepairTest, MoreFaultsMeansLongerRepair) {
  std::vector<bool> dead = {true, false, false};
  const RecoveryTimeline few =
      schedule_repairs(net_, dead, {1, 0, 0}, {});
  const RecoveryTimeline many =
      schedule_repairs(net_, dead, {8, 0, 0}, {});
  EXPECT_GT(many.restore_day[sub1_], few.restore_day[sub1_]);
}

TEST_F(RepairTest, RestorationCurveMonotone) {
  std::vector<bool> dead = {true, true, true};
  const RecoveryTimeline timeline =
      schedule_repairs(net_, dead, {2, 3, 1}, {});
  const auto curve = timeline.restoration_curve(5.0);
  ASSERT_FALSE(curve.empty());
  double prev = -1.0;
  for (const auto& [day, frac] : curve) {
    EXPECT_GE(frac, prev);
    prev = frac;
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST_F(RepairTest, NodeRestorationReachesFull) {
  std::vector<bool> dead = {true, true, true};
  const RecoveryTimeline timeline =
      schedule_repairs(net_, dead, {2, 3, 1}, {});
  const auto curve = node_restoration_curve(net_, dead, timeline, 5.0);
  ASSERT_FALSE(curve.empty());
  EXPECT_LT(curve.front().second, 1.0);  // nodes dark at day 0
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST_F(RepairTest, Validation) {
  EXPECT_THROW(schedule_repairs(net_, {true}, {1, 0, 0}, {}),
               std::invalid_argument);
  RepairFleetParams fleet;
  fleet.cable_ships = 0;
  EXPECT_THROW(
      schedule_repairs(net_, {true, false, false}, {1, 0, 0}, fleet),
      std::invalid_argument);
  std::vector<bool> dead = {true, false, false};
  const RecoveryTimeline t = schedule_repairs(net_, dead, {1, 0, 0}, {});
  EXPECT_THROW(t.days_to_restore_fraction(1.5), std::invalid_argument);
  EXPECT_THROW(t.restoration_curve(0.0), std::invalid_argument);
}

// The allocation-free trial-loop forms must replay the one-shot APIs'
// exact draw sequences and schedules — sim::TimelineEngine leans on this
// parity for its determinism contract.
TEST_F(RepairTest, FaultSamplerMatchesSampleFaultCounts) {
  const sim::FailureSimulator simulator(net_, {});
  const gic::UniformFailureModel model(0.35);
  const FaultSampler sampler(simulator,
                             simulator.death_probability_table(model));
  const std::vector<std::vector<bool>> dead_sets = {
      {true, false, true}, {true, true, true}, {false, false, false}};
  for (const std::vector<bool>& dead : dead_sets) {
    util::Rng one_shot_rng(97);
    const auto expected =
        sample_fault_counts(simulator, model, dead, one_shot_rng);
    std::vector<std::uint8_t> dead_u8(dead.size());
    for (std::size_t c = 0; c < dead.size(); ++c) dead_u8[c] = dead[c];
    std::vector<std::uint32_t> faults(dead.size(), 777);
    util::Rng loop_rng(97);
    sampler.sample(dead_u8, loop_rng, faults);
    ASSERT_EQ(expected.size(), faults.size());
    for (std::size_t c = 0; c < faults.size(); ++c) {
      EXPECT_EQ(faults[c], expected[c]) << "cable " << c;
    }
    // Identical rng consumption: the next draw from both streams agrees.
    EXPECT_EQ(one_shot_rng.uniform(), loop_rng.uniform());
  }
}

TEST_F(RepairTest, RepairSchedulerMatchesScheduleRepairs) {
  RepairFleetParams fleets[3];
  fleets[1].cable_ships = 1;
  fleets[2].cable_ships = 2;
  fleets[2].land_crews = 1;
  const std::vector<std::vector<bool>> dead_sets = {
      {true, true, true}, {true, false, true}, {false, true, false}};
  const std::vector<std::size_t> faults = {2, 3, 1};
  for (const RepairFleetParams& fleet : fleets) {
    const RepairScheduler scheduler(net_, fleet);
    RepairScheduler::Scratch scratch;
    for (const std::vector<bool>& dead : dead_sets) {
      const RecoveryTimeline expected =
          schedule_repairs(net_, dead, faults, fleet);
      std::vector<std::uint8_t> dead_u8(dead.size());
      std::vector<std::uint32_t> faults_u32(dead.size());
      for (std::size_t c = 0; c < dead.size(); ++c) {
        dead_u8[c] = dead[c];
        faults_u32[c] = static_cast<std::uint32_t>(faults[c]);
      }
      std::vector<double> restore(dead.size(), -1.0);
      scheduler.schedule(dead_u8, faults_u32, scratch, restore);
      for (std::size_t c = 0; c < restore.size(); ++c) {
        EXPECT_EQ(restore[c], expected.restore_day[c])
            << "cable " << c << " ships " << fleet.cable_ships;
      }
    }
  }
}

TEST(RepairFullScale, SchedulerParityOnFullNetwork) {
  // Bit-parity at scale: a storm-sized dead set over the full generated
  // network, fault counts drawn through both paths, completion days
  // compared exactly.
  const auto net = datasets::make_submarine_network({});
  const sim::FailureSimulator simulator(net, {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  util::Rng rng(77);
  const auto dead = simulator.sample_cable_failures(s1, rng);

  util::Rng fault_rng_a(5);
  const auto faults = sample_fault_counts(simulator, s1, dead, fault_rng_a);
  const FaultSampler sampler(simulator, simulator.death_probability_table(s1));
  std::vector<std::uint8_t> dead_u8(dead.size());
  for (std::size_t c = 0; c < dead.size(); ++c) dead_u8[c] = dead[c];
  std::vector<std::uint32_t> faults_u32(dead.size());
  util::Rng fault_rng_b(5);
  sampler.sample(dead_u8, fault_rng_b, faults_u32);
  std::size_t dead_count = 0;
  for (std::size_t c = 0; c < dead.size(); ++c) {
    EXPECT_EQ(faults_u32[c], faults[c]) << "cable " << c;
    dead_count += dead[c] ? 1 : 0;
  }
  ASSERT_GT(dead_count, 50u);

  const RecoveryTimeline expected = schedule_repairs(net, dead, faults, {});
  const RepairScheduler scheduler(net, {});
  RepairScheduler::Scratch scratch;
  std::vector<double> restore(dead.size());
  scheduler.schedule(dead_u8, faults_u32, scratch, restore);
  for (std::size_t c = 0; c < restore.size(); ++c) {
    EXPECT_EQ(restore[c], expected.restore_day[c]) << "cable " << c;
  }
}

TEST(RepairFullScale, StormRecoveryTakesMonths) {
  // §3.2.2's punchline: the global fleet is sized for isolated faults, so
  // a storm that kills a third of all submarine cables queues repairs for
  // months.
  const auto net = datasets::make_submarine_network({});
  const sim::FailureSimulator simulator(net, {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  util::Rng rng(1859);
  const auto dead = simulator.sample_cable_failures(s1, rng);
  const auto faults = sample_fault_counts(simulator, s1, dead, rng);
  const RecoveryTimeline timeline = schedule_repairs(net, dead, faults, {});
  ASSERT_GT(timeline.jobs.size(), 50u);
  EXPECT_GT(timeline.days_to_restore_fraction(0.9), 60.0);
  // And a bigger fleet helps.
  RepairFleetParams big;
  big.cable_ships = 200;
  const RecoveryTimeline fast = schedule_repairs(net, dead, faults, big);
  EXPECT_LT(fast.days_to_restore_fraction(0.9),
            timeline.days_to_restore_fraction(0.9));
}

}  // namespace
}  // namespace solarnet::recovery
