#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace solarnet::util {
namespace {

TEST(SplitMix64, ProducesKnownSequenceShape) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next(), b.next()) << "same seed must give same stream";
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, ReseedResetsStream) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, ReseedClearsGaussianSpare) {
  // Regression: the Marsaglia polar method caches a spare sample. reseed()
  // must drop it, or the first normal() after a reseed replays a value
  // from the previous stream.
  Rng used(123);
  used.normal();  // consumes one pair, leaves a spare cached
  used.reseed(123);
  Rng fresh(123);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(used.normal(), fresh.normal())
        << "reseeded stream diverged at normal() draw " << i;
  }
}

TEST(Rng, ReseedIsIndependentOfPriorUse) {
  Rng a(9);
  Rng b(9);
  a.normal();  // odd number of normal() draws -> spare cached
  for (int i = 0; i < 7; ++i) b.next_u64();
  a.reseed(77);
  b.reseed(77);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.normal(), b.normal());
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, UniformRangeThrowsOnInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, UniformBelowCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_below(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(Rng, UniformBelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_below(0), std::invalid_argument);
}

TEST(Rng, UniformBelowIsApproximatelyUnbiased) {
  Rng rng(77);
  std::vector<int> counts(3, 0);
  constexpr int kN = 90000;
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_below(3)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kN, 1.0 / 3.0, 0.01);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntThrowsOnInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(31);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(37);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), std::invalid_argument);
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(negative), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(43);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is ~1/100!
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng rng(1);
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Rng, PickReturnsElements) {
  Rng rng(47);
  const std::vector<int> v = {10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  Rng parent(55);
  Rng c0 = parent.split(0);
  Rng c1 = parent.split(1);
  EXPECT_NE(c0.next_u64(), c1.next_u64());
  // Splitting again from an identical parent replays the same child.
  Rng parent2(55);
  Rng c0_again = parent2.split(0);
  Rng c0_ref = Rng(55).split(0);
  EXPECT_EQ(c0_again.next_u64(), c0_ref.next_u64());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace solarnet::util
