#include "util/checkpoint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>

#include "util/fault_injection.h"
#include "util/stats.h"
#include "util/status.h"

namespace solarnet::util {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Crc32, MatchesKnownVectors) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  // Chaining partial buffers equals one shot over the concatenation.
  const std::uint32_t partial = crc32("56789", crc32("1234"));
  EXPECT_EQ(partial, crc32("123456789"));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data(64, '\x5a');
  const std::uint32_t clean = crc32(data);
  data[17] ^= 0x04;
  EXPECT_NE(crc32(data), clean);
}

TEST(ByteRoundTrip, Integers) {
  ByteWriter w;
  w.u8(0);
  w.u8(0xFF);
  w.u32(0);
  w.u32(0xDEADBEEFu);
  w.u64(0);
  w.u64(0xFEEDFACECAFEBEEFull);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.u8(), 0xFFu);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u64(), 0xFEEDFACECAFEBEEFull);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteRoundTrip, DoublesAreBitExact) {
  const double values[] = {
      0.0,
      -0.0,
      1.0,
      -12345.6789,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
  };
  ByteWriter w;
  for (const double v : values) w.f64(v);

  ByteReader r(w.data());
  for (const double v : values) {
    // Compare bit patterns: NaN != NaN as doubles, and -0.0 == 0.0 would
    // hide a sign-bit loss.
    std::uint64_t expected = 0;
    std::uint64_t got = 0;
    const double read = r.f64();
    std::memcpy(&expected, &v, sizeof expected);
    std::memcpy(&got, &read, sizeof got);
    EXPECT_EQ(got, expected);
  }
  EXPECT_TRUE(r.at_end());
}

TEST(ByteRoundTrip, StringsAndBytes) {
  ByteWriter w;
  w.str("");
  w.str("connectivity/v1");
  w.str(std::string("nul\0byte", 8));
  w.bytes("raw");

  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "connectivity/v1");
  EXPECT_EQ(r.str(), std::string("nul\0byte", 8));
  EXPECT_EQ(r.bytes(3), "raw");
  EXPECT_TRUE(r.at_end());
}

TEST(ByteReader, OverrunThrowsCorruptWithContext) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.data(), SourceContext{"campaign.ck"});
  (void)r.u32();
  try {
    (void)r.u64();
    FAIL() << "expected overrun";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorrupt);
    EXPECT_NE(std::string(e.what()).find("campaign.ck"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(ByteReader, TruncatedStringLengthThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow...
  w.bytes("short");
  ByteReader r(w.data());
  EXPECT_THROW((void)r.str(), Error);
}

TEST(StatsRoundTrip, RestoredAccumulatorMergesIdentically) {
  RunningStats original;
  // Irrational-ish values so mean/M2 exercise low mantissa bits.
  for (int i = 1; i <= 97; ++i) original.add(std::sqrt(double(i)) * 0.37);

  ByteWriter w;
  write_stats(w, original);
  ByteReader r(w.data());
  const RunningStats restored = read_stats(r);
  EXPECT_TRUE(r.at_end());

  RunningStats tail;
  for (int i = 1; i <= 31; ++i) tail.add(1.0 / double(i));

  RunningStats merged_original = original;
  merged_original.merge(tail);
  RunningStats merged_restored = restored;
  merged_restored.merge(tail);

  EXPECT_EQ(merged_restored.count(), merged_original.count());
  // Bit-exact, not approximate: the resume guarantee depends on it.
  EXPECT_EQ(merged_restored.mean(), merged_original.mean());
  EXPECT_EQ(merged_restored.sample_stddev(), merged_original.sample_stddev());
  EXPECT_EQ(merged_restored.min(), merged_original.min());
  EXPECT_EQ(merged_restored.max(), merged_original.max());
}

TEST(StatsRoundTrip, EmptyStats) {
  ByteWriter w;
  write_stats(w, RunningStats{});
  ByteReader r(w.data());
  const RunningStats restored = read_stats(r);
  EXPECT_EQ(restored.count(), 0u);
  EXPECT_EQ(restored.mean(), 0.0);
}

TEST(AtomicWriteFile, CreatesAndOverwrites) {
  const std::string path = temp_path("solarnet_atomic_write_test.bin");
  std::filesystem::remove(path);

  atomic_write_file(path, "first contents");
  EXPECT_TRUE(file_exists(path));
  EXPECT_EQ(read_file(path), "first contents");

  atomic_write_file(path, "second, longer contents entirely");
  EXPECT_EQ(read_file(path), "second, longer contents entirely");

  // No temporary left behind.
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(AtomicWriteFile, BinaryContentsSurvive) {
  const std::string path = temp_path("solarnet_atomic_binary_test.bin");
  std::string blob;
  for (int i = 0; i < 256; ++i) blob.push_back(static_cast<char>(i));
  atomic_write_file(path, blob);
  EXPECT_EQ(read_file(path), blob);
  std::filesystem::remove(path);
}

TEST(ReadFile, MissingFileThrowsIoErrorNamingPath) {
  const std::string path = temp_path("solarnet_definitely_missing.bin");
  std::filesystem::remove(path);
  try {
    (void)read_file(path);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

TEST(FaultSites, ReadFileProbesKFileRead) {
  const std::string path = temp_path("solarnet_faulted_read.bin");
  atomic_write_file(path, "ok");
  {
    const ScopedFault fault(FaultSite::kFileRead, std::uint64_t{1});
    try {
      (void)read_file(path);
      FAIL() << "expected injected fault";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
    }
  }
  // Disarmed again: read succeeds, file intact.
  EXPECT_EQ(read_file(path), "ok");
  std::filesystem::remove(path);
}

TEST(FaultSites, CheckpointWriteFaultLeavesTargetUntouched) {
  const std::string path = temp_path("solarnet_faulted_write.bin");
  atomic_write_file(path, "previous checkpoint");
  {
    const ScopedFault fault(FaultSite::kCheckpointWrite, std::uint64_t{1});
    EXPECT_THROW(atomic_write_file(path, "new checkpoint"), Error);
  }
  // The fault fires before any filesystem mutation: old contents survive,
  // no temporary debris.
  EXPECT_EQ(read_file(path), "previous checkpoint");
  EXPECT_FALSE(file_exists(path + ".tmp"));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace solarnet::util
