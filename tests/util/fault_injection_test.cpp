#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "util/status.h"

namespace solarnet::util {
namespace {

// The injector is process-global; every test leaves it disarmed.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::instance().disarm_all();
    FaultInjector::instance().reset_counters();
  }
  void TearDown() override { FaultInjector::instance().disarm_all(); }
};

TEST_F(FaultInjectionTest, DisarmedProbesNeverThrow) {
  for (const FaultSite site : all_fault_sites()) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_NO_THROW(FaultInjector::probe(site));
    }
  }
}

TEST_F(FaultInjectionTest, NthProbeFiresExactlyOnce) {
  FaultInjector::instance().arm_nth(FaultSite::kFileRead, 3);
  EXPECT_NO_THROW(FaultInjector::probe(FaultSite::kFileRead));
  EXPECT_NO_THROW(FaultInjector::probe(FaultSite::kFileRead));
  EXPECT_THROW(FaultInjector::probe(FaultSite::kFileRead), Error);
  // One-shot: disarms itself after firing.
  EXPECT_FALSE(FaultInjector::instance().armed(FaultSite::kFileRead));
  for (int i = 0; i < 50; ++i) {
    EXPECT_NO_THROW(FaultInjector::probe(FaultSite::kFileRead));
  }
  EXPECT_EQ(FaultInjector::instance().injected_count(FaultSite::kFileRead),
            1u);
}

TEST_F(FaultInjectionTest, NthIsRelativeToArmingPoint) {
  // Accumulate counted probes (armed, but nth far in the future), then
  // re-arm: the new schedule counts from the re-arming point, not from the
  // site's lifetime probe count.
  FaultInjector::instance().arm_nth(FaultSite::kWorkerTask, 1000);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NO_THROW(FaultInjector::probe(FaultSite::kWorkerTask));
  }
  FaultInjector::instance().arm_nth(FaultSite::kWorkerTask, 2);
  EXPECT_NO_THROW(FaultInjector::probe(FaultSite::kWorkerTask));
  EXPECT_THROW(FaultInjector::probe(FaultSite::kWorkerTask), Error);
}

TEST_F(FaultInjectionTest, InjectedErrorIsStructured) {
  FaultInjector::instance().arm_nth(FaultSite::kCheckpointWrite, 1);
  try {
    FaultInjector::probe(FaultSite::kCheckpointWrite);
    FAIL() << "expected injected fault";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
    EXPECT_NE(std::string(e.what()).find(to_string(FaultSite::kCheckpointWrite)),
              std::string::npos);
  }
}

TEST_F(FaultInjectionTest, SitesAreIndependent) {
  FaultInjector::instance().arm_nth(FaultSite::kFileRead, 1);
  // Other sites stay clean.
  EXPECT_NO_THROW(FaultInjector::probe(FaultSite::kAllocation));
  EXPECT_NO_THROW(FaultInjector::probe(FaultSite::kWorkerTask));
  EXPECT_NO_THROW(FaultInjector::probe(FaultSite::kCheckpointWrite));
  EXPECT_THROW(FaultInjector::probe(FaultSite::kFileRead), Error);
}

TEST_F(FaultInjectionTest, ProbabilityScheduleIsDeterministic) {
  const auto run_schedule = [](std::uint64_t seed) {
    FaultInjector::instance().disarm_all();
    FaultInjector::instance().reset_counters();
    FaultInjector::instance().arm_probability(FaultSite::kWorkerTask, 0.3,
                                              seed);
    std::string fired;
    for (int i = 0; i < 64; ++i) {
      try {
        FaultInjector::probe(FaultSite::kWorkerTask);
        fired += '.';
      } catch (const Error&) {
        fired += 'X';
      }
    }
    FaultInjector::instance().disarm_all();
    return fired;
  };
  const std::string a = run_schedule(42);
  const std::string b = run_schedule(42);
  const std::string c = run_schedule(43);
  EXPECT_EQ(a, b);          // same seed -> identical schedule
  EXPECT_NE(a, c);          // different seed -> different schedule
  EXPECT_NE(a.find('X'), std::string::npos);  // p=0.3 fires somewhere in 64
  EXPECT_NE(a.find('.'), std::string::npos);  // ... but not everywhere
}

TEST_F(FaultInjectionTest, ProbabilityValidation) {
  EXPECT_THROW(
      FaultInjector::instance().arm_probability(FaultSite::kFileRead, -0.1, 1),
      std::invalid_argument);
  EXPECT_THROW(
      FaultInjector::instance().arm_probability(FaultSite::kFileRead, 1.5, 1),
      std::invalid_argument);
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnExit) {
  {
    const ScopedFault fault(FaultSite::kFileRead, std::uint64_t{1});
    EXPECT_TRUE(FaultInjector::instance().armed(FaultSite::kFileRead));
  }
  EXPECT_FALSE(FaultInjector::instance().armed(FaultSite::kFileRead));
  EXPECT_NO_THROW(FaultInjector::probe(FaultSite::kFileRead));
}

TEST_F(FaultInjectionTest, CountersTrackProbesAndInjections) {
  FaultInjector::instance().arm_probability(FaultSite::kAllocation, 1.0, 7);
  for (int i = 0; i < 5; ++i) {
    EXPECT_THROW(FaultInjector::probe(FaultSite::kAllocation), Error);
  }
  FaultInjector::instance().disarm_all();
  EXPECT_EQ(FaultInjector::instance().probe_count(FaultSite::kAllocation), 5u);
  EXPECT_EQ(FaultInjector::instance().injected_count(FaultSite::kAllocation),
            5u);
  FaultInjector::instance().reset_counters();
  EXPECT_EQ(FaultInjector::instance().probe_count(FaultSite::kAllocation), 0u);
}

TEST_F(FaultInjectionTest, SiteRegistryIsComplete) {
  EXPECT_EQ(all_fault_sites().size(), kFaultSiteCount);
  for (const FaultSite site : all_fault_sites()) {
    EXPECT_NE(to_string(site), nullptr);
    EXPECT_GT(std::string(to_string(site)).size(), 0u);
  }
}

}  // namespace
}  // namespace solarnet::util
