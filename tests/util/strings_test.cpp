#include "util/strings.h"

#include <gtest/gtest.h>

namespace solarnet::util {
namespace {

TEST(Split, Basic) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, PreservesEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Split, EmptyInputIsOneEmptyField) {
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Case, LowerUpper) {
  EXPECT_EQ(to_lower("HeLLo 123"), "hello 123");
  EXPECT_EQ(to_upper("HeLLo 123"), "HELLO 123");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("submarine", "sub"));
  EXPECT_FALSE(starts_with("sub", "submarine"));
  EXPECT_TRUE(ends_with("cable.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", "cable.csv"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("TRUE", "true"));
  EXPECT_TRUE(iequals("MiXeD", "mIxEd"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(ParseDouble, Valid) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("  -1.5 "), -1.5);
  EXPECT_DOUBLE_EQ(parse_double("1e3"), 1000.0);
}

TEST(ParseDouble, Invalid) {
  EXPECT_THROW(parse_double(""), std::invalid_argument);
  EXPECT_THROW(parse_double("abc"), std::invalid_argument);
  EXPECT_THROW(parse_double("1.5x"), std::invalid_argument);
  EXPECT_THROW(parse_double("1.5 2.5"), std::invalid_argument);
}

TEST(ParseInt, Valid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_EQ(parse_int("0"), 0);
}

TEST(ParseInt, Invalid) {
  EXPECT_THROW(parse_int(""), std::invalid_argument);
  EXPECT_THROW(parse_int("4.2"), std::invalid_argument);
  EXPECT_THROW(parse_int("x"), std::invalid_argument);
}

TEST(FormatFixed, Decimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
  EXPECT_EQ(format_fixed(1.5, -3), "2");  // negative decimals clamp to 0
}

}  // namespace
}  // namespace solarnet::util
