#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace solarnet::util {
namespace {

TEST(ParseCsv, SimpleRows) {
  const auto rows = parse_csv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "2", "3"}));
}

TEST(ParseCsv, NoTrailingNewline) {
  const auto rows = parse_csv("a,b\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"1", "2"}));
}

TEST(ParseCsv, EmptyFieldsPreserved) {
  const auto rows = parse_csv("a,,c\n,,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "", "c"}));
  EXPECT_EQ(rows[1], (CsvRow{"", "", ""}));
}

TEST(ParseCsv, QuotedFieldWithDelimiter) {
  const auto rows = parse_csv("\"a,b\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a,b", "c"}));
}

TEST(ParseCsv, QuotedFieldWithNewline) {
  const auto rows = parse_csv("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(ParseCsv, DoubledQuoteEscape) {
  const auto rows = parse_csv("\"she said \"\"hi\"\"\",y\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "she said \"hi\"");
}

TEST(ParseCsv, CrLfLineEndings) {
  const auto rows = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "2"}));
}

TEST(ParseCsv, SkipsBlankLinesByDefault) {
  const auto rows = parse_csv("a\n\n\nb\n");
  ASSERT_EQ(rows.size(), 2u);
}

TEST(ParseCsv, KeepsBlankLinesWhenAsked) {
  CsvOptions opts;
  opts.skip_blank_lines = false;
  const auto rows = parse_csv("a\n\nb\n", opts);
  ASSERT_EQ(rows.size(), 3u);
}

TEST(ParseCsv, CustomDelimiter) {
  CsvOptions opts;
  opts.delimiter = ';';
  const auto rows = parse_csv("a;b\n1;2\n", opts);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
}

TEST(ParseCsv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"abc\n"), std::runtime_error);
}

TEST(ParseCsv, EmptyInput) { EXPECT_TRUE(parse_csv("").empty()); }

TEST(ToCsv, RoundTripsQuoting) {
  const std::vector<CsvRow> rows = {
      {"plain", "with,comma", "with\"quote", "with\nnewline"},
      {"", "x", "y", "z"},
  };
  const std::string text = to_csv(rows);
  const auto parsed = parse_csv(text);
  EXPECT_EQ(parsed, rows);
}

TEST(ToCsv, MinimalQuoting) {
  const std::vector<CsvRow> rows = {{"a", "b"}};
  EXPECT_EQ(to_csv(rows), "a,b\n");
}

TEST(CsvFile, WriteAndReadBack) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "solarnet_csv_test.csv")
          .string();
  const std::vector<CsvRow> rows = {{"h1", "h2"}, {"1", "two words"}};
  write_csv_file(path, rows);
  const auto read = read_csv_file(path);
  EXPECT_EQ(read, rows);
  std::remove(path.c_str());
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/definitely/not.csv"),
               std::runtime_error);
}

TEST(CsvTable, HeaderLookupAndTypedAccess) {
  const auto rows = parse_csv("name,lat,count\nParis,48.86,3\n");
  const CsvTable table(rows);
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.column_count(), 3u);
  EXPECT_TRUE(table.has_column("lat"));
  EXPECT_FALSE(table.has_column("lon"));
  EXPECT_EQ(table.cell(0, "name"), "Paris");
  EXPECT_DOUBLE_EQ(table.cell_double(0, "lat"), 48.86);
  EXPECT_EQ(table.cell_int(0, "count"), 3);
}

TEST(CsvTable, ErrorsOnBadAccess) {
  const CsvTable table(parse_csv("a,b\n1,2\n"));
  EXPECT_THROW(table.cell(0, "zz"), std::out_of_range);
  EXPECT_THROW(table.cell(5, "a"), std::out_of_range);
}

TEST(CsvTable, RejectsEmptyAndDuplicateHeader) {
  EXPECT_THROW(CsvTable({}), std::runtime_error);
  EXPECT_THROW(CsvTable(parse_csv("a,a\n1,2\n")), std::runtime_error);
}

TEST(CsvTable, ShortRowThrowsOnAccess) {
  const CsvTable table(parse_csv("a,b,c\n1,2\n"));
  EXPECT_EQ(table.cell(0, "a"), "1");
  EXPECT_THROW(table.cell(0, "c"), std::out_of_range);
}

TEST(ParseCsvDocument, TracksRowStartLines) {
  const CsvDocument doc =
      parse_csv_document("a,b\n1,2\n\n3,4\n", {}, "data.csv");
  EXPECT_EQ(doc.path, "data.csv");
  ASSERT_EQ(doc.rows.size(), 3u);
  ASSERT_EQ(doc.lines.size(), 3u);
  EXPECT_EQ(doc.lines[0], 1u);
  EXPECT_EQ(doc.lines[1], 2u);
  EXPECT_EQ(doc.lines[2], 4u);  // the blank line 3 was skipped, not rows
}

TEST(ParseCsvDocument, QuotedNewlinesCountTowardLineNumbers) {
  // Row 2 starts on physical line 2; its quoted field spans lines 2-3, so
  // row 3 starts on physical line 4.
  const CsvDocument doc =
      parse_csv_document("h\n\"two\nlines\"\nnext\n", {}, "q.csv");
  ASSERT_EQ(doc.rows.size(), 3u);
  EXPECT_EQ(doc.lines[1], 2u);
  EXPECT_EQ(doc.lines[2], 4u);
}

TEST(ParseCsvDocument, CrLfAndTrailingBlanksKeepLineNumbers) {
  const CsvDocument doc =
      parse_csv_document("a,b\r\n1,2\r\n\r\n\r\n", {}, "crlf.csv");
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1], (CsvRow{"1", "2"}));
  EXPECT_EQ(doc.lines[1], 2u);
}

TEST(ParseCsvDocument, UnterminatedQuoteNamesOpeningLine) {
  try {
    parse_csv_document("a,b\n\"oops,2\n", {}, "bad.csv");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParseError);
    const std::string what = e.what();
    EXPECT_NE(what.find("bad.csv:2"), std::string::npos);
  }
}

TEST(ParseCsvDocument, StrayCharacterAfterClosingQuote) {
  try {
    parse_csv_document("\"a\"b,c\n", {}, "stray.csv");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParseError);
    EXPECT_NE(std::string(e.what()).find("stray.csv:1"), std::string::npos);
  }
}

TEST(CsvTable, CarriesProvenanceIntoTypedAccessErrors) {
  const CsvDocument doc = parse_csv_document(
      "name,lat\nParis,48.86\nAtlantis,not-a-number\n", {}, "cities.csv");
  const CsvTable table(doc);
  EXPECT_DOUBLE_EQ(table.cell_double(0, "lat"), 48.86);
  // Row 1 is the third physical line of the file.
  EXPECT_EQ(table.source_line(1), 3u);
  try {
    table.cell_double(1, "lat");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParseError);
    const std::string what = e.what();
    EXPECT_NE(what.find("not-a-number"), std::string::npos);
    EXPECT_NE(what.find("cities.csv:3"), std::string::npos);
    EXPECT_NE(what.find("lat"), std::string::npos);
  }
}

TEST(CsvTable, ContextPinpointsRowAndColumn) {
  const CsvDocument doc =
      parse_csv_document("a,b\n1,2\n3,4\n", {}, "t.csv");
  const CsvTable table(doc);
  const SourceContext ctx = table.context(1, "b");
  EXPECT_EQ(ctx.file, "t.csv");
  EXPECT_EQ(ctx.line, 3u);
  EXPECT_EQ(ctx.field, "b");
}

TEST(CsvTable, BadIntegerNamesFileAndLine) {
  const CsvDocument doc =
      parse_csv_document("n\n4.5x\n", {}, "ints.csv");
  const CsvTable table(doc);
  try {
    table.cell_int(0, "n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParseError);
    EXPECT_NE(std::string(e.what()).find("ints.csv:2"), std::string::npos);
  }
}

TEST(CsvTable, TablesWithoutProvenanceStillReport) {
  // Rows-only construction (no document): typed-access failures still
  // throw, just without file/line context.
  const CsvTable table(parse_csv("x\nnope\n"));
  EXPECT_THROW(table.cell_double(0, "x"), Error);
}

TEST(ReadCsvDocument, FileRoundTripKeepsPath) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "solarnet_csv_doc_test.csv")
          .string();
  write_csv_file(path, {{"h"}, {"v"}});
  const CsvDocument doc = read_csv_document(path);
  EXPECT_EQ(doc.path, path);
  ASSERT_EQ(doc.rows.size(), 2u);
  std::remove(path.c_str());
}

// Property sweep: random tables with adversarial content round-trip
// losslessly through to_csv/parse_csv.
class CsvRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(CsvRoundTripTest, RandomTablesRoundTrip) {
  // Deterministic LCG so each instantiation is a stable case.
  unsigned state = static_cast<unsigned>(GetParam()) * 2654435761u + 1u;
  auto next = [&]() {
    state = state * 1664525u + 1013904223u;
    return state >> 8;
  };
  const char alphabet[] = "abc,\"\n\r;x 1.5\t-";
  std::vector<CsvRow> rows;
  const std::size_t n_rows = 1 + next() % 8;
  const std::size_t n_cols = 1 + next() % 5;
  for (std::size_t r = 0; r < n_rows; ++r) {
    CsvRow row;
    for (std::size_t c = 0; c < n_cols; ++c) {
      std::string field;
      const std::size_t len = next() % 12;
      for (std::size_t k = 0; k < len; ++k) {
        field += alphabet[next() % (sizeof(alphabet) - 1)];
      }
      // A field that is exactly "\r" (or ends in \r after an unquoted
      // newline) is representable; our writer quotes it. But a bare field
      // whose only content is "" is fine too.
      row.push_back(field);
    }
    rows.push_back(row);
  }
  const std::string text = to_csv(rows);
  CsvOptions opts;
  opts.skip_blank_lines = false;
  const auto parsed = parse_csv(text, opts);
  ASSERT_EQ(parsed.size(), rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(parsed[r], rows[r]) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         ::testing::Range(1, 26));

}  // namespace
}  // namespace solarnet::util
