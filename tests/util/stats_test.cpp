#include "util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"

namespace solarnet::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, EmptySurfacesEmptiness) {
  // min()/max() return a 0.0 sentinel when no sample was ever added —
  // callers must be able to tell that apart from a real observed 0.0, and
  // empty() is that signal.
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  s.add(-3.5);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.min(), -3.5);
  EXPECT_EQ(s.max(), -3.5);
  // Merging an empty accumulator into a non-empty one (and vice versa)
  // keeps emptiness truthful.
  RunningStats other;
  EXPECT_TRUE(other.empty());
  other.merge(s);
  EXPECT_FALSE(other.empty());
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

// Single-trial sweep points feed sd columns: every variance accessor must
// come back 0 (never NaN) below two samples, including after merges that
// land on n == 1.
TEST(RunningStats, FewerThanTwoSamplesNeverNaN) {
  for (const RunningStats& s : {[] { return RunningStats{}; }(),
                                [] {
                                  RunningStats one;
                                  one.add(3.25);
                                  return one;
                                }(),
                                [] {
                                  RunningStats merged;
                                  RunningStats one;
                                  one.add(-7.5);
                                  merged.merge(one);
                                  merged.merge(RunningStats{});
                                  return merged;
                                }()}) {
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sample_variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_EQ(s.sample_stddev(), 0.0);
    EXPECT_FALSE(std::isnan(s.stddev()));
    EXPECT_FALSE(std::isnan(s.sample_stddev()));
  }
}

// Near-constant inputs can round m2 to a hair below zero; the accessors
// must clamp instead of taking sqrt of a negative.
TEST(RunningStats, NearConstantInputsStayNonNegative) {
  RunningStats s;
  const double base = 1.0e15;
  for (int i = 0; i < 64; ++i) s.add(base + (i % 2 == 0 ? 0.125 : -0.125));
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_GE(s.sample_variance(), 0.0);
  EXPECT_FALSE(std::isnan(s.stddev()));
  EXPECT_FALSE(std::isnan(s.sample_stddev()));
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);      // population
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

// Property tests for the parallel-reduction contract the Monte-Carlo engine
// relies on: any split of an add-stream, accumulated in halves and merged,
// must agree with the serial accumulator.
TEST(RunningStats, MergePropertySplitAtEveryPoint) {
  Rng rng(99);
  std::vector<double> values;
  for (int i = 0; i < 64; ++i) {
    // Mix of scales so the Chan merge is exercised away from 0.
    values.push_back(rng.normal(5.0, 3.0) + (i % 7 == 0 ? 100.0 : 0.0));
  }
  RunningStats all;
  for (double x : values) all.add(x);
  for (std::size_t split = 0; split <= values.size(); ++split) {
    RunningStats left;
    RunningStats right;
    for (std::size_t i = 0; i < values.size(); ++i) {
      (i < split ? left : right).add(values[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12 * std::abs(all.mean()) + 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(),
                1e-12 * all.variance() + 1e-12);
    EXPECT_EQ(left.min(), all.min());
    EXPECT_EQ(left.max(), all.max());
  }
}

TEST(RunningStats, MergePropertyRandomChunking) {
  Rng rng(7);
  for (int round = 0; round < 25; ++round) {
    const std::size_t n = 1 + rng.uniform_below(300);
    std::vector<double> values;
    for (std::size_t i = 0; i < n; ++i) values.push_back(rng.uniform(-50.0, 50.0));
    RunningStats all;
    for (double x : values) all.add(x);
    // Accumulate in random-sized chunks, merged in order — the shape of the
    // engine's fixed-chunk reduction.
    RunningStats merged;
    std::size_t i = 0;
    while (i < n) {
      const std::size_t len = 1 + rng.uniform_below(32);
      RunningStats chunk;
      for (std::size_t j = i; j < std::min(i + len, n); ++j) chunk.add(values[j]);
      merged.merge(chunk);
      i += len;
    }
    EXPECT_EQ(merged.count(), all.count());
    EXPECT_NEAR(merged.mean(), all.mean(),
                1e-12 * std::abs(all.mean()) + 1e-12);
    EXPECT_NEAR(merged.sample_variance(), all.sample_variance(),
                1e-12 * all.sample_variance() + 1e-12);
    EXPECT_EQ(merged.min(), all.min());
    EXPECT_EQ(merged.max(), all.max());
  }
}

TEST(RunningStats, MergeOfSingleChunkIntoEmptyIsExactCopy) {
  // run_trials relies on this for bit-identity with the old serial loop
  // whenever trials fit in one chunk.
  RunningStats chunk;
  Rng rng(3);
  for (int i = 0; i < 10; ++i) chunk.add(rng.uniform());
  RunningStats agg;
  agg.merge(chunk);
  EXPECT_EQ(agg.count(), chunk.count());
  EXPECT_EQ(agg.mean(), chunk.mean());
  EXPECT_EQ(agg.variance(), chunk.variance());
  EXPECT_EQ(agg.min(), chunk.min());
  EXPECT_EQ(agg.max(), chunk.max());
}

TEST(Quantile, ExactOrderStatistics) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.9), 9.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> v = {1.0};
  EXPECT_THROW(quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.1), std::invalid_argument);
}

TEST(Quantile, UnsortedVariantSorts) {
  const std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_unsorted(v, 0.5), 3.0);
}

TEST(Quantile, UnsortedRejectsNonFiniteWithIndex) {
  // NaN violates std::sort's strict-weak-ordering precondition (undefined
  // behavior), so the copying variant must reject it before sorting — and
  // name the offending index so the bad sample can be found.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> with_nan = {1.0, 2.0, nan, 4.0};
  try {
    quantile_unsorted(with_nan, 0.5);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("index 2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(quantile_unsorted(std::vector<double>{inf, 1.0}, 0.5),
               std::invalid_argument);
  EXPECT_THROW(quantile_unsorted(std::vector<double>{-inf}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(median(with_nan), std::invalid_argument);
}

TEST(MeanMedian, MeanRejectsNonFiniteWithIndex) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> v = {nan, 2.0};
  try {
    mean(v);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("index 0"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(mean(std::vector<double>{
                   1.0, std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
}

TEST(MeanMedian, Basics) {
  const std::vector<double> v = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_DOUBLE_EQ(median(v), 2.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Histogram, BinsAndDensity) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  h.add(1.0);
  h.add(3.0);
  h.add(3.5);
  h.add(9.9);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  const auto density = h.density();
  // Density integrates to 1: sum(density * width) == 1.
  double integral = 0.0;
  for (double d : density) integral += d * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(Histogram, WeightedMass) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25, 3.0);
  h.add(0.75, 1.0);
  const auto norm = h.normalized();
  EXPECT_DOUBLE_EQ(norm[0], 0.75);
  EXPECT_DOUBLE_EQ(norm[1], 0.25);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RejectsNonFinite) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.add(std::nan("")), std::invalid_argument);
  EXPECT_THROW(h.add(0.5, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(Histogram, BinEdges) {
  Histogram h(-10.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), -10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), -2.5);
  EXPECT_THROW(h.bin_lo(4), std::out_of_range);
}

TEST(EmpiricalCdf, StepsAndDuplicates) {
  const std::vector<double> v = {1.0, 2.0, 2.0, 3.0};
  const auto cdf = empirical_cdf(v);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].cum_fraction, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].cum_fraction, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].cum_fraction, 1.0);
}

TEST(EmpiricalCdf, EmptyInput) {
  EXPECT_TRUE(empirical_cdf({}).empty());
}

TEST(CdfAt, Evaluation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const auto cdf = empirical_cdf(v);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf_at({}, 1.0), 0.0);
}

TEST(Fractions, AboveAndAtLeast) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(fraction_above(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_at_least(v, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(fraction_above({}, 0.0), 0.0);
}

// Property-style sweep: quantile is monotone in q for arbitrary data.
class QuantileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotoneTest, MonotoneInQ) {
  std::vector<double> v;
  int seed = GetParam();
  for (int i = 0; i < 50; ++i) {
    seed = seed * 1103515245 + 12345;
    v.push_back(static_cast<double>(seed % 1000));
  }
  std::sort(v.begin(), v.end());
  double prev = quantile(v, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(v, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace solarnet::util
