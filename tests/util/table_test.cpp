#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace solarnet::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Separator line exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, NumericRowFormatting) {
  TextTable t({"label", "x", "y"});
  t.add_numeric_row("row", {1.2345, 2.0}, 2);
  const std::string out = t.render();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"h", "v"});
  t.add_row({"xxxx", "1"});
  t.add_row({"y", "22"});
  const std::string out = t.render();
  // Every line has the same length (alignment padding).
  std::istringstream is(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(TextTable, AlignmentSetting) {
  TextTable t({"a", "b"});
  t.set_alignment(1, Align::kLeft);
  t.add_row({"x", "1"});
  EXPECT_THROW(t.set_alignment(5, Align::kLeft), std::out_of_range);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(PrintBanner, ContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Figure 6");
  EXPECT_NE(os.str().find("Figure 6"), std::string::npos);
  EXPECT_NE(os.str().find("===="), std::string::npos);
}

}  // namespace
}  // namespace solarnet::util
