#include "util/status.h"

#include <gtest/gtest.h>

#include <string>

namespace solarnet::util {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_NO_THROW(s.throw_if_error());
}

TEST(Status, CarriesCodeMessageContext) {
  const Status s(ErrorCode::kParseError, "malformed number '4x'",
                 {"nodes.csv", 12, "lat"});
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kParseError);
  EXPECT_EQ(s.message(), "malformed number '4x'");
  EXPECT_EQ(s.context().file, "nodes.csv");
  EXPECT_EQ(s.context().line, 12u);
  EXPECT_EQ(s.context().field, "lat");
}

TEST(Status, ToStringIncludesEverything) {
  const Status s(ErrorCode::kParseError, "malformed number",
                 {"nodes.csv", 12, "lat"});
  const std::string text = s.to_string();
  EXPECT_NE(text.find("malformed number"), std::string::npos);
  EXPECT_NE(text.find("nodes.csv:12"), std::string::npos);
  EXPECT_NE(text.find("lat"), std::string::npos);
}

TEST(Status, ThrowIfErrorThrowsError) {
  const Status s(ErrorCode::kCorrupt, "bad checksum", {"ck.bin"});
  try {
    s.throw_if_error();
    FAIL() << "expected util::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorrupt);
    EXPECT_EQ(e.context().file, "ck.bin");
    EXPECT_NE(std::string(e.what()).find("bad checksum"), std::string::npos);
  }
}

TEST(SourceContext, EmptyAndToString) {
  const SourceContext none;
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.to_string(), "");

  const SourceContext file_only{"a.csv"};
  EXPECT_FALSE(file_only.empty());
  EXPECT_NE(file_only.to_string().find("a.csv"), std::string::npos);
}

TEST(Error, IsRuntimeError) {
  // Existing catch(const std::runtime_error&) boundaries must keep working.
  const auto thrower = [] {
    throw Error(ErrorCode::kIoError, "cannot open", {"x.csv"});
  };
  EXPECT_THROW(thrower(), std::runtime_error);
  EXPECT_THROW(thrower(), std::exception);
}

TEST(Error, WhatCarriesContext) {
  const Error e(ErrorCode::kInvalidData, "duplicate node", {"nodes.csv", 7});
  const std::string what = e.what();
  EXPECT_NE(what.find("duplicate node"), std::string::npos);
  EXPECT_NE(what.find("nodes.csv:7"), std::string::npos);
}

TEST(ErrorCode, ToStringCoversAllCodes) {
  for (const ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kInvalidArgument, ErrorCode::kParseError,
        ErrorCode::kInvalidData, ErrorCode::kIoError, ErrorCode::kCorrupt,
        ErrorCode::kVersionMismatch, ErrorCode::kMismatch,
        ErrorCode::kFaultInjected, ErrorCode::kAborted}) {
    EXPECT_NE(to_string(code), nullptr);
    EXPECT_GT(std::string(to_string(code)).size(), 0u);
  }
}

}  // namespace
}  // namespace solarnet::util
