#include "util/bitset.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace solarnet::util {
namespace {

TEST(Bitset, DefaultIsEmpty) {
  Bitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.none());
  EXPECT_TRUE(b.all());  // vacuously
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.find_first(), Bitset::npos);
}

TEST(Bitset, ConstructSized) {
  Bitset zeros(70);
  EXPECT_EQ(zeros.size(), 70u);
  EXPECT_TRUE(zeros.none());
  Bitset ones(70, true);
  EXPECT_EQ(ones.count(), 70u);
  EXPECT_TRUE(ones.all());
  EXPECT_TRUE(ones.any());
}

TEST(Bitset, SetResetTest) {
  Bitset b(130);
  b.set(0);
  b.set(64);   // first bit of second word
  b.set(129);  // last bit
  EXPECT_TRUE(b[0]);
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b[129]);
  EXPECT_FALSE(b[1]);
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b[64]);
  EXPECT_EQ(b.count(), 2u);
  b.set(5, true);
  b.set(0, false);
  EXPECT_TRUE(b[5]);
  EXPECT_FALSE(b[0]);
}

TEST(Bitset, WordWideFills) {
  Bitset b(100);
  b.set_all();
  EXPECT_EQ(b.count(), 100u);
  EXPECT_TRUE(b.all());
  b.reset_all();
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.count(), 0u);
}

// The tail-bits-zero invariant: whole-word operations must never let bits
// beyond size() leak into count/any/equality.
TEST(Bitset, TailBitsStayZeroAfterSetAll) {
  Bitset b(65);  // one full word + one bit
  b.set_all();
  EXPECT_EQ(b.count(), 65u);
  ASSERT_EQ(b.words().size(), 2u);
  EXPECT_EQ(b.words()[1], std::uint64_t{1});
}

TEST(Bitset, TailBitsStayZeroAfterShrink) {
  Bitset b(128, true);
  b.resize(65);
  EXPECT_EQ(b.size(), 65u);
  EXPECT_EQ(b.count(), 65u);
  b.resize(3);
  EXPECT_EQ(b.count(), 3u);
  EXPECT_EQ(b.words()[0], std::uint64_t{0b111});
}

TEST(Bitset, AssignIsVectorAssignSemantics) {
  Bitset b(10, true);
  b.assign(200, false);
  EXPECT_EQ(b.size(), 200u);
  EXPECT_TRUE(b.none());
  b.assign(3, true);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset, ResizeKeepsPrefixAndFillsNewBits) {
  Bitset b(4);
  b.set(1);
  b.set(3);
  b.resize(100, true);
  EXPECT_TRUE(b[1]);
  EXPECT_TRUE(b[3]);
  EXPECT_FALSE(b[0]);
  EXPECT_FALSE(b[2]);
  for (std::size_t i = 4; i < 100; ++i) {
    EXPECT_TRUE(b[i]) << i;
  }
  EXPECT_EQ(b.count(), 98u);
}

TEST(Bitset, FindFirst) {
  Bitset b(200);
  EXPECT_EQ(b.find_first(), Bitset::npos);
  b.set(130);
  EXPECT_EQ(b.find_first(), 130u);
  b.set(64);
  EXPECT_EQ(b.find_first(), 64u);
  b.set(0);
  EXPECT_EQ(b.find_first(), 0u);
}

TEST(Bitset, Equality) {
  Bitset a(70), b(70);
  EXPECT_EQ(a, b);
  a.set(69);
  EXPECT_FALSE(a == b);
  b.set(69);
  EXPECT_EQ(a, b);
  Bitset c(71);
  c.set(69);
  EXPECT_FALSE(a == c);  // same prefix, different size
}

// Randomized cross-check against std::vector<bool>: every mutation and
// query must agree.
TEST(Bitset, MatchesVectorBoolReference) {
  util::Rng rng(1234);
  for (const std::size_t n : {1u, 63u, 64u, 65u, 200u}) {
    Bitset b(n);
    std::vector<bool> ref(n, false);
    for (int step = 0; step < 500; ++step) {
      const auto i = static_cast<std::size_t>(rng.uniform_below(n));
      const bool value = rng.bernoulli(0.5);
      b.set(i, value);
      ref[i] = value;
    }
    std::size_t ref_count = 0;
    std::size_t ref_first = Bitset::npos;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(b[i], ref[i]) << "n=" << n << " i=" << i;
      if (ref[i]) {
        ++ref_count;
        if (ref_first == Bitset::npos) ref_first = i;
      }
    }
    EXPECT_EQ(b.count(), ref_count);
    EXPECT_EQ(b.find_first(), ref_first);
    EXPECT_EQ(b.any(), ref_count > 0);
    EXPECT_EQ(b.all(), ref_count == n);
  }
}

TEST(Bitset, SetWordWritesWholeWordsAndMasksTail) {
  Bitset b(70);  // two words, 6 valid bits in the tail word
  b.set_word(0, ~std::uint64_t{0});
  EXPECT_EQ(b.count(), 64u);
  // Writing the last word must preserve the invariant that bits at
  // positions >= size() stay zero, even when the written word has them set.
  b.set_word(1, ~std::uint64_t{0});
  EXPECT_EQ(b.count(), 70u);
  EXPECT_TRUE(b.all());
  b.set_word(0, 0b101);
  EXPECT_TRUE(b[0]);
  EXPECT_FALSE(b[1]);
  EXPECT_TRUE(b[2]);
  EXPECT_EQ(b.count(), 8u);  // 2 in word 0 + 6 tail bits
}

TEST(Bitset, Transpose64x64MatchesNaiveBitIndexing) {
  Rng rng(321);
  std::uint64_t m[64];
  for (auto& w : m) w = rng.next_u64();
  std::uint64_t t[64];
  for (int i = 0; i < 64; ++i) t[i] = m[i];
  transpose_64x64(t);
  for (int r = 0; r < 64; ++r) {
    for (int c = 0; c < 64; ++c) {
      EXPECT_EQ((t[r] >> c) & 1, (m[c] >> r) & 1) << r << "," << c;
    }
  }
  // Involution: transposing twice restores the original matrix.
  transpose_64x64(t);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(t[i], m[i]);
}

}  // namespace
}  // namespace solarnet::util
