#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

namespace solarnet::util {
namespace {

TEST(Parallel, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
  EXPECT_EQ(resolve_thread_count(0), default_thread_count());
  EXPECT_EQ(resolve_thread_count(3), 3u);
}

TEST(Parallel, ZeroTasksIsANoOp) {
  bool called = false;
  parallel_for(0, 4, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, SingleThreadRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for(5, 1, [&](std::size_t task, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(task);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Parallel, EveryTaskRunsExactlyOnce) {
  for (std::size_t threads : {2u, 4u, 8u}) {
    constexpr std::size_t kTasks = 1000;
    std::vector<std::atomic<int>> hits(kTasks);
    parallel_for(kTasks, threads,
                 [&](std::size_t task, std::size_t) { ++hits[task]; });
    for (std::size_t t = 0; t < kTasks; ++t) {
      EXPECT_EQ(hits[t].load(), 1) << "task " << t;
    }
  }
}

TEST(Parallel, WorkerIdsAreDense) {
  std::mutex mu;
  std::set<std::size_t> workers;
  parallel_for(64, 4, [&](std::size_t, std::size_t worker) {
    const std::lock_guard<std::mutex> lock(mu);
    workers.insert(worker);
  });
  // Workers are clamped to min(threads, tasks); every observed id must be
  // a valid dense index.
  for (std::size_t w : workers) EXPECT_LT(w, 4u);
  EXPECT_FALSE(workers.empty());
}

TEST(Parallel, WorkerCountClampedToTasks) {
  std::mutex mu;
  std::set<std::size_t> workers;
  parallel_for(2, 16, [&](std::size_t, std::size_t worker) {
    const std::lock_guard<std::mutex> lock(mu);
    workers.insert(worker);
  });
  for (std::size_t w : workers) EXPECT_LT(w, 2u);
}

TEST(Parallel, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [&](std::size_t task, std::size_t) {
                     if (task == 17) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Serial path too.
  EXPECT_THROW(parallel_for(3, 1,
                            [&](std::size_t, std::size_t) {
                              throw std::invalid_argument("bad");
                            }),
               std::invalid_argument);
}

TEST(Parallel, SumOverTasksIsCompleteUnderContention) {
  constexpr std::size_t kTasks = 5000;
  std::atomic<std::uint64_t> sum{0};
  parallel_for(kTasks, 8, [&](std::size_t task, std::size_t) {
    sum.fetch_add(task, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

}  // namespace
}  // namespace solarnet::util
