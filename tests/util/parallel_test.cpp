#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/fault_injection.h"

namespace solarnet::util {
namespace {

TEST(Parallel, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
  EXPECT_EQ(resolve_thread_count(0), default_thread_count());
  EXPECT_EQ(resolve_thread_count(3), 3u);
}

TEST(Parallel, ZeroTasksIsANoOp) {
  bool called = false;
  parallel_for(0, 4, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, SingleThreadRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for(5, 1, [&](std::size_t task, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(task);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Parallel, EveryTaskRunsExactlyOnce) {
  for (std::size_t threads : {2u, 4u, 8u}) {
    constexpr std::size_t kTasks = 1000;
    std::vector<std::atomic<int>> hits(kTasks);
    parallel_for(kTasks, threads,
                 [&](std::size_t task, std::size_t) { ++hits[task]; });
    for (std::size_t t = 0; t < kTasks; ++t) {
      EXPECT_EQ(hits[t].load(), 1) << "task " << t;
    }
  }
}

TEST(Parallel, WorkerIdsAreDense) {
  std::mutex mu;
  std::set<std::size_t> workers;
  parallel_for(64, 4, [&](std::size_t, std::size_t worker) {
    const std::lock_guard<std::mutex> lock(mu);
    workers.insert(worker);
  });
  // Workers are clamped to min(threads, tasks); every observed id must be
  // a valid dense index.
  for (std::size_t w : workers) EXPECT_LT(w, 4u);
  EXPECT_FALSE(workers.empty());
}

TEST(Parallel, WorkerCountClampedToTasks) {
  std::mutex mu;
  std::set<std::size_t> workers;
  parallel_for(2, 16, [&](std::size_t, std::size_t worker) {
    const std::lock_guard<std::mutex> lock(mu);
    workers.insert(worker);
  });
  for (std::size_t w : workers) EXPECT_LT(w, 2u);
}

TEST(Parallel, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [&](std::size_t task, std::size_t) {
                     if (task == 17) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // Serial path too.
  EXPECT_THROW(parallel_for(3, 1,
                            [&](std::size_t, std::size_t) {
                              throw std::invalid_argument("bad");
                            }),
               std::invalid_argument);
}

TEST(Parallel, SumOverTasksIsCompleteUnderContention) {
  constexpr std::size_t kTasks = 5000;
  std::atomic<std::uint64_t> sum{0};
  parallel_for(kTasks, 8, [&](std::size_t task, std::size_t) {
    sum.fetch_add(task, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

TEST(Parallel, MultiWorkerExceptionCarriesProgressContext) {
  try {
    parallel_for(100, 4, [&](std::size_t task, std::size_t) {
      if (task == 17) throw std::runtime_error("boom");
    });
    FAIL() << "expected ParallelError";
  } catch (const ParallelError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAborted);
    EXPECT_EQ(e.failed_task(), 17u);
    // Task 17 threw, so at most the other 99 can have completed.
    EXPECT_LT(e.tasks_completed(), 100u);
    EXPECT_EQ(e.tasks_total(), 100u);
    const std::string what = e.what();
    EXPECT_NE(what.find("task 17"), std::string::npos);
    EXPECT_NE(what.find("boom"), std::string::npos);
    try {
      e.rethrow_cause();
      FAIL() << "cause must rethrow";
    } catch (const std::runtime_error& cause) {
      EXPECT_STREQ(cause.what(), "boom");
    }
  }
}

TEST(Parallel, CompletedCountOnlyCountsNormalReturns) {
  // Workers: one claims the throwing task 0 immediately; the loop may let
  // others finish, but the count can never include the failed task itself.
  try {
    parallel_for(8, 2, [&](std::size_t task, std::size_t) {
      if (task == 0) throw std::runtime_error("first task dies");
    });
    FAIL() << "expected ParallelError";
  } catch (const ParallelError& e) {
    EXPECT_EQ(e.failed_task(), 0u);
    EXPECT_LE(e.tasks_completed(), 7u);
  }
}

TEST(Parallel, InlinePathPropagatesUnwrapped) {
  // Single worker: the exception must arrive unchanged, not as
  // ParallelError — callers rely on the inline path being transparent.
  try {
    parallel_for(3, 1, [&](std::size_t task, std::size_t) {
      if (task == 1) throw std::invalid_argument("inline");
    });
    FAIL() << "expected invalid_argument";
  } catch (const ParallelError&) {
    FAIL() << "inline path must not wrap";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "inline");
  }
}

TEST(Parallel, WorkerTaskFaultSiteFiresOnBothPaths) {
  // Inline path: injected fault propagates as the raw util::Error.
  {
    const ScopedFault fault(FaultSite::kWorkerTask, std::uint64_t{2});
    try {
      parallel_for(4, 1, [](std::size_t, std::size_t) {});
      FAIL() << "expected injected fault";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
    }
  }
  // Multi-worker path: wrapped in ParallelError, cause preserved.
  {
    const ScopedFault fault(FaultSite::kWorkerTask, std::uint64_t{1});
    try {
      parallel_for(16, 4, [](std::size_t, std::size_t) {});
      FAIL() << "expected ParallelError";
    } catch (const ParallelError& e) {
      try {
        e.rethrow_cause();
        FAIL() << "cause must rethrow";
      } catch (const Error& cause) {
        EXPECT_EQ(cause.code(), ErrorCode::kFaultInjected);
      }
    }
  }
  // Disarmed again: clean runs stay clean.
  EXPECT_NO_THROW(parallel_for(8, 2, [](std::size_t, std::size_t) {}));
}

}  // namespace
}  // namespace solarnet::util
