#include "sim/incremental.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/components.h"
#include "topology/network.h"
#include "util/rng.h"

namespace solarnet::sim {
namespace {

// Same random-network generator as sweep_test: `nodes` random points,
// `cables` random point-to-point cables with lengths spanning repeaterless
// (< 150 km) through dozens-of-repeaters, including occasional duplicate
// endpoints (parallel cables).
topo::InfrastructureNetwork random_network(util::Rng& rng, std::size_t nodes,
                                           std::size_t cables) {
  topo::InfrastructureNetwork net("random");
  for (std::size_t i = 0; i < nodes; ++i) {
    net.add_node({"n" + std::to_string(i),
                  {rng.uniform(-70.0, 70.0), rng.uniform(-180.0, 180.0)},
                  "",
                  topo::NodeKind::kLandingPoint,
                  true});
  }
  for (std::size_t i = 0; i < cables; ++i) {
    const auto a = static_cast<topo::NodeId>(rng.uniform_below(nodes));
    auto b = static_cast<topo::NodeId>(rng.uniform_below(nodes));
    if (b == a) b = (b + 1) % nodes;
    topo::Cable cable;
    cable.name = "c" + std::to_string(i);
    cable.segments = {{a, b, rng.uniform(40.0, 4000.0)}};
    net.add_cable(std::move(cable));
  }
  return net;
}

// Naive reference for step g of a first-dead axis: dead set
// {c : first_dead[c] <= g}, aggregates from the one-shot graph kernels.
IncrementalAggregates naive_step(const topo::InfrastructureNetwork& net,
                                 const std::vector<std::uint32_t>& first_dead,
                                 std::size_t g) {
  std::vector<bool> dead(net.cable_count(), false);
  IncrementalAggregates agg;
  for (std::size_t c = 0; c < net.cable_count(); ++c) {
    dead[c] = first_dead[c] <= g;
    if (!dead[c]) ++agg.alive_cables;
  }
  agg.lit_nodes =
      net.connected_node_count() - net.unreachable_nodes(dead).size();
  const auto components =
      graph::connected_components(net.graph(), net.mask_for_failures(dead));
  // The walk's union-find spans all graph nodes, so isolated vertices are
  // singleton components and the largest is floored at 1 on non-empty
  // graphs. mask_for_failures keeps every vertex alive, so the masked
  // decomposition agrees — the max() documents the convention.
  agg.largest = std::max<std::size_t>(components.largest_component_size(),
                                      net.node_count() > 0 ? 1 : 0);
  return agg;
}

TEST(IncrementalTest, CountsMatchNetwork) {
  util::Rng rng(11);
  const auto net = random_network(rng, 9, 14);
  const IncrementalConnectivity inc(net);
  EXPECT_EQ(inc.cable_count(), net.cable_count());
  EXPECT_EQ(inc.node_count(), net.node_count());
  EXPECT_EQ(inc.connected_node_count(), net.connected_node_count());
}

TEST(IncrementalTest, BucketRejectsSizeMismatch) {
  util::Rng rng(12);
  const auto net = random_network(rng, 6, 8);
  const IncrementalConnectivity inc(net);
  IncrementalScratch scratch;
  const std::vector<std::uint32_t> wrong(net.cable_count() + 1, 0);
  EXPECT_THROW(inc.bucket_by_first_dead(wrong, 4, scratch),
               std::invalid_argument);
  const std::vector<std::uint32_t> empty;
  EXPECT_THROW(inc.bucket_by_first_dead(empty, 4, scratch),
               std::invalid_argument);
}

TEST(IncrementalTest, BucketGroupsByFirstDeadInAscendingCableOrder) {
  util::Rng rng(13);
  const auto net = random_network(rng, 10, 25);
  const IncrementalConnectivity inc(net);
  const std::size_t steps = 5;
  std::vector<std::uint32_t> first_dead(net.cable_count());
  for (auto& v : first_dead) {
    v = static_cast<std::uint32_t>(rng.uniform_below(steps + 1));
  }
  IncrementalScratch s;
  inc.bucket_by_first_dead(first_dead, steps, s);

  ASSERT_EQ(s.bucket_start.size(), steps + 2);
  EXPECT_EQ(s.bucket_start.front(), 0u);
  EXPECT_EQ(s.bucket_start.back(), net.cable_count());
  ASSERT_EQ(s.bucket_cables.size(), net.cable_count());
  for (std::size_t bucket = 0; bucket <= steps; ++bucket) {
    for (std::uint32_t i = s.bucket_start[bucket];
         i < s.bucket_start[bucket + 1]; ++i) {
      const std::uint32_t c = s.bucket_cables[i];
      // Membership: every cable sits in the bucket of its first-dead step.
      EXPECT_EQ(first_dead[c], bucket);
      // Ascending cable order inside the bucket — the activation (and
      // therefore union-find merge) order is a pure function of the axis.
      if (i > s.bucket_start[bucket]) {
        EXPECT_LT(s.bucket_cables[i - 1], c);
      }
    }
  }
}

TEST(IncrementalTest, WalkWithZeroStepsNeverInvokesCallback) {
  util::Rng rng(14);
  const auto net = random_network(rng, 6, 8);
  const IncrementalConnectivity inc(net);
  IncrementalScratch s;
  const std::vector<std::uint32_t> first_dead(net.cable_count(), 0);
  inc.bucket_by_first_dead(first_dead, 0, s);
  std::size_t calls = 0;
  inc.walk(0, s, [&](std::size_t, const IncrementalAggregates&) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(IncrementalTest, OneStepAllAliveReproducesFullNetwork) {
  util::Rng rng(15);
  const auto net = random_network(rng, 12, 20);
  const IncrementalConnectivity inc(net);
  IncrementalScratch s;
  // Every cable in the always-alive bucket: step 0 sees the whole network.
  const std::vector<std::uint32_t> alive(net.cable_count(), 1);
  inc.bucket_by_first_dead(alive, 1, s);
  std::size_t calls = 0;
  inc.walk(1, s, [&](std::size_t g, const IncrementalAggregates& agg) {
    ++calls;
    EXPECT_EQ(g, 0u);
    EXPECT_EQ(agg.alive_cables, net.cable_count());
    EXPECT_EQ(agg.lit_nodes, net.connected_node_count());
    const auto full = graph::connected_components(net.graph());
    EXPECT_EQ(agg.largest, full.largest_component_size());
  });
  EXPECT_EQ(calls, 1u);
}

// The core property: for random networks and random monotone axes, the
// resurrection walk reports, at every step g, exactly the aggregates of the
// alive set {c : first_dead[c] > g} — checked against per-step full
// recomputation through the one-shot graph kernels.
TEST(IncrementalTest, WalkMatchesNaivePerStepRecompute) {
  util::Rng rng(2024);
  for (int round = 0; round < 8; ++round) {
    const std::size_t nodes = 4 + rng.uniform_below(20);
    const std::size_t cables = 3 + rng.uniform_below(40);
    const auto net = random_network(rng, nodes, cables);
    const IncrementalConnectivity inc(net);
    const std::size_t steps = 1 + rng.uniform_below(12);
    std::vector<std::uint32_t> first_dead(net.cable_count());
    for (auto& v : first_dead) {
      v = static_cast<std::uint32_t>(rng.uniform_below(steps + 1));
    }
    IncrementalScratch s;
    inc.bucket_by_first_dead(first_dead, steps, s);
    std::vector<IncrementalAggregates> walked(steps);
    std::size_t calls = 0;
    inc.walk(steps, s, [&](std::size_t g, const IncrementalAggregates& agg) {
      walked[g] = agg;
      ++calls;
    });
    ASSERT_EQ(calls, steps);
    for (std::size_t g = 0; g < steps; ++g) {
      const IncrementalAggregates expected = naive_step(net, first_dead, g);
      EXPECT_EQ(walked[g].alive_cables, expected.alive_cables)
          << "round " << round << " step " << g;
      EXPECT_EQ(walked[g].lit_nodes, expected.lit_nodes)
          << "round " << round << " step " << g;
      EXPECT_EQ(walked[g].largest, expected.largest)
          << "round " << round << " step " << g;
    }
  }
}

// Re-using one scratch across axes of different widths must not leak state
// between walks — the engines keep one warm scratch per worker.
TEST(IncrementalTest, ScratchReuseAcrossAxesIsClean) {
  util::Rng rng(77);
  const auto net = random_network(rng, 10, 18);
  const IncrementalConnectivity inc(net);
  IncrementalScratch s;
  for (int round = 0; round < 6; ++round) {
    const std::size_t steps = 1 + rng.uniform_below(9);
    std::vector<std::uint32_t> first_dead(net.cable_count());
    for (auto& v : first_dead) {
      v = static_cast<std::uint32_t>(rng.uniform_below(steps + 1));
    }
    inc.bucket_by_first_dead(first_dead, steps, s);
    inc.walk(steps, s, [&](std::size_t g, const IncrementalAggregates& agg) {
      const IncrementalAggregates expected = naive_step(net, first_dead, g);
      EXPECT_EQ(agg.alive_cables, expected.alive_cables);
      EXPECT_EQ(agg.lit_nodes, expected.lit_nodes);
      EXPECT_EQ(agg.largest, expected.largest);
    });
  }
}

}  // namespace
}  // namespace solarnet::sim
