#include "sim/pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/country.h"
#include "analysis/dns_resolution.h"
#include "gic/failure_model.h"
#include "services/availability.h"
#include "util/checkpoint.h"
#include "util/rng.h"
#include "util/status.h"

namespace solarnet::sim {
namespace {

void expect_stats_eq(const util::RunningStats& a, const util::RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.sample_stddev(), b.sample_stddev());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

// NY (US) -- Bude (GB) -- Singapore (SG) line plus a Lisbon (PT) spur:
// every cable is international and long enough to carry repeaters at the
// default 150 km spacing.
class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : net_("pipeline") {
    ny_ = add_node("NY", {40.7, -74.0}, "US");
    bude_ = add_node("Bude", {50.8, -4.5}, "GB");
    sg_ = add_node("Singapore", {1.35, 103.8}, "SG");
    lisbon_ = add_node("Lisbon", {38.7, -9.1}, "PT");
    atl_ = add_cable("atl", ny_, bude_, 6000.0);
    asia_ = add_cable("asia", bude_, sg_, 11000.0);
    spur_ = add_cable("spur", ny_, lisbon_, 5500.0);
  }

  topo::NodeId add_node(const char* name, geo::GeoPoint p, const char* cc) {
    return net_.add_node({name, p, cc, topo::NodeKind::kLandingPoint, true});
  }
  topo::CableId add_cable(const char* name, topo::NodeId a, topo::NodeId b,
                          double km) {
    topo::Cable c;
    c.name = name;
    c.segments = {{a, b, km}};
    return net_.add_cable(std::move(c));
  }

  services::ServiceSpec two_replica_service() const {
    services::ServiceSpec spec;
    spec.name = "svc";
    spec.replicas = {{40.7, -74.0}, {1.35, 103.8}};  // NY + Singapore
    spec.write_quorum = 2;
    return spec;
  }
  std::vector<datasets::DnsRootInstance> two_letters() const {
    return {
        {'a', {40.7, -74.0}, "US", geo::Continent::kNorthAmerica},
        {'b', {1.35, 103.8}, "SG", geo::Continent::kAsia},
    };
  }

  topo::InfrastructureNetwork net_;
  topo::NodeId ny_{}, bude_{}, sg_{}, lisbon_{};
  topo::CableId atl_{}, asia_{}, spur_{};
};

// Random multi-cable networks for property tests (the sweep_test idiom),
// with country codes cycled over a small set so the country observer has
// international cables to watch.
topo::InfrastructureNetwork random_network(util::Rng& rng, std::size_t nodes,
                                           std::size_t cables) {
  static const char* kCountries[] = {"US", "GB", "SG", "BR"};
  topo::InfrastructureNetwork net("random");
  for (std::size_t i = 0; i < nodes; ++i) {
    net.add_node({"n" + std::to_string(i),
                  {rng.uniform(-70.0, 70.0), rng.uniform(-180.0, 180.0)},
                  kCountries[i % 4],
                  topo::NodeKind::kLandingPoint,
                  true});
  }
  for (std::size_t i = 0; i < cables; ++i) {
    const auto a = static_cast<topo::NodeId>(rng.uniform_below(nodes));
    auto b = static_cast<topo::NodeId>(rng.uniform_below(nodes));
    if (b == a) b = (b + 1) % nodes;
    topo::Cable cable;
    cable.name = "c" + std::to_string(i);
    cable.segments = {{a, b, rng.uniform(40.0, 4000.0)}};
    net.add_cable(std::move(cable));
  }
  return net;
}

TEST_F(PipelineTest, ConnectivityObserverMatchesRunTrialsBitForBit) {
  const gic::UniformFailureModel model(0.3);
  TrialConfig cfg;
  cfg.threads = 1;
  const FailureSimulator simulator(net_, cfg);
  const AggregateResult reference = simulator.run_trials(model, 150, 9);

  TrialPipeline pipeline(simulator, model);
  ConnectivityObserver connectivity;
  pipeline.add_observer(connectivity);
  pipeline.run(150, 9);

  EXPECT_EQ(connectivity.result().trials, reference.trials);
  expect_stats_eq(connectivity.result().cables_failed_pct,
                  reference.cables_failed_pct);
  expect_stats_eq(connectivity.result().nodes_unreachable_pct,
                  reference.nodes_unreachable_pct);
}

TEST_F(PipelineTest, SupportsFractionFailsRule) {
  // The pipeline falls back to direct model sampling under kFractionFails
  // (no death-probability table exists for that rule) and still matches
  // run_trials draw for draw.
  const gic::UniformFailureModel model(0.4);
  TrialConfig cfg;
  cfg.rule = CableDeathRule::kFractionFails;
  cfg.death_fraction = 0.3;
  cfg.threads = 1;
  const FailureSimulator simulator(net_, cfg);
  const AggregateResult reference = simulator.run_trials(model, 100, 21);

  TrialPipeline pipeline(simulator, model);
  ConnectivityObserver connectivity;
  pipeline.add_observer(connectivity);
  pipeline.run(100, 21);

  expect_stats_eq(connectivity.result().cables_failed_pct,
                  reference.cables_failed_pct);
  expect_stats_eq(connectivity.result().nodes_unreachable_pct,
                  reference.nodes_unreachable_pct);
}

TEST_F(PipelineTest, AvailabilityObserverMatchesAvailabilitySweep) {
  const auto model = gic::LatitudeBandFailureModel::s1();
  const FailureSimulator simulator(net_, {});
  const services::AvailabilitySweep reference = services::availability_sweep(
      simulator, model, two_replica_service(), 100, 11, 1);

  TrialPipeline pipeline(simulator, model);
  services::AvailabilityObserver availability(net_, two_replica_service());
  pipeline.add_observer(availability);
  pipeline.run(100, 11, 1);

  EXPECT_EQ(availability.result().service, reference.service);
  EXPECT_EQ(availability.result().draws, reference.draws);
  expect_stats_eq(availability.result().read_availability,
                  reference.read_availability);
  expect_stats_eq(availability.result().write_availability,
                  reference.write_availability);
}

TEST_F(PipelineTest, ZeroTrialsYieldsEmptyResults) {
  const gic::UniformFailureModel model(0.5);
  const FailureSimulator simulator(net_, {});
  TrialPipeline pipeline(simulator, model);
  ConnectivityObserver connectivity;
  services::AvailabilityObserver availability(net_, two_replica_service());
  pipeline.add_observer(connectivity);
  pipeline.add_observer(availability);
  pipeline.run(0, 7);
  EXPECT_EQ(connectivity.result().trials, 0u);
  EXPECT_EQ(connectivity.result().cables_failed_pct.mean(), 0.0);
  EXPECT_EQ(availability.result().draws, 0u);
}

TEST_F(PipelineTest, CountryIsolationEndpointsAreExact) {
  const FailureSimulator simulator(net_, {});
  {
    // p = 1: every repeater-bearing cable dies in every trial.
    const gic::UniformFailureModel certain(1.0);
    TrialPipeline pipeline(simulator, certain);
    analysis::CountryIsolationObserver isolation(net_, {"US", "GB"});
    pipeline.add_observer(isolation);
    pipeline.run(20, 3);
    for (const analysis::CountryIsolationResult& r : isolation.results()) {
      EXPECT_EQ(r.trials, 20u);
      EXPECT_EQ(r.isolated_trials, 20u);
      EXPECT_EQ(r.surviving_cables.mean(), 0.0);
    }
  }
  {
    // p = 0: nothing ever dies.
    const gic::UniformFailureModel never(0.0);
    TrialPipeline pipeline(simulator, never);
    analysis::CountryIsolationObserver isolation(net_, {"US"});
    pipeline.add_observer(isolation);
    pipeline.run(20, 3);
    const analysis::CountryIsolationResult& us = isolation.results()[0];
    EXPECT_EQ(us.isolated_trials, 0u);
    EXPECT_EQ(us.surviving_cables.mean(),
              static_cast<double>(us.international_cable_count));
  }
}

TEST_F(PipelineTest, CountryIsolationConvergesToAnalytic) {
  const gic::UniformFailureModel model(0.5);
  const FailureSimulator simulator(net_, {});
  TrialPipeline pipeline(simulator, model);
  analysis::CountryIsolationObserver isolation(net_, {"US"});
  pipeline.add_observer(isolation);
  constexpr std::size_t kTrials = 2048;
  pipeline.run(kTrials, 17);

  const analysis::CountryIsolationResult& us = isolation.results()[0];
  const auto cables = analysis::international_cables(net_, "US");
  ASSERT_EQ(us.international_cable_count, cables.size());
  const double p_all = analysis::all_fail_probability(simulator, model, cables);
  const double e_surv = analysis::expected_survivors(simulator, model, cables);
  const double se_iso =
      std::sqrt(p_all * (1.0 - p_all) / static_cast<double>(kTrials));
  EXPECT_NEAR(us.isolation_rate(), p_all, 4.0 * se_iso + 1e-9);
  EXPECT_NEAR(us.surviving_cables.mean(), e_surv,
              4.0 * us.surviving_cables.sample_stddev() /
                      std::sqrt(static_cast<double>(kTrials)) +
                  1e-9);
}

// Property test: the full observer set produces bit-identical results for
// every thread count, over random networks and seeds.
TEST(PipelineProperty, ThreadCountBitIdentity) {
  const auto model = gic::LatitudeBandFailureModel::s1();
  for (const std::uint64_t net_seed : {1u, 2u, 3u}) {
    util::Rng net_rng(net_seed);
    const auto net = random_network(net_rng, 40, 60);
    const FailureSimulator simulator(net, {});
    TrialPipeline pipeline(simulator, model);

    ConnectivityObserver connectivity;
    services::ServiceSpec spec;
    spec.name = "svc";
    spec.replicas = {net.node(0).location, net.node(1).location,
                     net.node(2).location};
    spec.write_quorum = 2;
    services::AvailabilityObserver availability(net, spec);
    analysis::CountryIsolationObserver isolation(net, {"US", "GB", "SG"});
    const std::vector<datasets::DnsRootInstance> roots = {
        {'a', net.node(0).location, "US", geo::Continent::kNorthAmerica},
        {'b', net.node(3).location, "GB", geo::Continent::kEurope},
    };
    analysis::DnsResolutionObserver dns(net, roots, 10.0);
    pipeline.add_observer(connectivity);
    pipeline.add_observer(availability);
    pipeline.add_observer(isolation);
    pipeline.add_observer(dns);

    constexpr std::size_t kTrials = 150;  // 5 chunks
    pipeline.run(kTrials, 1000 + net_seed, 1);
    const ConnectivityObserver::Result conn_ref = connectivity.result();
    const services::AvailabilitySweep avail_ref = availability.result();
    const std::vector<analysis::CountryIsolationResult> iso_ref =
        isolation.results();
    const analysis::DnsResolutionSweep dns_ref = dns.result();

    for (const std::size_t threads : {2u, 3u, 7u, 0u}) {
      pipeline.run(kTrials, 1000 + net_seed, threads);
      expect_stats_eq(connectivity.result().cables_failed_pct,
                      conn_ref.cables_failed_pct);
      expect_stats_eq(connectivity.result().nodes_unreachable_pct,
                      conn_ref.nodes_unreachable_pct);
      expect_stats_eq(connectivity.result().largest_component_pct,
                      conn_ref.largest_component_pct);
      expect_stats_eq(availability.result().read_availability,
                      avail_ref.read_availability);
      expect_stats_eq(availability.result().write_availability,
                      avail_ref.write_availability);
      ASSERT_EQ(isolation.results().size(), iso_ref.size());
      for (std::size_t i = 0; i < iso_ref.size(); ++i) {
        EXPECT_EQ(isolation.results()[i].isolated_trials,
                  iso_ref[i].isolated_trials);
        expect_stats_eq(isolation.results()[i].surviving_cables,
                        iso_ref[i].surviving_cables);
      }
      expect_stats_eq(dns.result().resolution_availability,
                      dns_ref.resolution_availability);
      expect_stats_eq(dns.result().mean_letters_reachable,
                      dns_ref.mean_letters_reachable);
      EXPECT_EQ(dns.result().degraded_trials, dns_ref.degraded_trials);
      EXPECT_EQ(dns.result().heavy_loss_trials, dns_ref.heavy_loss_trials);
      EXPECT_EQ(dns.result().joint_trials, dns_ref.joint_trials);
    }
  }
}

// Records (trial, failure-set fingerprint) pairs per chunk slot — used to
// assert every observer on a pipeline sees the same per-trial failure sets.
class FingerprintObserver final : public TrialObserver {
 public:
  bool needs_components() const override { return false; }
  void begin_run(const TrialPipeline&, std::size_t, std::size_t chunks) override {
    chunks_.assign(chunks, {});
    recorded_.clear();
  }
  void observe(const TrialView& view, std::size_t, std::size_t chunk) override {
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t c = 0; c < view.cable_dead->size(); ++c) {
      h = (h ^ static_cast<std::uint64_t>((*view.cable_dead)[c])) *
          1099511628211ull;
    }
    chunks_[chunk].emplace_back(view.trial, h);
  }
  void end_run() override {
    for (const auto& chunk : chunks_) {
      recorded_.insert(recorded_.end(), chunk.begin(), chunk.end());
    }
    chunks_.clear();
  }
  const std::vector<std::pair<std::size_t, std::uint64_t>>& recorded() const {
    return recorded_;
  }

 private:
  std::vector<std::vector<std::pair<std::size_t, std::uint64_t>>> chunks_;
  std::vector<std::pair<std::size_t, std::uint64_t>> recorded_;
};

// The joint-metric smoke test: two independent recorders registered on the
// same pipeline observe identical per-trial failure sets (the whole point
// of the shared draw), every trial is seen exactly once in order, and the
// DNS joint counter is consistent with its marginals.
TEST_F(PipelineTest, AllObserversSeeTheSameFailureSets) {
  const auto model = gic::LatitudeBandFailureModel::s2();
  const FailureSimulator simulator(net_, {});
  TrialPipeline pipeline(simulator, model);
  FingerprintObserver first;
  FingerprintObserver second;
  analysis::DnsResolutionObserver dns(net_, two_letters(), 10.0);
  pipeline.add_observer(first);
  pipeline.add_observer(dns);  // sandwiched between the recorders
  pipeline.add_observer(second);
  constexpr std::size_t kTrials = 100;
  pipeline.run(kTrials, 5);

  ASSERT_EQ(first.recorded().size(), kTrials);
  EXPECT_EQ(first.recorded(), second.recorded());
  for (std::size_t t = 0; t < kTrials; ++t) {
    EXPECT_EQ(first.recorded()[t].first, t);
  }
  EXPECT_EQ(dns.result().trials, kTrials);
  EXPECT_LE(dns.result().joint_trials, dns.result().degraded_trials);
  EXPECT_LE(dns.result().joint_trials, dns.result().heavy_loss_trials);
}

TEST_F(PipelineTest, FullResolutionIsNotDegraded) {
  // With p = 0 nothing ever fails, every continent resolves, and no trial
  // may count as degraded — even though the population-share weights sum
  // to 1 - O(1e-16) in floating point.
  const gic::UniformFailureModel never(0.0);
  const FailureSimulator simulator(net_, {});
  TrialPipeline pipeline(simulator, never);
  analysis::DnsResolutionObserver dns(net_, two_letters(), 10.0);
  pipeline.add_observer(dns);
  pipeline.run(30, 11);
  EXPECT_EQ(dns.result().degraded_trials, 0u);
  EXPECT_EQ(dns.result().joint_trials, 0u);
  EXPECT_NEAR(dns.result().resolution_availability.mean(), 1.0, 1e-12);
  EXPECT_FALSE(analysis::resolution_degraded(
      dns.result().resolution_availability.mean()));
}

// Merge correctness: which worker claims which chunk must not matter.
// Drive run_trial manually under two different worker assignments and
// check the reduced results match the parallel run exactly.
TEST_F(PipelineTest, ChunkMergeIsWorkerAssignmentIndependent) {
  const auto model = gic::LatitudeBandFailureModel::s1();
  const FailureSimulator simulator(net_, {});
  TrialPipeline pipeline(simulator, model);
  ConnectivityObserver connectivity;
  services::AvailabilityObserver availability(net_, two_replica_service());
  pipeline.add_observer(connectivity);
  pipeline.add_observer(availability);

  constexpr std::size_t kTrials = 150;
  constexpr std::uint64_t kSeed = 23;
  pipeline.run(kTrials, kSeed);
  const ConnectivityObserver::Result conn_ref = connectivity.result();
  const services::AvailabilitySweep avail_ref = availability.result();

  const std::size_t chunks = TrialPipeline::chunk_count(kTrials);
  const util::Rng base(kSeed);
  // Scrambled assignment: chunk c handled by worker (c * 2 + 1) % 3, chunks
  // visited in descending order.
  connectivity.begin_run(pipeline, 3, chunks);
  availability.begin_run(pipeline, 3, chunks);
  std::vector<PipelineScratch> scratch(3);
  for (std::size_t chunk = chunks; chunk-- > 0;) {
    const std::size_t worker = (chunk * 2 + 1) % 3;
    const std::size_t begin = chunk * TrialPipeline::kTrialChunk;
    const std::size_t end =
        std::min(begin + TrialPipeline::kTrialChunk, kTrials);
    for (std::size_t t = begin; t < end; ++t) {
      pipeline.run_trial(t, base, scratch[worker], worker, chunk);
    }
  }
  connectivity.end_run();
  availability.end_run();

  expect_stats_eq(connectivity.result().cables_failed_pct,
                  conn_ref.cables_failed_pct);
  expect_stats_eq(connectivity.result().nodes_unreachable_pct,
                  conn_ref.nodes_unreachable_pct);
  expect_stats_eq(connectivity.result().largest_component_pct,
                  conn_ref.largest_component_pct);
  expect_stats_eq(availability.result().read_availability,
                  avail_ref.read_availability);
  expect_stats_eq(availability.result().write_availability,
                  avail_ref.write_availability);
}

TEST_F(PipelineTest, SubstreamsAreObserverIndependent) {
  // Two observers drawing from different substream keys of the same trial
  // rng get reproducible, distinct streams regardless of observer order.
  const gic::UniformFailureModel model(0.2);
  const FailureSimulator simulator(net_, {});

  class SubstreamRecorder final : public TrialObserver {
   public:
    explicit SubstreamRecorder(std::uint64_t key) : key_(key) {}
    bool needs_components() const override { return false; }
    void begin_run(const TrialPipeline&, std::size_t,
                   std::size_t chunks) override {
      chunks_.assign(chunks, {});
      values_.clear();
    }
    void observe(const TrialView& view, std::size_t, std::size_t chunk) override {
      util::Rng sub = view.substream(key_);
      chunks_[chunk].push_back(sub.uniform());
    }
    void end_run() override {
      for (const auto& c : chunks_) {
        values_.insert(values_.end(), c.begin(), c.end());
      }
    }
    const std::vector<double>& values() const { return values_; }

   private:
    std::uint64_t key_;
    std::vector<std::vector<double>> chunks_;
    std::vector<double> values_;
  };

  TrialPipeline pipeline(simulator, model);
  SubstreamRecorder a_first(1);
  SubstreamRecorder b_first(2);
  pipeline.add_observer(a_first);
  pipeline.add_observer(b_first);
  pipeline.run(40, 3);
  const std::vector<double> a_vals = a_first.values();
  const std::vector<double> b_vals = b_first.values();
  EXPECT_NE(a_vals, b_vals);

  // Same keys, reversed registration order: identical values — observers
  // cannot perturb each other's randomness.
  TrialPipeline reversed(simulator, model);
  SubstreamRecorder b_again(2);
  SubstreamRecorder a_again(1);
  reversed.add_observer(b_again);
  reversed.add_observer(a_again);
  reversed.run(40, 3);
  EXPECT_EQ(a_again.values(), a_vals);
  EXPECT_EQ(b_again.values(), b_vals);
}

TEST_F(PipelineTest, ChunkCheckpointAfterEndRunThrowsStructuredError) {
  // end_run() releases the per-chunk accumulator slots; a later
  // save_chunk/load_chunk is a lifecycle violation and must surface as a
  // structured util::Error naming the observer and the valid window — not
  // as std::out_of_range from an .at() on the cleared vector.
  const gic::UniformFailureModel model(0.3);
  const FailureSimulator simulator(net_, {});
  TrialPipeline pipeline(simulator, model);
  ConnectivityObserver connectivity;
  services::AvailabilityObserver availability(net_, two_replica_service());
  analysis::DnsResolutionObserver dns(net_, two_letters());
  analysis::CountryIsolationObserver country(net_, {"US", "PT"});
  pipeline.add_observer(connectivity);
  pipeline.add_observer(availability);
  pipeline.add_observer(dns);
  pipeline.add_observer(country);
  pipeline.run(40, 3);

  util::ByteWriter sink;
  try {
    connectivity.save_chunk(0, sink);
    FAIL() << "save_chunk after end_run was accepted";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::kInvalidArgument);
    const std::string what = e.what();
    EXPECT_NE(what.find("ConnectivityObserver"), std::string::npos) << what;
    EXPECT_NE(what.find("begin_run"), std::string::npos) << what;
  }
  EXPECT_THROW(availability.save_chunk(0, sink), util::Error);
  EXPECT_THROW(dns.save_chunk(0, sink), util::Error);
  EXPECT_THROW(country.save_chunk(0, sink), util::Error);

  util::ByteReader reader("");
  EXPECT_THROW(connectivity.load_chunk(0, reader), util::Error);
  EXPECT_THROW(availability.load_chunk(0, reader), util::Error);
  EXPECT_THROW(dns.load_chunk(0, reader), util::Error);
  EXPECT_THROW(country.load_chunk(0, reader), util::Error);
}

TEST_F(PipelineTest, ChunkCheckpointRejectsOutOfRangeChunk) {
  const gic::UniformFailureModel model(0.3);
  const FailureSimulator simulator(net_, {});
  TrialPipeline pipeline(simulator, model);
  ConnectivityObserver connectivity;
  connectivity.begin_run(pipeline, 1, 3);

  // In-range chunks serialize fine (even before any trial was observed)...
  util::ByteWriter ok;
  EXPECT_NO_THROW(connectivity.save_chunk(2, ok));
  // ...but an index beyond the slots allocated by begin_run is rejected
  // with the offending chunk in the message.
  util::ByteWriter bad;
  try {
    connectivity.save_chunk(3, bad);
    FAIL() << "out-of-range chunk was accepted";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::kInvalidArgument);
    const std::string what = e.what();
    EXPECT_NE(what.find("chunk 3"), std::string::npos) << what;
  }
  connectivity.end_run();
}

}  // namespace
}  // namespace solarnet::sim
