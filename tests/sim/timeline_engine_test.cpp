#include "sim/timeline_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/components.h"
#include "topology/network.h"
#include "util/rng.h"

namespace solarnet::sim {
namespace {

// Same random-network generator as sweep_test / incremental_test.
topo::InfrastructureNetwork random_network(util::Rng& rng, std::size_t nodes,
                                           std::size_t cables) {
  topo::InfrastructureNetwork net("random");
  for (std::size_t i = 0; i < nodes; ++i) {
    net.add_node({"n" + std::to_string(i),
                  {rng.uniform(-70.0, 70.0), rng.uniform(-180.0, 180.0)},
                  "",
                  topo::NodeKind::kLandingPoint,
                  true});
  }
  for (std::size_t i = 0; i < cables; ++i) {
    const auto a = static_cast<topo::NodeId>(rng.uniform_below(nodes));
    auto b = static_cast<topo::NodeId>(rng.uniform_below(nodes));
    if (b == a) b = (b + 1) % nodes;
    topo::Cable cable;
    cable.name = "c" + std::to_string(i);
    cable.segments = {{a, b, rng.uniform(40.0, 4000.0)}};
    net.add_cable(std::move(cable));
  }
  return net;
}

DeathProbabilityTable uniform_table(const topo::InfrastructureNetwork& net,
                                    double p) {
  DeathProbabilityTable table;
  table.probability.assign(net.cable_count(), p);
  return table;
}

TimelineConfig small_config() {
  TimelineConfig config = TimelineConfig::from_profile({}, 12.0);
  config.repair_steps = 6;
  config.repair_step_hours = 10.0 * 24.0;
  return config;
}

class TimelineEngineTest : public ::testing::Test {
 protected:
  TimelineEngineTest() : rng_(404), net_(random_network(rng_, 12, 24)) {}

  util::Rng rng_;
  topo::InfrastructureNetwork net_;
};

TEST_F(TimelineEngineTest, FromProfileBuildsNormalizedAxis) {
  const gic::StormPhaseProfile profile;  // 72 h total
  const TimelineConfig config = TimelineConfig::from_profile(profile, 6.0);
  ASSERT_GE(config.storm_hours.size(), 2u);
  ASSERT_EQ(config.storm_hours.size(), config.dose_share.size());
  EXPECT_EQ(config.storm_hours.front(), 0.0);
  EXPECT_EQ(config.dose_share.front(), 0.0);
  // Strictly increasing hours, non-decreasing share.
  for (std::size_t g = 1; g < config.storm_hours.size(); ++g) {
    EXPECT_GT(config.storm_hours[g], config.storm_hours[g - 1]);
    EXPECT_GE(config.dose_share[g], config.dose_share[g - 1]);
  }
  // The last step lands exactly on total_hours with share exactly 1.0 —
  // the normalization the engine's validation requires.
  EXPECT_EQ(config.storm_hours.back(), profile.total_hours);
  EXPECT_EQ(config.dose_share.back(), 1.0);
}

TEST_F(TimelineEngineTest, FromProfileRejectsBadArguments) {
  EXPECT_THROW(TimelineConfig::from_profile({}, 0.0), std::invalid_argument);
  EXPECT_THROW(TimelineConfig::from_profile({}, -1.0), std::invalid_argument);
  gic::StormPhaseProfile degenerate;
  degenerate.total_hours = 0.0;
  EXPECT_THROW(TimelineConfig::from_profile(degenerate, 1.0),
               std::invalid_argument);
}

TEST_F(TimelineEngineTest, ConstructorRejectsBadInputs) {
  const FailureSimulator sim(net_, {});

  // Wrong cable-death rule: the CRN hazard threshold models
  // any-repeater-fails only.
  TrialConfig fraction;
  fraction.rule = CableDeathRule::kFractionFails;
  const FailureSimulator bad_rule(net_, fraction);
  EXPECT_THROW(
      TimelineEngine(bad_rule, uniform_table(net_, 0.1), small_config()),
      std::invalid_argument);

  // Table size mismatch.
  DeathProbabilityTable short_table;
  short_table.probability = {0.1};
  EXPECT_THROW(TimelineEngine(sim, short_table, small_config()),
               std::invalid_argument);

  // Probability outside [0, 1] (NaN included — !(p >= 0 && p <= 1)).
  EXPECT_THROW(TimelineEngine(sim, uniform_table(net_, 1.5), small_config()),
               std::invalid_argument);
  EXPECT_THROW(TimelineEngine(sim, uniform_table(net_, -0.1), small_config()),
               std::invalid_argument);
  EXPECT_THROW(
      TimelineEngine(sim,
                     uniform_table(net_, std::numeric_limits<double>::quiet_NaN()),
                     small_config()),
      std::invalid_argument);

  // Empty storm axis.
  TimelineConfig empty;
  EXPECT_THROW(TimelineEngine(sim, uniform_table(net_, 0.1), empty),
               std::invalid_argument);

  // Non-increasing hours.
  TimelineConfig flat = TimelineConfig::from_dose_schedule({0.0, 1.0, 1.0},
                                                           {0.0, 0.5, 1.0});
  EXPECT_THROW(TimelineEngine(sim, uniform_table(net_, 0.1), flat),
               std::invalid_argument);

  // dose_share size mismatch.
  TimelineConfig lopsided =
      TimelineConfig::from_dose_schedule({0.0, 1.0, 2.0}, {0.0, 1.0});
  EXPECT_THROW(TimelineEngine(sim, uniform_table(net_, 0.1), lopsided),
               std::invalid_argument);

  // Decreasing share.
  TimelineConfig decreasing = TimelineConfig::from_dose_schedule(
      {0.0, 1.0, 2.0}, {0.0, 0.7, 1.0});
  decreasing.dose_share[1] = 0.7;
  decreasing.dose_share[2] = 0.6;
  EXPECT_THROW(TimelineEngine(sim, uniform_table(net_, 0.1), decreasing),
               std::invalid_argument);

  // Share not ending at exactly 1.0.
  TimelineConfig unnormalized = TimelineConfig::from_dose_schedule(
      {0.0, 1.0, 2.0}, {0.0, 0.5, 0.999999});
  EXPECT_THROW(TimelineEngine(sim, uniform_table(net_, 0.1), unnormalized),
               std::invalid_argument);

  // Share outside [0, 1].
  TimelineConfig overdose = TimelineConfig::from_dose_schedule(
      {0.0, 1.0, 2.0}, {0.0, 1.5, 1.0});
  EXPECT_THROW(TimelineEngine(sim, uniform_table(net_, 0.1), overdose),
               std::invalid_argument);

  // Repair axis: zero steps, non-positive / non-finite step width.
  TimelineConfig no_repairs = small_config();
  no_repairs.repair_steps = 0;
  EXPECT_THROW(TimelineEngine(sim, uniform_table(net_, 0.1), no_repairs),
               std::invalid_argument);
  TimelineConfig bad_width = small_config();
  bad_width.repair_step_hours = 0.0;
  EXPECT_THROW(TimelineEngine(sim, uniform_table(net_, 0.1), bad_width),
               std::invalid_argument);
  bad_width.repair_step_hours = std::numeric_limits<double>::infinity();
  EXPECT_THROW(TimelineEngine(sim, uniform_table(net_, 0.1), bad_width),
               std::invalid_argument);
}

TEST_F(TimelineEngineTest, UnifiedStepAxisAppendsRepairGrid) {
  const FailureSimulator sim(net_, {});
  const TimelineConfig config = small_config();
  const TimelineEngine engine(sim, uniform_table(net_, 0.3), config);
  EXPECT_EQ(engine.storm_step_count(), config.storm_hours.size());
  EXPECT_EQ(engine.repair_step_count(), config.repair_steps);
  ASSERT_EQ(engine.step_count(),
            config.storm_hours.size() + config.repair_steps);
  for (std::size_t g = 0; g < config.storm_hours.size(); ++g) {
    EXPECT_EQ(engine.step_hour(g), config.storm_hours[g]);
  }
  const double storm_end = config.storm_hours.back();
  EXPECT_EQ(engine.storm_end_hour(), storm_end);
  for (std::size_t r = 0; r < config.repair_steps; ++r) {
    EXPECT_EQ(engine.step_hour(config.storm_hours.size() + r),
              storm_end + static_cast<double>(r + 1) *
                              config.repair_step_hours);
  }
  EXPECT_GT(engine.baseline_largest_pct(), 0.0);
  EXPECT_LE(engine.baseline_largest_pct(), 100.0);
}

// Replays the engine's documented draw order: one uniform per
// repeater-bearing cable in ascending cable order from child stream
// `trial`. The end of the storm must land exactly on the end-state CRN
// draw: fail_step < storm_steps ⟺ u < p.
TEST_F(TimelineEngineTest, StormEndReproducesEndStateCrnDraw) {
  const FailureSimulator sim(net_, {});
  const double p = 0.55;
  const TimelineEngine engine(sim, uniform_table(net_, p), small_config());
  const std::size_t storm_steps = engine.storm_step_count();
  TimelineScratch scratch;
  const util::Rng base(909);
  for (std::size_t trial = 0; trial < 16; ++trial) {
    util::Rng rng = base.split(trial);
    engine.playback(rng, scratch);
    util::Rng replay = base.split(trial);
    for (topo::CableId c = 0; c < net_.cable_count(); ++c) {
      if (sim.cable_repeater_count(c) == 0) {
        // Repeaterless cables never draw and never fail.
        EXPECT_EQ(scratch.fail_step[c], storm_steps);
        continue;
      }
      const double u = replay.uniform();
      EXPECT_EQ(scratch.fail_step[c] < storm_steps, u < p)
          << "trial " << trial << " cable " << c;
    }
  }
}

// Per-step cross-check against a naive full recompute: at storm step g the
// dead set is {c : fail_step[c] <= g}; at repair step r a cable is dead iff
// it failed and its restoration hour is still in the future. Percentages
// are compared bit-for-bit (identical formulas over identical integers).
TEST_F(TimelineEngineTest, PlaybackMatchesNaivePerStepRecompute) {
  const FailureSimulator sim(net_, {});
  const TimelineEngine engine(sim, uniform_table(net_, 0.6), small_config());
  const std::size_t cables = net_.cable_count();
  const std::size_t storm_steps = engine.storm_step_count();
  const std::size_t total_steps = engine.step_count();
  const std::size_t connected = net_.connected_node_count();
  TimelineScratch scratch;
  const util::Rng base(31337);
  for (std::size_t trial = 0; trial < 8; ++trial) {
    util::Rng rng = base.split(trial);
    engine.playback(rng, scratch);
    for (std::size_t i = 0; i < total_steps; ++i) {
      std::vector<bool> dead(cables, false);
      std::size_t dead_count = 0;
      for (std::size_t c = 0; c < cables; ++c) {
        if (scratch.fail_step[c] >= storm_steps) continue;
        const bool is_dead =
            i < storm_steps
                ? scratch.fail_step[c] <= i
                : engine.step_hour(i) < scratch.restore_hour[c];
        if (is_dead) {
          dead[c] = true;
          ++dead_count;
        }
      }
      const double dead_pct =
          cables > 0 ? 100.0 * static_cast<double>(dead_count) /
                           static_cast<double>(cables)
                     : 0.0;
      EXPECT_EQ(scratch.cables_dead_pct[i], dead_pct)
          << "trial " << trial << " step " << i;
      const std::size_t unreachable = net_.unreachable_nodes(dead).size();
      const double unreachable_pct =
          connected > 0 ? 100.0 * static_cast<double>(unreachable) /
                              static_cast<double>(connected)
                        : 0.0;
      EXPECT_EQ(scratch.nodes_unreachable_pct[i], unreachable_pct)
          << "trial " << trial << " step " << i;
      const auto components = graph::connected_components(
          net_.graph(), net_.mask_for_failures(dead));
      const std::size_t largest = std::max<std::size_t>(
          components.largest_component_size(), net_.node_count() > 0 ? 1 : 0);
      const double largest_pct =
          connected > 0 ? 100.0 * static_cast<double>(largest) /
                              static_cast<double>(connected)
                        : 0.0;
      EXPECT_EQ(scratch.largest_component_pct[i], largest_pct)
          << "trial " << trial << " step " << i;
    }
  }
}

// Failures accumulate during the storm and heal during repair — the dead
// fraction must be monotone on both half-axes of every trial.
TEST_F(TimelineEngineTest, DeadFractionIsMonotonePerPhase)
{
  const FailureSimulator sim(net_, {});
  const TimelineEngine engine(sim, uniform_table(net_, 0.7), small_config());
  const std::size_t storm_steps = engine.storm_step_count();
  TimelineScratch scratch;
  const util::Rng base(5150);
  for (std::size_t trial = 0; trial < 12; ++trial) {
    util::Rng rng = base.split(trial);
    engine.playback(rng, scratch);
    for (std::size_t g = 1; g < storm_steps; ++g) {
      EXPECT_GE(scratch.cables_dead_pct[g], scratch.cables_dead_pct[g - 1]);
    }
    for (std::size_t i = storm_steps + 1; i < engine.step_count(); ++i) {
      EXPECT_LE(scratch.cables_dead_pct[i], scratch.cables_dead_pct[i - 1]);
    }
  }
}

// p = 1 extreme: every mortal cable's threshold is +0.0, so it dies at the
// first step with positive dose share; repeaterless cables never fail.
TEST_F(TimelineEngineTest, CertainDeathFailsAtFirstPositiveDose) {
  const FailureSimulator sim(net_, {});
  const TimelineConfig config = small_config();
  const TimelineEngine engine(sim, uniform_table(net_, 1.0), config);
  std::uint32_t first_positive = 0;
  while (first_positive < config.dose_share.size() &&
         !(config.dose_share[first_positive] > 0.0)) {
    ++first_positive;
  }
  ASSERT_LT(first_positive, config.dose_share.size());
  TimelineScratch scratch;
  util::Rng rng = util::Rng(1).split(0);
  engine.playback(rng, scratch);
  for (topo::CableId c = 0; c < net_.cable_count(); ++c) {
    if (sim.cable_repeater_count(c) > 0) {
      EXPECT_EQ(scratch.fail_step[c], first_positive) << "cable " << c;
    } else {
      EXPECT_EQ(scratch.fail_step[c], engine.storm_step_count());
    }
  }
}

// p = 0: nothing ever fails, every step shows the intact network.
TEST_F(TimelineEngineTest, ZeroProbabilityKeepsNetworkIntact) {
  const FailureSimulator sim(net_, {});
  TimelineEngine engine(sim, uniform_table(net_, 0.0), small_config());
  TimelineConnectivityObserver observer(50.0);
  engine.add_observer(observer);
  engine.run(40, 99, 2);
  const TimelineConnectivityResult& result = observer.result();
  EXPECT_EQ(result.trials, 40u);
  EXPECT_EQ(result.partitioned_trials, 0u);
  for (const TimelineStepStats& step : result.steps) {
    EXPECT_EQ(step.cables_dead_pct.max(), 0.0);
    EXPECT_EQ(step.nodes_unreachable_pct.max(), 0.0);
  }
  EXPECT_EQ(result.peak_nodes_unreachable_pct.max(), 0.0);
}

// The determinism contract: observer aggregates are bit-identical for every
// thread count (fixed 32-trial chunks merged in ascending order).
TEST_F(TimelineEngineTest, ObserverAggregatesAreThreadCountInvariant) {
  const FailureSimulator sim(net_, {});
  TimelineEngine engine(sim, uniform_table(net_, 0.5), small_config());
  TimelineConnectivityObserver observer(50.0);
  engine.add_observer(observer);

  const std::size_t trials = 101;  // deliberately not a chunk multiple
  std::vector<TimelineConnectivityResult> results;
  for (const std::size_t threads : {1u, 2u, 4u, 0u}) {
    engine.run(trials, 4242, threads);
    results.push_back(observer.result());
  }
  const TimelineConnectivityResult& ref = results.front();
  EXPECT_EQ(ref.trials, trials);
  for (std::size_t i = 1; i < results.size(); ++i) {
    const TimelineConnectivityResult& r = results[i];
    EXPECT_EQ(r.trials, ref.trials);
    EXPECT_EQ(r.partitioned_trials, ref.partitioned_trials);
    EXPECT_EQ(r.time_to_partition_hours.count(),
              ref.time_to_partition_hours.count());
    EXPECT_EQ(r.time_to_partition_hours.mean(),
              ref.time_to_partition_hours.mean());
    EXPECT_EQ(r.peak_nodes_unreachable_pct.mean(),
              ref.peak_nodes_unreachable_pct.mean());
    EXPECT_EQ(r.peak_nodes_unreachable_pct.sample_stddev(),
              ref.peak_nodes_unreachable_pct.sample_stddev());
    ASSERT_EQ(r.steps.size(), ref.steps.size());
    for (std::size_t s = 0; s < ref.steps.size(); ++s) {
      EXPECT_EQ(r.steps[s].hour, ref.steps[s].hour);
      EXPECT_EQ(r.steps[s].cables_dead_pct.mean(),
                ref.steps[s].cables_dead_pct.mean());
      EXPECT_EQ(r.steps[s].cables_dead_pct.sample_stddev(),
                ref.steps[s].cables_dead_pct.sample_stddev());
      EXPECT_EQ(r.steps[s].nodes_unreachable_pct.mean(),
                ref.steps[s].nodes_unreachable_pct.mean());
      EXPECT_EQ(r.steps[s].largest_component_pct.mean(),
                ref.steps[s].largest_component_pct.mean());
    }
  }
}

TEST_F(TimelineEngineTest, ZeroTrialsStillProducesSizedResult) {
  const FailureSimulator sim(net_, {});
  TimelineEngine engine(sim, uniform_table(net_, 0.5), small_config());
  TimelineConnectivityObserver observer(50.0);
  engine.add_observer(observer);
  engine.run(0, 7);
  const TimelineConnectivityResult& result = observer.result();
  EXPECT_EQ(result.trials, 0u);
  EXPECT_EQ(result.partitioned_trials, 0u);
  ASSERT_EQ(result.steps.size(), engine.step_count());
  for (std::size_t i = 0; i < result.steps.size(); ++i) {
    EXPECT_EQ(result.steps[i].hour, engine.step_hour(i));
    EXPECT_TRUE(result.steps[i].cables_dead_pct.empty());
  }
}

TEST_F(TimelineEngineTest, ObserverRejectsBadThreshold) {
  EXPECT_THROW(TimelineConnectivityObserver(-1.0), std::invalid_argument);
  EXPECT_THROW(TimelineConnectivityObserver(101.0), std::invalid_argument);
}

}  // namespace
}  // namespace solarnet::sim
