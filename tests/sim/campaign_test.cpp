#include "sim/campaign.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/country.h"
#include "analysis/dns_resolution.h"
#include "gic/failure_model.h"
#include "services/availability.h"
#include "util/checkpoint.h"
#include "util/fault_injection.h"
#include "util/parallel.h"

namespace solarnet::sim {
namespace {

void expect_stats_eq(const util::RunningStats& a, const util::RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.sample_stddev(), b.sample_stddev());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

// The pipeline_test fixture network: NY (US) -- Bude (GB) -- Singapore (SG)
// plus a Lisbon (PT) spur.
class CampaignTest : public ::testing::Test {
 protected:
  CampaignTest() : net_("campaign"), model_(gic::LatitudeBandFailureModel::s1()) {
    add_node("NY", {40.7, -74.0}, "US");
    add_node("Bude", {50.8, -4.5}, "GB");
    add_node("Singapore", {1.35, 103.8}, "SG");
    add_node("Lisbon", {38.7, -9.1}, "PT");
    add_cable("atl", 0, 1, 6000.0);
    add_cable("asia", 1, 2, 11000.0);
    add_cable("spur", 0, 3, 5500.0);
    checkpoint_path_ =
        (std::filesystem::temp_directory_path() /
         ("solarnet_campaign_test_" +
          std::string(::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name()) +
          ".ck"))
            .string();
    std::filesystem::remove(checkpoint_path_);
    util::FaultInjector::instance().disarm_all();
  }

  ~CampaignTest() override {
    util::FaultInjector::instance().disarm_all();
    std::filesystem::remove(checkpoint_path_);
  }

  void add_node(const char* name, geo::GeoPoint p, const char* cc) {
    net_.add_node({name, p, cc, topo::NodeKind::kLandingPoint, true});
  }
  void add_cable(const char* name, topo::NodeId a, topo::NodeId b, double km) {
    topo::Cable c;
    c.name = name;
    c.segments = {{a, b, km}};
    net_.add_cable(std::move(c));
  }

  services::ServiceSpec service_spec() const {
    services::ServiceSpec spec;
    spec.name = "svc";
    spec.replicas = {{40.7, -74.0}, {1.35, 103.8}};
    spec.write_quorum = 2;
    return spec;
  }
  std::vector<datasets::DnsRootInstance> dns_roots() const {
    return {
        {'a', {40.7, -74.0}, "US", geo::Continent::kNorthAmerica},
        {'b', {1.35, 103.8}, "SG", geo::Continent::kAsia},
    };
  }

  // The full checkpointable observer set plus a runner, built fresh for
  // each run — resuming always starts from brand-new observers.
  struct Bundle {
    TrialPipeline pipeline;
    ConnectivityObserver connectivity;
    services::AvailabilityObserver availability;
    analysis::DnsResolutionObserver dns;
    analysis::CountryIsolationObserver isolation;
    CampaignRunner campaign;

    Bundle(const FailureSimulator& simulator,
           const gic::RepeaterFailureModel& model,
           const topo::InfrastructureNetwork& net,
           const services::ServiceSpec& spec,
           const std::vector<datasets::DnsRootInstance>& roots)
        : pipeline(simulator, model),
          availability(net, spec),
          dns(net, roots, 10.0),
          isolation(net, {"US", "GB"}),
          campaign(pipeline) {
      campaign.add_observer(connectivity);
      campaign.add_observer(availability);
      campaign.add_observer(dns);
      campaign.add_observer(isolation);
    }
  };

  Bundle make_bundle(const FailureSimulator& simulator) const {
    return Bundle(simulator, model_, net_, service_spec(), dns_roots());
  }

  static void expect_bundles_eq(const Bundle& got, const Bundle& want) {
    expect_stats_eq(got.connectivity.result().cables_failed_pct,
                    want.connectivity.result().cables_failed_pct);
    expect_stats_eq(got.connectivity.result().nodes_unreachable_pct,
                    want.connectivity.result().nodes_unreachable_pct);
    expect_stats_eq(got.connectivity.result().largest_component_pct,
                    want.connectivity.result().largest_component_pct);
    expect_stats_eq(got.availability.result().read_availability,
                    want.availability.result().read_availability);
    expect_stats_eq(got.availability.result().write_availability,
                    want.availability.result().write_availability);
    expect_stats_eq(got.dns.result().resolution_availability,
                    want.dns.result().resolution_availability);
    expect_stats_eq(got.dns.result().mean_letters_reachable,
                    want.dns.result().mean_letters_reachable);
    EXPECT_EQ(got.dns.result().degraded_trials,
              want.dns.result().degraded_trials);
    EXPECT_EQ(got.dns.result().heavy_loss_trials,
              want.dns.result().heavy_loss_trials);
    EXPECT_EQ(got.dns.result().joint_trials, want.dns.result().joint_trials);
    ASSERT_EQ(got.isolation.results().size(), want.isolation.results().size());
    for (std::size_t i = 0; i < want.isolation.results().size(); ++i) {
      EXPECT_EQ(got.isolation.results()[i].isolated_trials,
                want.isolation.results()[i].isolated_trials);
      expect_stats_eq(got.isolation.results()[i].surviving_cables,
                      want.isolation.results()[i].surviving_cables);
    }
  }

  CampaignOptions options(std::size_t trials, std::uint64_t seed,
                          std::size_t threads,
                          bool with_checkpoint = true) const {
    CampaignOptions o;
    o.trials = trials;
    o.seed = seed;
    o.threads = threads;
    if (with_checkpoint) o.checkpoint_path = checkpoint_path_;
    o.checkpoint_every_chunks = 2;
    return o;
  }

  topo::InfrastructureNetwork net_;
  gic::LatitudeBandFailureModel model_;
  std::string checkpoint_path_;
};

// 150 trials = 5 chunks of 32; checkpoint_every_chunks = 2 gives segment
// boundaries after chunks 2 and 4.
constexpr std::size_t kTrials = 150;
constexpr std::uint64_t kSeed = 9;

TEST_F(CampaignTest, MatchesPlainPipelineBitForBit) {
  const FailureSimulator simulator(net_, {});

  Bundle reference = make_bundle(simulator);
  reference.pipeline.run(kTrials, kSeed);

  Bundle campaign = make_bundle(simulator);
  const CampaignReport report =
      campaign.campaign.run(options(kTrials, kSeed, 0, false));

  EXPECT_EQ(report.trials, kTrials);
  EXPECT_EQ(report.chunks, 5u);
  EXPECT_EQ(report.chunks_executed, 5u);
  EXPECT_EQ(report.chunks_resumed, 0u);
  EXPECT_EQ(report.checkpoints_written, 0u);
  EXPECT_FALSE(report.resumed);
  EXPECT_TRUE(report.resume_status.is_ok());
  expect_bundles_eq(campaign, reference);
}

TEST_F(CampaignTest, CheckpointedRunMatchesAndCleansUp) {
  const FailureSimulator simulator(net_, {});

  Bundle reference = make_bundle(simulator);
  reference.pipeline.run(kTrials, kSeed);

  Bundle campaign = make_bundle(simulator);
  const CampaignReport report =
      campaign.campaign.run(options(kTrials, kSeed, 1));

  // Intermediate checkpoints after chunks 2 and 4; the file is removed once
  // the campaign completes.
  EXPECT_EQ(report.checkpoints_written, 2u);
  EXPECT_FALSE(util::file_exists(checkpoint_path_));
  expect_bundles_eq(campaign, reference);
}

TEST_F(CampaignTest, ValidationRejectsBadOptions) {
  const FailureSimulator simulator(net_, {});
  Bundle campaign = make_bundle(simulator);

  CampaignOptions no_trials = options(0, kSeed, 1);
  EXPECT_THROW(campaign.campaign.run(no_trials), std::invalid_argument);

  CampaignOptions zero_segment = options(kTrials, kSeed, 1);
  zero_segment.checkpoint_every_chunks = 0;
  EXPECT_THROW(campaign.campaign.run(zero_segment), std::invalid_argument);

  CampaignOptions silly_threads = options(kTrials, kSeed, 1);
  silly_threads.threads = kMaxReasonableThreads + 1;
  EXPECT_THROW(campaign.campaign.run(silly_threads), std::invalid_argument);

  TrialPipeline bare(simulator, model_);
  CampaignRunner no_observers(bare);
  EXPECT_THROW(no_observers.run(options(kTrials, kSeed, 1)),
               std::invalid_argument);
}

TEST_F(CampaignTest, InterruptedCampaignResumesBitIdentically) {
  const FailureSimulator simulator(net_, {});

  Bundle reference = make_bundle(simulator);
  reference.pipeline.run(kTrials, kSeed);

  // Fault the first chunk of the second segment (probes 1-2 are segment
  // one): the campaign dies owning a checkpoint for exactly chunks [0, 2) —
  // whole segments only, never a partial chunk.
  {
    Bundle doomed = make_bundle(simulator);
    const util::ScopedFault fault(util::FaultSite::kWorkerTask,
                                  std::uint64_t{3});
    try {
      doomed.campaign.run(options(kTrials, kSeed, 1));
      FAIL() << "expected injected fault";
    } catch (const util::Error& e) {
      EXPECT_EQ(e.code(), util::ErrorCode::kFaultInjected);
    }
  }
  ASSERT_TRUE(util::file_exists(checkpoint_path_));

  Bundle resumed = make_bundle(simulator);
  const CampaignReport report =
      resumed.campaign.run(options(kTrials, kSeed, 1));
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.chunks_resumed, 2u);
  EXPECT_EQ(report.chunks_executed, 3u);
  EXPECT_TRUE(report.resume_status.is_ok());
  expect_bundles_eq(resumed, reference);
  // Successful completion removes the checkpoint.
  EXPECT_FALSE(util::file_exists(checkpoint_path_));
}

TEST_F(CampaignTest, MultiWorkerInterruptIsAParallelError) {
  const FailureSimulator simulator(net_, {});
  Bundle doomed = make_bundle(simulator);
  const util::ScopedFault fault(util::FaultSite::kWorkerTask,
                                std::uint64_t{1});
  try {
    doomed.campaign.run(options(kTrials, kSeed, 4));
    FAIL() << "expected ParallelError";
  } catch (const util::ParallelError& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::kAborted);
    EXPECT_LE(e.tasks_completed(), e.tasks_total());
    try {
      e.rethrow_cause();
      FAIL() << "cause must rethrow";
    } catch (const util::Error& cause) {
      EXPECT_EQ(cause.code(), util::ErrorCode::kFaultInjected);
    }
  }
}

TEST_F(CampaignTest, ResumeIsThreadCountIndependent) {
  const FailureSimulator simulator(net_, {});

  Bundle reference = make_bundle(simulator);
  reference.pipeline.run(kTrials, kSeed);

  // Interrupt a single-threaded run, then resume the saved prefix under
  // several thread counts — every one must land on the same bits.
  {
    Bundle doomed = make_bundle(simulator);
    const util::ScopedFault fault(util::FaultSite::kWorkerTask,
                                  std::uint64_t{3});
    EXPECT_THROW(doomed.campaign.run(options(kTrials, kSeed, 1)),
                 util::Error);
  }
  ASSERT_TRUE(util::file_exists(checkpoint_path_));
  const std::string saved = util::read_file(checkpoint_path_);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    util::atomic_write_file(checkpoint_path_, saved);
    Bundle resumed = make_bundle(simulator);
    const CampaignReport report =
        resumed.campaign.run(options(kTrials, kSeed, threads));
    EXPECT_TRUE(report.resumed) << "threads=" << threads;
    EXPECT_EQ(report.chunks_resumed, 2u);
    expect_bundles_eq(resumed, reference);
  }
}

TEST_F(CampaignTest, CompletedCheckpointResumesWithoutExecuting) {
  const FailureSimulator simulator(net_, {});

  Bundle reference = make_bundle(simulator);
  reference.pipeline.run(kTrials, kSeed);

  CampaignOptions keep = options(kTrials, kSeed, 1);
  keep.keep_checkpoint = true;
  Bundle first = make_bundle(simulator);
  first.campaign.run(keep);
  ASSERT_TRUE(util::file_exists(checkpoint_path_));

  Bundle second = make_bundle(simulator);
  const CampaignReport report = second.campaign.run(keep);
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.chunks_resumed, 5u);
  EXPECT_EQ(report.chunks_executed, 0u);
  expect_bundles_eq(second, reference);
}

// Builds a complete checkpoint file and returns its bytes.
class CampaignCorruptionTest : public CampaignTest {
 protected:
  std::string write_full_checkpoint(const FailureSimulator& simulator) {
    CampaignOptions keep = options(kTrials, kSeed, 1);
    keep.keep_checkpoint = true;
    Bundle bundle = make_bundle(simulator);
    bundle.campaign.run(keep);
    return util::read_file(checkpoint_path_);
  }
};

TEST_F(CampaignCorruptionTest, CorruptCheckpointsRestartFreshWithRightCode) {
  const FailureSimulator simulator(net_, {});
  Bundle reference = make_bundle(simulator);
  reference.pipeline.run(kTrials, kSeed);
  const std::string clean = write_full_checkpoint(simulator);

  struct Case {
    const char* name;
    std::string contents;
    util::ErrorCode expected;
  };
  std::string bad_magic = clean;
  bad_magic[0] = 'X';
  std::string bad_version = clean;
  bad_version[4] = 2;  // u32 version, little-endian low byte
  std::string truncated = clean.substr(0, clean.size() - 6);
  std::string flipped = clean;
  flipped[24] ^= 0x01;  // inside the payload -> CRC mismatch
  const Case cases[] = {
      {"bad magic", bad_magic, util::ErrorCode::kCorrupt},
      {"bad version", bad_version, util::ErrorCode::kVersionMismatch},
      {"truncated", truncated, util::ErrorCode::kCorrupt},
      {"bit flip", flipped, util::ErrorCode::kCorrupt},
      {"tiny file", std::string("SN"), util::ErrorCode::kCorrupt},
  };

  for (const Case& c : cases) {
    util::atomic_write_file(checkpoint_path_, c.contents);
    Bundle campaign = make_bundle(simulator);
    const CampaignReport report =
        campaign.campaign.run(options(kTrials, kSeed, 1));
    // Rejected checkpoint -> fresh restart, never a wrong answer.
    EXPECT_FALSE(report.resumed) << c.name;
    EXPECT_EQ(report.chunks_executed, 5u) << c.name;
    EXPECT_EQ(report.resume_status.code(), c.expected) << c.name;
    EXPECT_NE(report.resume_status.to_string().find(checkpoint_path_),
              std::string::npos)
        << c.name;
    expect_bundles_eq(campaign, reference);
  }
}

TEST_F(CampaignCorruptionTest, MismatchedCampaignRejectsCheckpoint) {
  const FailureSimulator simulator(net_, {});
  write_full_checkpoint(simulator);

  // Same file, different seed: fingerprint mismatch, fresh run under the
  // *new* seed.
  Bundle reference = make_bundle(simulator);
  reference.pipeline.run(kTrials, kSeed + 1);

  Bundle campaign = make_bundle(simulator);
  const CampaignReport report =
      campaign.campaign.run(options(kTrials, kSeed + 1, 1));
  EXPECT_FALSE(report.resumed);
  EXPECT_EQ(report.resume_status.code(), util::ErrorCode::kMismatch);
  expect_bundles_eq(campaign, reference);
}

TEST_F(CampaignCorruptionTest, StrictResumeThrowsInsteadOfRestarting) {
  const FailureSimulator simulator(net_, {});
  std::string clean = write_full_checkpoint(simulator);
  clean[clean.size() - 1] ^= 0x10;  // break the stored CRC
  util::atomic_write_file(checkpoint_path_, clean);

  Bundle campaign = make_bundle(simulator);
  CampaignOptions strict = options(kTrials, kSeed, 1);
  strict.strict_resume = true;
  try {
    campaign.campaign.run(strict);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::kCorrupt);
  }
}

TEST_F(CampaignTest, ResumeFalseIgnoresExistingCheckpoint) {
  const FailureSimulator simulator(net_, {});
  CampaignOptions keep = options(kTrials, kSeed, 1);
  keep.keep_checkpoint = true;
  {
    Bundle first = make_bundle(simulator);
    first.campaign.run(keep);
  }
  ASSERT_TRUE(util::file_exists(checkpoint_path_));

  Bundle fresh = make_bundle(simulator);
  CampaignOptions no_resume = options(kTrials, kSeed, 1);
  no_resume.resume = false;
  const CampaignReport report = fresh.campaign.run(no_resume);
  EXPECT_FALSE(report.resumed);
  EXPECT_EQ(report.chunks_executed, 5u);
}

TEST_F(CampaignTest, CheckpointWriteFailureDegradesGracefully) {
  const FailureSimulator simulator(net_, {});

  Bundle reference = make_bundle(simulator);
  reference.pipeline.run(kTrials, kSeed);

  // First checkpoint write faults; the campaign must finish with correct
  // results anyway (only crash protection degrades).
  Bundle campaign = make_bundle(simulator);
  const util::ScopedFault fault(util::FaultSite::kCheckpointWrite,
                                std::uint64_t{1});
  const CampaignReport report =
      campaign.campaign.run(options(kTrials, kSeed, 1));
  EXPECT_EQ(report.chunks_executed, 5u);
  EXPECT_EQ(report.checkpoints_written, 1u);  // second write succeeded
  EXPECT_EQ(report.checkpoint_status.code(),
            util::ErrorCode::kFaultInjected);
  expect_bundles_eq(campaign, reference);
}

}  // namespace
}  // namespace solarnet::sim
