#include "sim/monte_carlo.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace solarnet::sim {
namespace {

// A small deterministic network:
//   long-high: 1500 km cable topping at 65N  (10 repeaters @150)
//   long-low:  1500 km cable at the equator  (10 repeaters @150)
//   short:      100 km cable                  (0 repeaters)
class SimTest : public ::testing::Test {
 protected:
  SimTest() : net_("sim") {
    const auto a = net_.add_node(
        {"A", {65.0, 0.0}, "NO", topo::NodeKind::kLandingPoint, true});
    const auto b = net_.add_node(
        {"B", {55.0, 0.0}, "NO", topo::NodeKind::kLandingPoint, true});
    const auto c = net_.add_node(
        {"C", {0.0, 0.0}, "", topo::NodeKind::kLandingPoint, true});
    const auto d = net_.add_node(
        {"D", {0.0, 13.0}, "", topo::NodeKind::kLandingPoint, true});
    const auto e = net_.add_node(
        {"E", {0.5, 13.0}, "", topo::NodeKind::kLandingPoint, true});
    topo::Cable high;
    high.name = "long-high";
    high.segments = {{a, b, 1500.0}};
    high_ = net_.add_cable(std::move(high));
    topo::Cable low;
    low.name = "long-low";
    low.segments = {{c, d, 1500.0}};
    low_ = net_.add_cable(std::move(low));
    topo::Cable shorty;
    shorty.name = "short";
    shorty.segments = {{d, e, 100.0}};
    short_ = net_.add_cable(std::move(shorty));
  }

  topo::InfrastructureNetwork net_;
  topo::CableId high_{}, low_{}, short_{};
};

TEST_F(SimTest, RepeaterLayout) {
  const FailureSimulator sim(net_, {});
  EXPECT_EQ(sim.total_repeaters(), 20u);
  EXPECT_EQ(sim.repeaterless_cables(), 1u);
  EXPECT_NEAR(sim.average_repeaters_per_cable(), 20.0 / 3.0, 1e-9);
}

TEST_F(SimTest, SpacingChangesLayout) {
  TrialConfig cfg;
  cfg.repeater_spacing_km = 50.0;
  const FailureSimulator sim(net_, cfg);
  EXPECT_EQ(sim.total_repeaters(), 30u + 30u + 2u);
  EXPECT_EQ(sim.repeaterless_cables(), 0u);
}

TEST_F(SimTest, DeathProbabilityExactForUniform) {
  const FailureSimulator sim(net_, {});
  const gic::UniformFailureModel m(0.1);
  // 10 repeaters, p=0.1: death = 1 - 0.9^10.
  EXPECT_NEAR(sim.cable_death_probability(high_, m),
              1.0 - std::pow(0.9, 10), 1e-12);
  EXPECT_DOUBLE_EQ(sim.cable_death_probability(short_, m), 0.0);
  EXPECT_THROW(sim.cable_death_probability(99, m), std::out_of_range);
}

TEST_F(SimTest, DeathProbabilityBandModel) {
  const FailureSimulator sim(net_, {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  // high cable max lat 65 -> band prob 1.0 per repeater -> certain death.
  EXPECT_DOUBLE_EQ(sim.cable_death_probability(high_, s1), 1.0);
  // low cable max lat 0.5 -> 0.01 per repeater over 10 repeaters.
  EXPECT_NEAR(sim.cable_death_probability(low_, s1),
              1.0 - std::pow(0.99, 10), 1e-12);
}

TEST_F(SimTest, RepeaterlessCablesNeverDie) {
  const FailureSimulator sim(net_, {});
  const gic::UniformFailureModel certain(1.0);
  util::Rng rng(1);
  const auto dead = sim.sample_cable_failures(certain, rng);
  EXPECT_TRUE(dead[high_]);
  EXPECT_TRUE(dead[low_]);
  EXPECT_FALSE(dead[short_]);
}

TEST_F(SimTest, ZeroProbabilityKillsNothing) {
  const FailureSimulator sim(net_, {});
  const gic::UniformFailureModel never(0.0);
  util::Rng rng(1);
  const auto dead = sim.sample_cable_failures(never, rng);
  for (bool d : dead) EXPECT_FALSE(d);
}

TEST_F(SimTest, TrialCountsNodesPerPaperDefinition) {
  const FailureSimulator sim(net_, {});
  const gic::UniformFailureModel certain(1.0);
  util::Rng rng(1);
  const TrialResult r = sim.run_trial(certain, rng);
  EXPECT_EQ(r.cables_failed, 2u);
  // A and B lose their only cable; C loses its only cable; D and E keep
  // the short one.
  EXPECT_EQ(r.nodes_unreachable, 3u);
  EXPECT_NEAR(r.cables_failed_pct, 100.0 * 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.nodes_unreachable_pct, 100.0 * 3.0 / 5.0, 1e-9);
}

TEST_F(SimTest, TrialFrequencyMatchesDeathProbability) {
  const FailureSimulator sim(net_, {});
  const gic::UniformFailureModel m(0.05);
  const double expected = sim.cable_death_probability(high_, m);
  util::Rng rng(42);
  int deaths = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    deaths += sim.sample_cable_failures(m, rng)[high_] ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(deaths) / kN, expected, 0.01);
}

TEST_F(SimTest, AggregateReproducibleAcrossRuns) {
  const FailureSimulator sim(net_, {});
  const gic::UniformFailureModel m(0.3);
  const AggregateResult a = sim.run_trials(m, 10, 7);
  const AggregateResult b = sim.run_trials(m, 10, 7);
  EXPECT_DOUBLE_EQ(a.cables_failed_pct.mean(), b.cables_failed_pct.mean());
  EXPECT_DOUBLE_EQ(a.nodes_unreachable_pct.mean(),
                   b.nodes_unreachable_pct.mean());
  EXPECT_EQ(a.trials, 10u);
}

TEST_F(SimTest, AggregateDiffersAcrossSeeds) {
  const FailureSimulator sim(net_, {});
  const gic::UniformFailureModel m(0.3);
  const AggregateResult a = sim.run_trials(m, 10, 7);
  const AggregateResult b = sim.run_trials(m, 10, 8);
  EXPECT_NE(a.cables_failed_pct.mean(), b.cables_failed_pct.mean());
}

TEST_F(SimTest, FractionRuleRequiresMoreFailures) {
  TrialConfig any_cfg;
  TrialConfig frac_cfg;
  frac_cfg.rule = CableDeathRule::kFractionFails;
  frac_cfg.death_fraction = 0.5;
  const FailureSimulator any_sim(net_, any_cfg);
  const FailureSimulator frac_sim(net_, frac_cfg);
  const gic::UniformFailureModel m(0.1);
  const AggregateResult any_r = any_sim.run_trials(m, 200, 3);
  const AggregateResult frac_r = frac_sim.run_trials(m, 200, 3);
  // Needing half the repeaters to fail is strictly harder than needing one.
  EXPECT_LT(frac_r.cables_failed_pct.mean(), any_r.cables_failed_pct.mean());
}

TEST_F(SimTest, FractionRuleOneMeansAllRepeaters) {
  TrialConfig cfg;
  cfg.rule = CableDeathRule::kFractionFails;
  cfg.death_fraction = 1.0;
  const FailureSimulator sim(net_, cfg);
  const gic::UniformFailureModel certain(1.0);
  util::Rng rng(1);
  const auto dead = sim.sample_cable_failures(certain, rng);
  EXPECT_TRUE(dead[high_]);  // all repeaters fail at p=1
}

TEST_F(SimTest, ConfigValidation) {
  TrialConfig bad;
  bad.repeater_spacing_km = 0.0;
  EXPECT_THROW(FailureSimulator(net_, bad), std::invalid_argument);
  bad = TrialConfig{};
  bad.rule = CableDeathRule::kFractionFails;
  bad.death_fraction = 0.0;
  EXPECT_THROW(FailureSimulator(net_, bad), std::invalid_argument);
  bad.death_fraction = 1.5;
  EXPECT_THROW(FailureSimulator(net_, bad), std::invalid_argument);
}

TEST_F(SimTest, ValidationRejectsNonFiniteSpacing) {
  // NaN slips through a naive `spacing <= 0` check (every comparison with
  // NaN is false) and would poison repeater counts downstream.
  TrialConfig bad;
  bad.repeater_spacing_km = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validate_trial_config(bad), std::invalid_argument);
  bad.repeater_spacing_km = std::numeric_limits<double>::infinity();
  EXPECT_THROW(validate_trial_config(bad), std::invalid_argument);
  bad.repeater_spacing_km = -150.0;
  EXPECT_THROW(validate_trial_config(bad), std::invalid_argument);
}

TEST_F(SimTest, ValidationRejectsNonFiniteDeathFraction) {
  TrialConfig bad;
  bad.rule = CableDeathRule::kFractionFails;
  bad.death_fraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validate_trial_config(bad), std::invalid_argument);
}

TEST_F(SimTest, ValidationRejectsAbsurdThreadCounts) {
  TrialConfig bad;
  bad.threads = kMaxReasonableThreads + 1;
  EXPECT_THROW(validate_trial_config(bad), std::invalid_argument);
  bad.threads = kMaxReasonableThreads;
  EXPECT_NO_THROW(validate_trial_config(bad));
}

TEST_F(SimTest, ValidationMessagesNameTheValue) {
  TrialConfig bad;
  bad.repeater_spacing_km = -1.0;
  try {
    validate_trial_config(bad);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("-1"), std::string::npos);
  }
}

TEST_F(SimTest, ValidationAcceptsDefaults) {
  EXPECT_NO_THROW(validate_trial_config(TrialConfig{}));
}

TEST_F(SimTest, DeathFractionIgnoredUnderAnyRule) {
  // death_fraction is documented as unused by kAnyRepeaterFails, so any
  // value must be accepted there.
  TrialConfig cfg;
  cfg.rule = CableDeathRule::kAnyRepeaterFails;
  cfg.death_fraction = 0.0;
  EXPECT_NO_THROW(FailureSimulator(net_, cfg));
  cfg.death_fraction = 1.5;
  EXPECT_NO_THROW(FailureSimulator(net_, cfg));
}

TEST_F(SimTest, DeathProbabilityTableMatchesPerCableComputation) {
  const FailureSimulator sim(net_, {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const gic::UniformFailureModel uniform(0.07);
  for (const gic::RepeaterFailureModel* model :
       {static_cast<const gic::RepeaterFailureModel*>(&s1),
        static_cast<const gic::RepeaterFailureModel*>(&uniform)}) {
    const DeathProbabilityTable table = sim.death_probability_table(*model);
    ASSERT_EQ(table.probability.size(), net_.cable_count());
    for (topo::CableId c = 0; c < net_.cable_count(); ++c) {
      EXPECT_DOUBLE_EQ(table.probability[c],
                       sim.cable_death_probability(c, *model));
    }
  }
}

TEST_F(SimTest, InPlaceSamplingMatchesAllocatingOverload) {
  const FailureSimulator sim(net_, {});
  const gic::UniformFailureModel m(0.3);
  util::Rng a(11);
  util::Rng b(11);
  std::vector<bool> reused(99, true);  // wrong size + stale contents on entry
  for (int i = 0; i < 5; ++i) {
    sim.sample_cable_failures(m, a, reused);
    EXPECT_EQ(reused, sim.sample_cable_failures(m, b));
  }
}

TEST_F(SimTest, AggregateBitIdenticalAcrossThreadCounts) {
  // 100 trials spans several accumulation chunks, so this exercises the
  // chunked merge reduction, not just the single-chunk copy path.
  const gic::UniformFailureModel m(0.3);
  AggregateResult serial;
  for (std::size_t threads : {1u, 2u, 8u}) {
    TrialConfig cfg;
    cfg.threads = threads;
    const FailureSimulator sim(net_, cfg);
    const AggregateResult agg = sim.run_trials(m, 100, 7);
    if (threads == 1u) {
      serial = agg;
      continue;
    }
    EXPECT_EQ(agg.trials, serial.trials);
    EXPECT_EQ(agg.cables_failed_pct.mean(), serial.cables_failed_pct.mean());
    EXPECT_EQ(agg.cables_failed_pct.stddev(),
              serial.cables_failed_pct.stddev());
    EXPECT_EQ(agg.cables_failed_pct.sample_stddev(),
              serial.cables_failed_pct.sample_stddev());
    EXPECT_EQ(agg.cables_failed_pct.min(), serial.cables_failed_pct.min());
    EXPECT_EQ(agg.cables_failed_pct.max(), serial.cables_failed_pct.max());
    EXPECT_EQ(agg.nodes_unreachable_pct.mean(),
              serial.nodes_unreachable_pct.mean());
    EXPECT_EQ(agg.nodes_unreachable_pct.stddev(),
              serial.nodes_unreachable_pct.stddev());
  }
}

TEST_F(SimTest, AggregateBitIdenticalAcrossThreadCountsFractionRule) {
  // The kFractionFails path has no probability table; the parallel loop
  // must still be thread-count independent.
  const gic::UniformFailureModel m(0.4);
  TrialConfig cfg;
  cfg.rule = CableDeathRule::kFractionFails;
  cfg.death_fraction = 0.3;
  cfg.threads = 1;
  const FailureSimulator serial_sim(net_, cfg);
  const AggregateResult serial = serial_sim.run_trials(m, 100, 13);
  cfg.threads = 4;
  const FailureSimulator parallel_sim(net_, cfg);
  const AggregateResult parallel = parallel_sim.run_trials(m, 100, 13);
  EXPECT_EQ(parallel.cables_failed_pct.mean(),
            serial.cables_failed_pct.mean());
  EXPECT_EQ(parallel.cables_failed_pct.sample_stddev(),
            serial.cables_failed_pct.sample_stddev());
  EXPECT_EQ(parallel.nodes_unreachable_pct.mean(),
            serial.nodes_unreachable_pct.mean());
}

TEST_F(SimTest, RunTrialsMatchesIndependentTrialStreams) {
  // The aggregate must be built from exactly trial-t-uses-stream-t draws,
  // regardless of chunking: recompute the trials by hand and compare.
  TrialConfig cfg;
  cfg.threads = 2;
  const FailureSimulator sim(net_, cfg);
  const gic::UniformFailureModel m(0.3);
  constexpr std::size_t kTrials = 100;
  const AggregateResult agg = sim.run_trials(m, kTrials, 21);
  const util::Rng base(21);
  double min_pct = 1e300;
  double max_pct = -1e300;
  double sum = 0.0;
  for (std::size_t t = 0; t < kTrials; ++t) {
    util::Rng rng = base.split(t);
    const TrialResult r = sim.run_trial(m, rng);
    min_pct = std::min(min_pct, r.cables_failed_pct);
    max_pct = std::max(max_pct, r.cables_failed_pct);
    sum += r.cables_failed_pct;
  }
  EXPECT_EQ(agg.cables_failed_pct.min(), min_pct);
  EXPECT_EQ(agg.cables_failed_pct.max(), max_pct);
  EXPECT_NEAR(agg.cables_failed_pct.mean(), sum / kTrials, 1e-9);
}

TEST_F(SimTest, EmptyNetworkSafe) {
  const topo::InfrastructureNetwork empty("empty");
  const FailureSimulator sim(empty, {});
  const gic::UniformFailureModel m(0.5);
  const AggregateResult r = sim.run_trials(m, 5, 1);
  EXPECT_DOUBLE_EQ(r.cables_failed_pct.mean(), 0.0);
}

}  // namespace
}  // namespace solarnet::sim
