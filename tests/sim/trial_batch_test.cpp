#include "sim/trial_batch.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "gic/failure_model.h"
#include "graph/components.h"
#include "sim/pipeline.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace solarnet::sim {
namespace {

// High-latitude line, equatorial line, and a repeaterless spur: exercises
// per-cable probabilities that differ, draw-consuming and non-consuming
// cables, and the paper's latitude-keyed S1 model.
class TrialBatchTest : public ::testing::Test {
 protected:
  TrialBatchTest() : net_("batch") {
    const auto osl = add_node("Oslo", {65.0, 10.0}, "NO");
    const auto ny = add_node("NY", {40.7, -74.0}, "US");
    const auto sg = add_node("Singapore", {1.35, 103.8}, "SG");
    const auto lis = add_node("Lisbon", {38.7, -9.1}, "PT");
    add_cable("north", osl, ny, 1500.0);
    add_cable("equator", sg, lis, 1500.0);
    add_cable("short", ny, lis, 100.0);  // 0 repeaters at 150 km spacing
    add_cable("asia", ny, sg, 11000.0);
  }

  topo::NodeId add_node(const char* name, geo::GeoPoint p, const char* cc) {
    return net_.add_node({name, p, cc, topo::NodeKind::kLandingPoint, true});
  }
  void add_cable(const char* name, topo::NodeId a, topo::NodeId b, double km) {
    topo::Cable c;
    c.name = name;
    c.segments = {{a, b, km}};
    net_.add_cable(std::move(c));
  }

  topo::InfrastructureNetwork net_;
};

topo::InfrastructureNetwork random_network(util::Rng& rng, std::size_t nodes,
                                           std::size_t cables) {
  topo::InfrastructureNetwork net("random");
  for (std::size_t i = 0; i < nodes; ++i) {
    net.add_node({"n" + std::to_string(i),
                  {rng.uniform(-70.0, 70.0), rng.uniform(-180.0, 180.0)},
                  "US",
                  topo::NodeKind::kLandingPoint,
                  true});
  }
  for (std::size_t i = 0; i < cables; ++i) {
    const auto a = static_cast<topo::NodeId>(rng.uniform_below(nodes));
    auto b = static_cast<topo::NodeId>(rng.uniform_below(nodes));
    if (b == a) b = (b + 1) % nodes;
    topo::Cable cable;
    cable.name = "c" + std::to_string(i);
    cable.segments = {{a, b, rng.uniform(40.0, 4000.0)}};
    net.add_cable(std::move(cable));
  }
  return net;
}

void expect_stats_eq(const util::RunningStats& a, const util::RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.sample_stddev(), b.sample_stddev());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

TEST_F(TrialBatchTest, LanesBitIdenticalToScalarSampler) {
  TrialConfig cfg;
  cfg.threads = 1;
  const FailureSimulator simulator(net_, cfg);
  const auto model = gic::LatitudeBandFailureModel::s1();
  const auto table = simulator.death_probability_table(model);
  const TrialBatchKernel kernel(simulator, table);
  const util::Rng base(123);

  TrialBatch batch;
  util::Bitset scalar_dead;
  util::Bitset lane_dead;
  for (const auto& [first, lanes] :
       std::vector<std::pair<std::size_t, unsigned>>{{0, 64}, {64, 64},
                                                     {1000, 5}, {3, 1}}) {
    kernel.sample(base, first, lanes, batch);
    ASSERT_EQ(batch.lanes, lanes);
    ASSERT_EQ(batch.lane_rng.size(), lanes);
    for (unsigned lane = 0; lane < lanes; ++lane) {
      util::Rng rng = base.split(first + lane);
      simulator.sample_cable_failures(table, rng, scalar_dead);
      kernel.extract_lane(batch, lane, lane_dead);
      EXPECT_TRUE(lane_dead == scalar_dead)
          << "first " << first << " lane " << lane;
      // The captured stream state must equal the scalar post-draw state:
      // observers derive substreams from it.
      util::Rng captured = batch.lane_rng[lane];
      EXPECT_EQ(captured.next_u64(), rng.next_u64());
    }
  }
}

TEST_F(TrialBatchTest, BatchedCountsMatchScalarAggregates) {
  TrialConfig cfg;
  cfg.threads = 1;
  const FailureSimulator simulator(net_, cfg);
  const auto model = gic::LatitudeBandFailureModel::s1();
  const auto table = simulator.death_probability_table(model);
  const TrialBatchKernel kernel(simulator, table);
  const util::Rng base(7);

  TrialBatch batch;
  kernel.sample(base, 0, 64, batch);
  std::uint32_t cables[64], nodes[64], largest[64];
  kernel.count_cables_failed(batch, cables);
  kernel.count_unreachable_nodes(batch, nodes);
  BatchConnectivityScratch comp_scratch;
  kernel.largest_components(batch, comp_scratch, largest);

  util::Bitset dead;
  std::vector<topo::NodeId> unreachable;
  graph::AliveMask mask;
  graph::ComponentScratch scratch;
  graph::ComponentResult components;
  const graph::Csr& csr = net_.csr();
  for (unsigned lane = 0; lane < 64; ++lane) {
    util::Rng rng = base.split(lane);
    simulator.sample_cable_failures(table, rng, dead);
    EXPECT_EQ(cables[lane], dead.count()) << "lane " << lane;
    net_.unreachable_nodes(dead, unreachable);
    EXPECT_EQ(nodes[lane], unreachable.size()) << "lane " << lane;
    net_.mask_for_failures(dead, mask);
    graph::connected_components(csr, mask, scratch, components);
    EXPECT_EQ(largest[lane], components.largest_component_size())
        << "lane " << lane;
  }
}

TEST_F(TrialBatchTest, RunTrialsAutoBitIdenticalToScalarEngine) {
  const auto model = gic::LatitudeBandFailureModel::s1();
  for (const std::size_t trials : {1u, 31u, 33u, 64u, 100u, 257u}) {
    for (const std::size_t threads : {1u, 3u}) {
      TrialConfig scalar_cfg;
      scalar_cfg.threads = threads;
      scalar_cfg.engine = TrialEngine::kScalar;
      TrialConfig auto_cfg = scalar_cfg;
      auto_cfg.engine = TrialEngine::kAuto;
      const FailureSimulator scalar_sim(net_, scalar_cfg);
      const FailureSimulator auto_sim(net_, auto_cfg);
      const auto reference = scalar_sim.run_trials(model, trials, 42);
      const auto batched = auto_sim.run_trials(model, trials, 42);
      EXPECT_EQ(batched.trials, reference.trials);
      expect_stats_eq(batched.cables_failed_pct, reference.cables_failed_pct);
      expect_stats_eq(batched.nodes_unreachable_pct,
                      reference.nodes_unreachable_pct);
    }
  }
}

TEST(TrialBatchProperty, RandomNetworksMatchScalarEngine) {
  util::Rng rng(5150);
  for (int round = 0; round < 4; ++round) {
    const auto net = random_network(rng, 5 + round * 12, 8 + round * 20);
    // Spread over the probability range, including the certain-death
    // endpoint that exercises the no-draw fast path.
    const double p = round == 3 ? 1.0 : rng.uniform(0.0, 0.6);
    const gic::UniformFailureModel model(p);
    TrialConfig scalar_cfg;
    scalar_cfg.threads = 2;
    scalar_cfg.engine = TrialEngine::kScalar;
    TrialConfig auto_cfg = scalar_cfg;
    auto_cfg.engine = TrialEngine::kAuto;
    const FailureSimulator scalar_sim(net, scalar_cfg);
    const FailureSimulator auto_sim(net, auto_cfg);
    const auto reference = scalar_sim.run_trials(model, 90, 11 + round);
    const auto batched = auto_sim.run_trials(model, 90, 11 + round);
    expect_stats_eq(batched.cables_failed_pct, reference.cables_failed_pct);
    expect_stats_eq(batched.nodes_unreachable_pct,
                    reference.nodes_unreachable_pct);
  }
}

TEST_F(TrialBatchTest, KernelValidatesRuleAndTable) {
  TrialConfig cfg;
  cfg.rule = CableDeathRule::kFractionFails;
  cfg.death_fraction = 0.5;
  const FailureSimulator fraction_sim(net_, cfg);
  DeathProbabilityTable table;
  table.probability.assign(net_.cable_count(), 0.1);
  EXPECT_THROW(TrialBatchKernel(fraction_sim, table), std::invalid_argument);

  const FailureSimulator any_sim(net_, TrialConfig{});
  DeathProbabilityTable short_table;
  short_table.probability.assign(net_.cable_count() - 1, 0.1);
  EXPECT_THROW(TrialBatchKernel(any_sim, short_table), std::invalid_argument);

  const auto model = gic::LatitudeBandFailureModel::s1();
  const auto good = any_sim.death_probability_table(model);
  const TrialBatchKernel kernel(any_sim, good);
  TrialBatch batch;
  EXPECT_THROW(kernel.sample(util::Rng(1), 0, 0, batch),
               std::invalid_argument);
  EXPECT_THROW(kernel.sample(util::Rng(1), 0, 65, batch),
               std::invalid_argument);
}

// A deliberately scalar observer (supports_batch() == false): on the
// batched pipeline path it must see per-lane TrialViews indistinguishable
// from the scalar path — same draw, same counts, same components, same
// post-draw rng stream.
class RecordingObserver final : public TrialObserver {
 public:
  struct Record {
    std::size_t trial;
    std::size_t cables_failed;
    double cables_failed_pct;
    std::size_t unreachable;
    double nodes_unreachable_pct;
    std::size_t largest_component;
    std::uint64_t substream_word;
  };

  bool needs_components() const override { return true; }
  void begin_run(const TrialPipeline&, std::size_t, std::size_t) override {
    records_.clear();
  }
  void observe(const TrialView& view, std::size_t, std::size_t) override {
    Record r;
    r.trial = view.trial;
    r.cables_failed = view.cables_failed;
    r.cables_failed_pct = view.cables_failed_pct;
    r.unreachable = view.unreachable->size();
    r.nodes_unreachable_pct = view.nodes_unreachable_pct;
    r.largest_component = view.components->largest_component_size();
    r.substream_word = view.substream(99).next_u64();
    records_.push_back(r);
  }
  void end_run() override {}

  // Single-threaded runs only (records are appended unsynchronized).
  const std::vector<Record>& records() const { return records_; }

 private:
  std::vector<Record> records_;
};

TEST_F(TrialBatchTest, BatchedPipelineFeedsScalarObserversIdentically) {
  const auto model = gic::LatitudeBandFailureModel::s1();
  TrialConfig scalar_cfg;
  scalar_cfg.threads = 1;
  scalar_cfg.engine = TrialEngine::kScalar;
  TrialConfig auto_cfg = scalar_cfg;
  auto_cfg.engine = TrialEngine::kAuto;
  const FailureSimulator scalar_sim(net_, scalar_cfg);
  const FailureSimulator auto_sim(net_, auto_cfg);

  constexpr std::size_t kTrials = 70;  // one full batch + a partial one
  RecordingObserver scalar_rec;
  ConnectivityObserver scalar_conn;
  TrialPipeline scalar_pipeline(scalar_sim, model);
  scalar_pipeline.add_observer(scalar_rec);
  scalar_pipeline.add_observer(scalar_conn);
  scalar_pipeline.run(kTrials, 77);

  RecordingObserver batched_rec;
  ConnectivityObserver batched_conn;
  TrialPipeline batched_pipeline(auto_sim, model);
  batched_pipeline.add_observer(batched_rec);
  batched_pipeline.add_observer(batched_conn);
  batched_pipeline.run(kTrials, 77);

  ASSERT_EQ(batched_rec.records().size(), scalar_rec.records().size());
  for (std::size_t i = 0; i < kTrials; ++i) {
    const auto& a = scalar_rec.records()[i];
    const auto& b = batched_rec.records()[i];
    EXPECT_EQ(a.trial, b.trial);
    EXPECT_EQ(a.cables_failed, b.cables_failed);
    EXPECT_EQ(a.cables_failed_pct, b.cables_failed_pct);
    EXPECT_EQ(a.unreachable, b.unreachable);
    EXPECT_EQ(a.nodes_unreachable_pct, b.nodes_unreachable_pct);
    EXPECT_EQ(a.largest_component, b.largest_component);
    EXPECT_EQ(a.substream_word, b.substream_word);
  }
  expect_stats_eq(batched_conn.result().cables_failed_pct,
                  scalar_conn.result().cables_failed_pct);
  expect_stats_eq(batched_conn.result().nodes_unreachable_pct,
                  scalar_conn.result().nodes_unreachable_pct);
  expect_stats_eq(batched_conn.result().largest_component_pct,
                  scalar_conn.result().largest_component_pct);
}

TEST_F(TrialBatchTest, BatchedConnectivityThreadCountInvariant) {
  const auto model = gic::LatitudeBandFailureModel::s1();
  ConnectivityObserver::Result reference;
  for (const std::size_t threads : {1u, 2u, 5u}) {
    TrialConfig cfg;
    cfg.threads = threads;
    const FailureSimulator simulator(net_, cfg);
    TrialPipeline pipeline(simulator, model);
    ConnectivityObserver conn;
    pipeline.add_observer(conn);
    pipeline.run(200, 31);
    if (threads == 1) {
      reference = conn.result();
    } else {
      expect_stats_eq(conn.result().cables_failed_pct,
                      reference.cables_failed_pct);
      expect_stats_eq(conn.result().nodes_unreachable_pct,
                      reference.nodes_unreachable_pct);
      expect_stats_eq(conn.result().largest_component_pct,
                      reference.largest_component_pct);
    }
  }
}

}  // namespace
}  // namespace solarnet::sim
