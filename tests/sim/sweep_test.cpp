#include "sim/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/connectivity.h"
#include "util/rng.h"

namespace solarnet::sim {
namespace {

// Same deterministic network as monte_carlo_test:
//   long-high: 1500 km cable topping at 65N  (10 repeaters @150)
//   long-low:  1500 km cable at the equator  (10 repeaters @150)
//   short:      100 km cable                  (0 repeaters)
class SweepTest : public ::testing::Test {
 protected:
  SweepTest() : net_("sweep") {
    const auto a = net_.add_node(
        {"A", {65.0, 0.0}, "NO", topo::NodeKind::kLandingPoint, true});
    const auto b = net_.add_node(
        {"B", {55.0, 0.0}, "NO", topo::NodeKind::kLandingPoint, true});
    const auto c = net_.add_node(
        {"C", {0.0, 0.0}, "", topo::NodeKind::kLandingPoint, true});
    const auto d = net_.add_node(
        {"D", {0.0, 13.0}, "", topo::NodeKind::kLandingPoint, true});
    const auto e = net_.add_node(
        {"E", {0.5, 13.0}, "", topo::NodeKind::kLandingPoint, true});
    topo::Cable high;
    high.name = "long-high";
    high.segments = {{a, b, 1500.0}};
    high_ = net_.add_cable(std::move(high));
    topo::Cable low;
    low.name = "long-low";
    low.segments = {{c, d, 1500.0}};
    low_ = net_.add_cable(std::move(low));
    topo::Cable shorty;
    shorty.name = "short";
    shorty.segments = {{d, e, 100.0}};
    short_ = net_.add_cable(std::move(shorty));
  }

  topo::InfrastructureNetwork net_;
  topo::CableId high_{}, low_{}, short_{};
};

// A random multi-cable network for property tests: `nodes` random points,
// `cables` random point-to-point cables with lengths spanning repeaterless
// (< 150 km) through dozens-of-repeaters, including occasional duplicate
// endpoints (parallel cables).
topo::InfrastructureNetwork random_network(util::Rng& rng, std::size_t nodes,
                                           std::size_t cables) {
  topo::InfrastructureNetwork net("random");
  for (std::size_t i = 0; i < nodes; ++i) {
    net.add_node({"n" + std::to_string(i),
                  {rng.uniform(-70.0, 70.0), rng.uniform(-180.0, 180.0)},
                  "",
                  topo::NodeKind::kLandingPoint,
                  true});
  }
  for (std::size_t i = 0; i < cables; ++i) {
    const auto a = static_cast<topo::NodeId>(rng.uniform_below(nodes));
    auto b = static_cast<topo::NodeId>(rng.uniform_below(nodes));
    if (b == a) b = (b + 1) % nodes;
    topo::Cable cable;
    cable.name = "c" + std::to_string(i);
    cable.segments = {{a, b, rng.uniform(40.0, 4000.0)}};
    net.add_cable(std::move(cable));
  }
  return net;
}

TEST_F(SweepTest, RejectsFractionFailsRule) {
  TrialConfig cfg;
  cfg.rule = CableDeathRule::kFractionFails;
  const FailureSimulator sim(net_, cfg);
  const std::vector<double> probs = {0.1, 0.5};
  EXPECT_THROW(SweepEngine::uniform(sim, probs), std::invalid_argument);
  EXPECT_THROW(analysis::uniform_failure_sweep(sim, probs, 4, 1),
               std::invalid_argument);
}

TEST_F(SweepTest, RejectsBadGrids) {
  const FailureSimulator sim(net_, {});
  EXPECT_THROW(SweepEngine(sim, {}), std::invalid_argument);  // empty

  const std::vector<double> unsorted = {0.5, 0.1};
  EXPECT_THROW(SweepEngine::uniform(sim, unsorted), std::invalid_argument);

  std::vector<DeathProbabilityTable> short_table(1);
  short_table[0].probability = {0.1};  // 3 cables expected
  EXPECT_THROW(SweepEngine(sim, std::move(short_table)),
               std::invalid_argument);

  std::vector<DeathProbabilityTable> nonmono(2);
  nonmono[0].probability = {0.5, 0.5, 0.0};
  nonmono[1].probability = {0.6, 0.4, 0.0};  // cable 1 decreases
  EXPECT_THROW(SweepEngine(sim, std::move(nonmono)), std::invalid_argument);

  std::vector<DeathProbabilityTable> out_of_range(1);
  out_of_range[0].probability = {0.1, 1.5, 0.0};
  EXPECT_THROW(SweepEngine(sim, std::move(out_of_range)),
               std::invalid_argument);

  std::vector<DeathProbabilityTable> ok(1);
  ok[0].probability = {0.1, 0.2, 0.0};
  EXPECT_THROW(SweepEngine(sim, std::move(ok), {1.0, 2.0}),
               std::invalid_argument);  // axis size mismatch
}

TEST_F(SweepTest, UniformRejectsNonFiniteGridPoints) {
  // NaN compares false to everything, so it sails through both
  // std::is_sorted (no descending pair ever reported) and the
  // !(p >= 0 && p <= 1) range check unless finiteness is gated explicitly.
  const FailureSimulator sim(net_, {});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const struct {
    std::vector<double> grid;
    const char* needle;  // expected fragment of the error message
  } cases[] = {
      {{nan}, "index 0"},
      {{0.1, nan}, "index 1"},
      {{nan, 0.1, 0.5}, "index 0"},
      {{0.1, nan, 0.5}, "index 1"},
      {{0.0, 0.5, inf}, "index 2"},
      {{-inf, 0.5}, "index 0"},
  };
  for (const auto& c : cases) {
    try {
      SweepEngine::uniform(sim, c.grid);
      FAIL() << "grid of size " << c.grid.size()
             << " with non-finite point was accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos)
          << e.what();
    }
  }
  // A clean grid still passes.
  EXPECT_NO_THROW(SweepEngine::uniform(sim, std::vector<double>{0.0, 0.5, 1.0}));
}

// The CRN kernel must consume exactly one uniform per repeater-bearing
// cable in ascending cable order and threshold it against the grid — so an
// independent replay of the same child stream predicts every death index.
TEST_F(SweepTest, DeathIndicesMatchManualThresholding) {
  const FailureSimulator sim(net_, {});
  const auto grid = analysis::default_probability_grid();
  const SweepEngine engine = SweepEngine::uniform(sim, grid);
  for (std::uint64_t trial = 0; trial < 16; ++trial) {
    util::Rng rng = util::Rng(99).split(trial);
    std::vector<std::uint32_t> got;
    engine.sample_death_grid_indices(rng, got);

    util::Rng replay = util::Rng(99).split(trial);
    ASSERT_EQ(got.size(), net_.cable_count());
    for (topo::CableId c = 0; c < net_.cable_count(); ++c) {
      if (sim.cable_repeater_count(c) == 0) {
        EXPECT_EQ(got[c], engine.grid_size());
        continue;
      }
      const double u = replay.uniform();
      std::uint32_t expect = static_cast<std::uint32_t>(engine.grid_size());
      for (std::size_t g = 0; g < engine.grid_size(); ++g) {
        if (u < engine.grid_probability(g, c)) {  // Bernoulli death rule
          expect = static_cast<std::uint32_t>(g);
          break;
        }
      }
      EXPECT_EQ(got[c], expect) << "cable " << c << " trial " << trial;
    }
  }
}

// Monotone-nesting property over random networks: within one trial the
// dead set can only grow with severity, so cable/node failure percentages
// are non-decreasing across the grid and the largest surviving component
// is non-increasing.
TEST(SweepProperty, MonotoneNestedCurvesOnRandomNetworks) {
  util::Rng meta(2026);
  const std::vector<double> grid = {0.001, 0.01, 0.05, 0.1, 0.3, 0.7, 1.0};
  for (int round = 0; round < 8; ++round) {
    const auto net = random_network(meta, 6 + round, 10 + 2 * round);
    const FailureSimulator sim(net, {});
    const SweepEngine engine = SweepEngine::uniform(sim, grid);
    SweepScratch scratch;
    for (std::uint64_t trial = 0; trial < 24; ++trial) {
      util::Rng rng = util::Rng(round).split(trial);
      engine.run_trial(rng, scratch);
      for (std::size_t g = 1; g < grid.size(); ++g) {
        EXPECT_GE(scratch.cables_pct[g], scratch.cables_pct[g - 1]);
        EXPECT_GE(scratch.nodes_pct[g], scratch.nodes_pct[g - 1]);
        EXPECT_LE(scratch.largest_pct[g], scratch.largest_pct[g - 1]);
      }
    }
  }
}

// Cross-check the batched path against the independent run_trials path at
// three grid points. The two draw from different streams, so the
// comparison is statistical: means within 4 combined standard errors.
TEST(SweepProperty, MatchesIndependentRunTrialsStatistically) {
  util::Rng meta(7);
  const auto net = random_network(meta, 12, 30);
  const FailureSimulator sim(net, {});
  const std::vector<double> grid = {0.02, 0.1, 0.5};
  const SweepEngine engine = SweepEngine::uniform(sim, grid);
  constexpr std::size_t kTrials = 600;
  const SweepResult batched = engine.run(kTrials, 11);
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const gic::UniformFailureModel model(grid[g]);
    const AggregateResult indep = sim.run_trials(model, kTrials, 1000 + g);
    const std::vector<
        std::pair<const util::RunningStats*, const util::RunningStats*>>
        checks = {{&batched.points[g].cables_failed_pct,
                   &indep.cables_failed_pct},
                  {&batched.points[g].nodes_unreachable_pct,
                   &indep.nodes_unreachable_pct}};
    for (const auto& pair : checks) {
      const util::RunningStats& a = *pair.first;
      const util::RunningStats& b = *pair.second;
      const double se =
          std::sqrt((a.sample_variance() + b.sample_variance()) /
                    static_cast<double>(kTrials));
      EXPECT_NEAR(a.mean(), b.mean(), 4.0 * se + 1e-9)
          << "grid point " << grid[g];
    }
  }
}

// p = 0 and p = 1 are deterministic, so batched and independent paths must
// agree exactly there.
TEST_F(SweepTest, DeterministicEndpointsExact) {
  const FailureSimulator sim(net_, {});
  const std::vector<double> grid = {0.0, 1.0};
  const SweepEngine engine = SweepEngine::uniform(sim, grid);
  const SweepResult result = engine.run(32, 5);

  EXPECT_DOUBLE_EQ(result.points[0].cables_failed_pct.mean(), 0.0);
  EXPECT_DOUBLE_EQ(result.points[0].nodes_unreachable_pct.mean(), 0.0);
  EXPECT_DOUBLE_EQ(result.points[0].cables_failed_pct.sample_stddev(), 0.0);

  // p = 1: both long cables die, the repeaterless short one survives.
  EXPECT_DOUBLE_EQ(result.points[1].cables_failed_pct.mean(),
                   100.0 * 2.0 / 3.0);
  // A, B, C lose all cables; D and E keep the short cable.
  EXPECT_DOUBLE_EQ(result.points[1].nodes_unreachable_pct.mean(),
                   100.0 * 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(result.points[1].nodes_unreachable_pct.sample_stddev(),
                   0.0);
  // Largest surviving component is D-E: 2 of 5 connected nodes.
  EXPECT_DOUBLE_EQ(result.points[1].largest_component_pct.mean(), 40.0);
  // p = 0: everything alive, one component of all 5 nodes.
  EXPECT_DOUBLE_EQ(result.points[0].largest_component_pct.min(), 60.0);
}

// The determinism contract: aggregates are bit-identical for every thread
// count, including auto (0).
TEST(SweepProperty, ThreadCountBitIdentity) {
  util::Rng meta(3);
  const auto net = random_network(meta, 14, 40);
  const FailureSimulator sim(net, {});
  const auto grid = analysis::default_probability_grid();
  const SweepEngine engine = SweepEngine::uniform(sim, grid);
  constexpr std::size_t kTrials = 150;  // not a multiple of the chunk size
  const SweepResult serial = engine.run(kTrials, 42, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{7}, std::size_t{0}}) {
    const SweepResult parallel = engine.run(kTrials, 42, threads);
    ASSERT_EQ(parallel.points.size(), serial.points.size());
    for (std::size_t g = 0; g < serial.points.size(); ++g) {
      const auto& s = serial.points[g];
      const auto& p = parallel.points[g];
      const std::vector<
          std::pair<const util::RunningStats*, const util::RunningStats*>>
          checks = {{&s.cables_failed_pct, &p.cables_failed_pct},
                    {&s.nodes_unreachable_pct, &p.nodes_unreachable_pct},
                    {&s.largest_component_pct, &p.largest_component_pct}};
      for (const auto& pair : checks) {
        EXPECT_EQ(pair.first->count(), pair.second->count());
        EXPECT_EQ(pair.first->mean(), pair.second->mean());
        EXPECT_EQ(pair.first->sample_stddev(), pair.second->sample_stddev());
        EXPECT_EQ(pair.first->min(), pair.second->min());
        EXPECT_EQ(pair.first->max(), pair.second->max());
      }
    }
  }
}

// uniform_failure_sweep accepts probabilities in any order and returns the
// points in input order, identical to the sorted call mapped back.
TEST(SweepProperty, UnsortedSweepInputKeepsOrder) {
  util::Rng meta(5);
  const auto net = random_network(meta, 8, 16);
  const FailureSimulator sim(net, {});
  const std::vector<double> sorted = {0.01, 0.1, 0.5, 1.0};
  const std::vector<double> shuffled = {0.5, 0.01, 1.0, 0.1};
  const auto a = analysis::uniform_failure_sweep(sim, sorted, 40, 9);
  const auto b = analysis::uniform_failure_sweep(sim, shuffled, 40, 9);
  ASSERT_EQ(a.size(), sorted.size());
  ASSERT_EQ(b.size(), shuffled.size());
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    const auto it = std::find(sorted.begin(), sorted.end(), shuffled[i]);
    ASSERT_NE(it, sorted.end());
    const auto& expect = a[static_cast<std::size_t>(it - sorted.begin())];
    EXPECT_EQ(b[i].repeater_failure_probability, shuffled[i]);
    EXPECT_EQ(b[i].cables_failed_mean_pct, expect.cables_failed_mean_pct);
    EXPECT_EQ(b[i].nodes_unreachable_mean_pct,
              expect.nodes_unreachable_mean_pct);
    EXPECT_EQ(b[i].cables_failed_sd_pct, expect.cables_failed_sd_pct);
  }
}

// Reusing one scratch across trials and engines must not leak state: a
// fresh scratch and a heavily reused one produce identical trials.
TEST(SweepProperty, ScratchReuseIsStateless) {
  util::Rng meta(13);
  const auto net_small = random_network(meta, 5, 8);
  const auto net_big = random_network(meta, 20, 60);
  const FailureSimulator sim_small(net_small, {});
  const FailureSimulator sim_big(net_big, {});
  const std::vector<double> grid = {0.05, 0.2, 0.8};
  const SweepEngine small = SweepEngine::uniform(sim_small, grid);
  const SweepEngine big = SweepEngine::uniform(sim_big, grid);

  SweepScratch reused;
  for (int warm = 0; warm < 3; ++warm) {
    util::Rng rng(1000 + warm);
    big.run_trial(rng, reused);  // dirty the buffers with a bigger problem
  }
  util::Rng rng_a(77), rng_b(77);
  SweepScratch fresh;
  small.run_trial(rng_a, fresh);
  small.run_trial(rng_b, reused);
  EXPECT_EQ(fresh.cables_pct, reused.cables_pct);
  EXPECT_EQ(fresh.nodes_pct, reused.nodes_pct);
  EXPECT_EQ(fresh.largest_pct, reused.largest_pct);
}

TEST_F(SweepTest, AxisDefaultsAndAccessors) {
  const FailureSimulator sim(net_, {});
  std::vector<DeathProbabilityTable> grid(2);
  grid[0].probability = {0.1, 0.1, 0.0};
  grid[1].probability = {0.4, 0.2, 0.0};
  const SweepEngine engine(sim, std::move(grid));
  EXPECT_EQ(engine.grid_size(), 2u);
  EXPECT_DOUBLE_EQ(engine.axis(0), 0.0);  // defaults to the grid index
  EXPECT_DOUBLE_EQ(engine.axis(1), 1.0);
  EXPECT_DOUBLE_EQ(engine.grid_probability(1, 0), 0.4);
  EXPECT_THROW(engine.grid_probability(2, 0), std::out_of_range);
  EXPECT_THROW(engine.grid_probability(0, 99), std::out_of_range);
}

}  // namespace
}  // namespace solarnet::sim
