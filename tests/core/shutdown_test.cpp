#include "core/shutdown.h"

#include <gtest/gtest.h>

namespace solarnet::core {
namespace {

topo::InfrastructureNetwork risky_net(std::size_t cables) {
  topo::InfrastructureNetwork net("risky");
  for (std::size_t i = 0; i <= cables; ++i) {
    net.add_node({"N" + std::to_string(i),
                  {55.0, static_cast<double>(i) * 3.0},
                  "",
                  topo::NodeKind::kLandingPoint,
                  true});
  }
  for (std::size_t i = 0; i < cables; ++i) {
    topo::Cable c;
    c.name = "C" + std::to_string(i);
    c.segments = {{static_cast<topo::NodeId>(i),
                   static_cast<topo::NodeId>(i + 1),
                   1000.0 + 500.0 * static_cast<double>(i)}};
    net.add_cable(std::move(c));
  }
  return net;
}

TEST(ShutdownAdjustedModel, ScalesProbability) {
  const gic::UniformFailureModel base(0.4);
  const ShutdownAdjustedModel off(base, 0.5);
  gic::RepeaterContext ctx;
  EXPECT_DOUBLE_EQ(off.failure_probability(ctx), 0.2);
  EXPECT_NE(off.name().find("powered off"), std::string::npos);
}

TEST(EvaluateShutdown, PlanReducesExpectedFailures) {
  const auto net = risky_net(10);
  const gic::UniformFailureModel m(0.05);
  ShutdownPolicy policy;
  policy.lead_time_hours = 13.0;
  policy.hours_per_cable = 1.0;  // budget: 13 >= all 10 cables
  const ShutdownOutcome out = evaluate_shutdown(net, m, policy);
  EXPECT_EQ(out.cables_shut_down, 10u);
  EXPECT_GT(out.expected_failures_no_action, 0.0);
  EXPECT_LT(out.expected_failures_with_plan, out.expected_failures_no_action);
  EXPECT_GT(out.expected_cables_saved(), 0.0);
}

TEST(EvaluateShutdown, LeadTimeLimitsBudget) {
  const auto net = risky_net(10);
  const gic::UniformFailureModel m(0.05);
  ShutdownPolicy policy;
  policy.lead_time_hours = 2.0;
  policy.hours_per_cable = 1.0;
  const ShutdownOutcome out = evaluate_shutdown(net, m, policy);
  EXPECT_EQ(out.cables_shut_down, 2u);
}

TEST(EvaluateShutdown, PrioritizationBeatsArbitraryOrder) {
  const auto net = risky_net(10);  // longer cables = more repeaters = riskier
  const gic::UniformFailureModel m(0.05);
  ShutdownPolicy prioritized;
  prioritized.lead_time_hours = 3.0;
  prioritized.hours_per_cable = 1.0;
  prioritized.priority = ShutdownPriority::kByBenefit;
  ShutdownPolicy naive = prioritized;
  naive.priority = ShutdownPriority::kNone;  // shuts cable ids 0..2 (shortest)
  const ShutdownOutcome p = evaluate_shutdown(net, m, prioritized);
  const ShutdownOutcome n = evaluate_shutdown(net, m, naive);
  EXPECT_LT(p.expected_failures_with_plan, n.expected_failures_with_plan);
}

TEST(EvaluateShutdown, BenefitBeatsRawRiskOnSaturatedCables) {
  // Mix certain-death cables (shutdown can't help) with mid-risk cables
  // (where it can): benefit ordering must save more than risk ordering.
  topo::InfrastructureNetwork net("mix");
  for (std::size_t i = 0; i <= 6; ++i) {
    net.add_node({"N" + std::to_string(i),
                  {55.0, static_cast<double>(i) * 4.0},
                  "",
                  topo::NodeKind::kLandingPoint,
                  true});
  }
  auto add = [&](std::size_t i, double len) {
    topo::Cable c;
    c.name = "C" + std::to_string(i);
    c.segments = {{static_cast<topo::NodeId>(i),
                   static_cast<topo::NodeId>(i + 1), len}};
    net.add_cable(std::move(c));
  };
  add(0, 30000.0);  // saturated: dies either way at p=0.05
  add(1, 30000.0);
  add(2, 30000.0);
  add(3, 1000.0);  // mid-risk: shutdown helps
  add(4, 1000.0);
  add(5, 1000.0);
  const gic::UniformFailureModel m(0.05);
  ShutdownPolicy by_benefit;
  by_benefit.lead_time_hours = 3.0;
  by_benefit.hours_per_cable = 1.0;
  by_benefit.priority = ShutdownPriority::kByBenefit;
  ShutdownPolicy by_risk = by_benefit;
  by_risk.priority = ShutdownPriority::kByRisk;
  const ShutdownOutcome benefit = evaluate_shutdown(net, m, by_benefit);
  const ShutdownOutcome risk = evaluate_shutdown(net, m, by_risk);
  EXPECT_GT(benefit.expected_cables_saved(),
            risk.expected_cables_saved() + 0.1);
}

TEST(EvaluateShutdown, PoweredOffFactorOneIsNoop) {
  const auto net = risky_net(5);
  const gic::UniformFailureModel m(0.1);
  ShutdownPolicy policy;
  policy.powered_off_factor = 1.0;
  const ShutdownOutcome out = evaluate_shutdown(net, m, policy);
  EXPECT_NEAR(out.expected_cables_saved(), 0.0, 1e-12);
}

TEST(EvaluateShutdown, ProtectionIsOnlyPartial) {
  // §5.2: powering off provides limited protection — saved cables must be
  // strictly less than the no-action expected failures.
  const auto net = risky_net(8);
  const gic::UniformFailureModel m(0.2);
  const ShutdownOutcome out = evaluate_shutdown(net, m, ShutdownPolicy{});
  EXPECT_GT(out.expected_failures_with_plan, 0.0);
  EXPECT_LT(out.expected_cables_saved(), out.expected_failures_no_action);
}

}  // namespace
}  // namespace solarnet::core
