#include "core/partition.h"

#include <gtest/gtest.h>

namespace solarnet::core {
namespace {

// NY (NA) -- Bude (EU) -- Lisbon (EU) -- Fortaleza (SA) with three cables.
class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest() : net_("p") {
    ny_ = net_.add_node(
        {"NY", {40.7, -74.0}, "US", topo::NodeKind::kLandingPoint, true});
    bude_ = net_.add_node(
        {"Bude", {50.8, -4.5}, "GB", topo::NodeKind::kLandingPoint, true});
    lisbon_ = net_.add_node(
        {"Lisbon", {38.7, -9.1}, "PT", topo::NodeKind::kLandingPoint, true});
    fortaleza_ = net_.add_node({"Fortaleza",
                                {-3.7, -38.5},
                                "BR",
                                topo::NodeKind::kLandingPoint,
                                true});
    atlantic_ = add_cable("atlantic", ny_, bude_);
    europe_ = add_cable("europe", bude_, lisbon_);
    south_ = add_cable("south", lisbon_, fortaleza_);
  }

  topo::CableId add_cable(const char* name, topo::NodeId a, topo::NodeId b) {
    topo::Cable c;
    c.name = name;
    c.segments = {{a, b, 5000.0}};
    return net_.add_cable(std::move(c));
  }

  topo::InfrastructureNetwork net_;
  topo::NodeId ny_{}, bude_{}, lisbon_{}, fortaleza_{};
  topo::CableId atlantic_{}, europe_{}, south_{};
};

TEST_F(PartitionTest, NoFailuresIsFullyConnected) {
  const PartitionReport r =
      analyze_partition(net_, std::vector<bool>(3, false));
  EXPECT_EQ(r.components, 1u);
  EXPECT_EQ(r.isolated_nodes, 0u);
  EXPECT_DOUBLE_EQ(r.largest_component_share, 1.0);
  EXPECT_TRUE(r.continents_linked(geo::Continent::kNorthAmerica,
                                  geo::Continent::kEurope));
  EXPECT_TRUE(r.continents_linked(geo::Continent::kNorthAmerica,
                                  geo::Continent::kSouthAmerica));
}

TEST_F(PartitionTest, AtlanticCutSplitsNorthAmerica) {
  std::vector<bool> dead(3, false);
  dead[atlantic_] = true;
  const PartitionReport r = analyze_partition(net_, dead);
  // NY lost its only cable -> isolated; the rest stay connected.
  EXPECT_EQ(r.isolated_nodes, 1u);
  EXPECT_EQ(r.components, 1u);
  EXPECT_FALSE(r.continents_linked(geo::Continent::kNorthAmerica,
                                   geo::Continent::kEurope));
  EXPECT_TRUE(r.continents_linked(geo::Continent::kEurope,
                                  geo::Continent::kSouthAmerica));
}

TEST_F(PartitionTest, MiddleCutCreatesTwoComponents) {
  std::vector<bool> dead(3, false);
  dead[europe_] = true;
  const PartitionReport r = analyze_partition(net_, dead);
  EXPECT_EQ(r.components, 2u);
  EXPECT_EQ(r.isolated_nodes, 0u);
  EXPECT_DOUBLE_EQ(r.largest_component_share, 0.5);
  EXPECT_TRUE(r.continents_linked(geo::Continent::kNorthAmerica,
                                  geo::Continent::kEurope));
  EXPECT_FALSE(r.continents_linked(geo::Continent::kNorthAmerica,
                                   geo::Continent::kSouthAmerica));
  // Lisbon (EU) and Fortaleza (SA) remain linked.
  EXPECT_TRUE(r.continents_linked(geo::Continent::kEurope,
                                  geo::Continent::kSouthAmerica));
}

TEST_F(PartitionTest, TotalCollapse) {
  const PartitionReport r =
      analyze_partition(net_, std::vector<bool>(3, true));
  EXPECT_EQ(r.components, 0u);
  EXPECT_EQ(r.isolated_nodes, 4u);
  EXPECT_DOUBLE_EQ(r.largest_component_share, 0.0);
  EXPECT_FALSE(r.continents_linked(geo::Continent::kEurope,
                                   geo::Continent::kEurope));
}

TEST_F(PartitionTest, RenderContainsMatrix) {
  const PartitionReport r =
      analyze_partition(net_, std::vector<bool>(3, false));
  const std::string text = render_partition(r);
  EXPECT_NE(text.find("components: 1"), std::string::npos);
  EXPECT_NE(text.find("North"), std::string::npos);
}

TEST_F(PartitionTest, SameContinentDiagonal) {
  std::vector<bool> dead(3, false);
  const PartitionReport r = analyze_partition(net_, dead);
  EXPECT_TRUE(
      r.continents_linked(geo::Continent::kEurope, geo::Continent::kEurope));
}

}  // namespace
}  // namespace solarnet::core
