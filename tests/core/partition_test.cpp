#include "core/partition.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "geo/regions.h"
#include "util/rng.h"

namespace solarnet::core {
namespace {

// Independent brute-force reference for the closed-form pairwise counts:
// hand-rolled union-find over alive cable segments, then an O(n^2) pair
// scan. Only used on small test networks.
struct BruteForce {
  std::vector<bool> surviving;          // cable-bearing, >=1 alive cable
  std::vector<std::size_t> root;        // union-find roots over alive cables
  std::size_t surviving_count = 0;
  std::size_t disconnected_pairs = 0;

  BruteForce(const topo::InfrastructureNetwork& net,
             const std::vector<bool>& cable_dead) {
    const std::size_t n = net.node_count();
    root.resize(n);
    for (std::size_t i = 0; i < n; ++i) root[i] = i;
    for (topo::CableId c = 0; c < net.cable_count(); ++c) {
      if (cable_dead[c]) continue;
      for (const topo::CableSegment& seg : net.cable(c).segments) {
        unite(seg.a, seg.b);
      }
    }
    surviving.assign(n, false);
    for (topo::NodeId v = 0; v < n; ++v) {
      bool any_alive = false;
      for (topo::CableId c : net.cables_at(v)) {
        if (!cable_dead[c]) any_alive = true;
      }
      if (!any_alive) continue;
      surviving[v] = true;
      ++surviving_count;
    }
    for (topo::NodeId a = 0; a < n; ++a) {
      if (!surviving[a]) continue;
      for (topo::NodeId b = a + 1; b < n; ++b) {
        if (surviving[b] && find(a) != find(b)) ++disconnected_pairs;
      }
    }
  }

  std::size_t find(std::size_t v) {
    while (root[v] != v) v = root[v] = root[root[v]];
    return v;
  }
  void unite(std::size_t a, std::size_t b) { root[find(a)] = find(b); }
};

// NY (NA) -- Bude (EU) -- Lisbon (EU) -- Fortaleza (SA) with three cables.
class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest() : net_("p") {
    ny_ = net_.add_node(
        {"NY", {40.7, -74.0}, "US", topo::NodeKind::kLandingPoint, true});
    bude_ = net_.add_node(
        {"Bude", {50.8, -4.5}, "GB", topo::NodeKind::kLandingPoint, true});
    lisbon_ = net_.add_node(
        {"Lisbon", {38.7, -9.1}, "PT", topo::NodeKind::kLandingPoint, true});
    fortaleza_ = net_.add_node({"Fortaleza",
                                {-3.7, -38.5},
                                "BR",
                                topo::NodeKind::kLandingPoint,
                                true});
    atlantic_ = add_cable("atlantic", ny_, bude_);
    europe_ = add_cable("europe", bude_, lisbon_);
    south_ = add_cable("south", lisbon_, fortaleza_);
  }

  topo::CableId add_cable(const char* name, topo::NodeId a, topo::NodeId b) {
    topo::Cable c;
    c.name = name;
    c.segments = {{a, b, 5000.0}};
    return net_.add_cable(std::move(c));
  }

  topo::InfrastructureNetwork net_;
  topo::NodeId ny_{}, bude_{}, lisbon_{}, fortaleza_{};
  topo::CableId atlantic_{}, europe_{}, south_{};
};

TEST_F(PartitionTest, NoFailuresIsFullyConnected) {
  const PartitionReport r =
      analyze_partition(net_, std::vector<bool>(3, false));
  EXPECT_EQ(r.components, 1u);
  EXPECT_EQ(r.isolated_nodes, 0u);
  EXPECT_DOUBLE_EQ(r.largest_component_share, 1.0);
  EXPECT_TRUE(r.continents_linked(geo::Continent::kNorthAmerica,
                                  geo::Continent::kEurope));
  EXPECT_TRUE(r.continents_linked(geo::Continent::kNorthAmerica,
                                  geo::Continent::kSouthAmerica));
}

TEST_F(PartitionTest, AtlanticCutSplitsNorthAmerica) {
  std::vector<bool> dead(3, false);
  dead[atlantic_] = true;
  const PartitionReport r = analyze_partition(net_, dead);
  // NY lost its only cable -> isolated; the rest stay connected.
  EXPECT_EQ(r.isolated_nodes, 1u);
  EXPECT_EQ(r.components, 1u);
  EXPECT_FALSE(r.continents_linked(geo::Continent::kNorthAmerica,
                                   geo::Continent::kEurope));
  EXPECT_TRUE(r.continents_linked(geo::Continent::kEurope,
                                  geo::Continent::kSouthAmerica));
}

TEST_F(PartitionTest, MiddleCutCreatesTwoComponents) {
  std::vector<bool> dead(3, false);
  dead[europe_] = true;
  const PartitionReport r = analyze_partition(net_, dead);
  EXPECT_EQ(r.components, 2u);
  EXPECT_EQ(r.isolated_nodes, 0u);
  EXPECT_DOUBLE_EQ(r.largest_component_share, 0.5);
  EXPECT_TRUE(r.continents_linked(geo::Continent::kNorthAmerica,
                                  geo::Continent::kEurope));
  EXPECT_FALSE(r.continents_linked(geo::Continent::kNorthAmerica,
                                   geo::Continent::kSouthAmerica));
  // Lisbon (EU) and Fortaleza (SA) remain linked.
  EXPECT_TRUE(r.continents_linked(geo::Continent::kEurope,
                                  geo::Continent::kSouthAmerica));
}

TEST_F(PartitionTest, TotalCollapse) {
  const PartitionReport r =
      analyze_partition(net_, std::vector<bool>(3, true));
  EXPECT_EQ(r.components, 0u);
  EXPECT_EQ(r.isolated_nodes, 4u);
  EXPECT_DOUBLE_EQ(r.largest_component_share, 0.0);
  EXPECT_FALSE(r.continents_linked(geo::Continent::kEurope,
                                   geo::Continent::kEurope));
}

TEST_F(PartitionTest, RenderContainsMatrix) {
  const PartitionReport r =
      analyze_partition(net_, std::vector<bool>(3, false));
  const std::string text = render_partition(r);
  EXPECT_NE(text.find("components: 1"), std::string::npos);
  EXPECT_NE(text.find("North"), std::string::npos);
}

TEST_F(PartitionTest, DisconnectedPairsOnFixture) {
  // Intact line: 4 surviving nodes, all connected.
  const PartitionReport intact =
      analyze_partition(net_, std::vector<bool>(3, false));
  EXPECT_EQ(intact.surviving_nodes, 4u);
  EXPECT_EQ(intact.disconnected_pairs, 0u);

  // Middle cut: {NY, Bude} vs {Lisbon, Fortaleza} -> 2*2 severed pairs.
  std::vector<bool> dead(3, false);
  dead[europe_] = true;
  const PartitionReport split = analyze_partition(net_, dead);
  EXPECT_EQ(split.surviving_nodes, 4u);
  EXPECT_EQ(split.disconnected_pairs, 4u);

  // Atlantic cut: NY drops out entirely; the surviving trio stays whole.
  dead.assign(3, false);
  dead[atlantic_] = true;
  const PartitionReport spur = analyze_partition(net_, dead);
  EXPECT_EQ(spur.surviving_nodes, 3u);
  EXPECT_EQ(spur.disconnected_pairs, 0u);

  const PartitionReport collapse =
      analyze_partition(net_, std::vector<bool>(3, true));
  EXPECT_EQ(collapse.surviving_nodes, 0u);
  EXPECT_EQ(collapse.disconnected_pairs, 0u);
}

TEST_F(PartitionTest, RenderMentionsDisconnectedPairs) {
  std::vector<bool> dead(3, false);
  dead[europe_] = true;
  const std::string text = render_partition(analyze_partition(net_, dead));
  EXPECT_NE(text.find("disconnected pairs: 4"), std::string::npos);
}

// The closed-form (S^2 - sum n_i^2) / 2 count and the bitmask continent
// matrix must agree with a brute-force O(n^2) scan on random networks.
TEST(PartitionProperty, ClosedFormMatchesBruteForce) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    util::Rng rng(seed);
    const std::size_t nodes = 10 + rng.uniform_below(25);
    const std::size_t cables = 8 + rng.uniform_below(40);
    topo::InfrastructureNetwork net("brute");
    for (std::size_t i = 0; i < nodes; ++i) {
      net.add_node({"n" + std::to_string(i),
                    {rng.uniform(-70.0, 70.0), rng.uniform(-180.0, 180.0)},
                    "",
                    topo::NodeKind::kLandingPoint,
                    true});
    }
    for (std::size_t i = 0; i < cables; ++i) {
      const auto a = static_cast<topo::NodeId>(rng.uniform_below(nodes));
      auto b = static_cast<topo::NodeId>(rng.uniform_below(nodes));
      if (b == a) b = (b + 1) % nodes;
      topo::Cable cable;
      cable.name = "c" + std::to_string(i);
      cable.segments = {{a, b, rng.uniform(40.0, 4000.0)}};
      net.add_cable(std::move(cable));
    }
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<bool> dead(net.cable_count(), false);
      for (std::size_t c = 0; c < dead.size(); ++c) {
        dead[c] = rng.bernoulli(0.4);
      }
      const PartitionReport report = analyze_partition(net, dead);
      BruteForce brute(net, dead);
      EXPECT_EQ(report.surviving_nodes, brute.surviving_count);
      EXPECT_EQ(report.disconnected_pairs, brute.disconnected_pairs);

      // Continent matrix via the old quadratic definition: continents a, b
      // are linked iff some surviving pair (one node on each) shares a
      // component (diagonal: any surviving node links its own continent).
      decltype(report.continent_connected) expected{};
      for (topo::NodeId x = 0; x < net.node_count(); ++x) {
        if (!brute.surviving[x]) continue;
        const auto cx =
            static_cast<std::size_t>(geo::continent_at(net.node(x).location));
        expected[cx][cx] = true;
        for (topo::NodeId y = 0; y < net.node_count(); ++y) {
          if (!brute.surviving[y] || brute.find(x) != brute.find(y)) continue;
          const auto cy =
              static_cast<std::size_t>(geo::continent_at(net.node(y).location));
          expected[cx][cy] = true;
        }
      }
      EXPECT_EQ(report.continent_connected, expected);
    }
  }
}

TEST_F(PartitionTest, SameContinentDiagonal) {
  std::vector<bool> dead(3, false);
  const PartitionReport r = analyze_partition(net_, dead);
  EXPECT_TRUE(
      r.continents_linked(geo::Continent::kEurope, geo::Continent::kEurope));
}

}  // namespace
}  // namespace solarnet::core
