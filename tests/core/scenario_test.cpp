#include "core/scenario.h"

#include <gtest/gtest.h>

namespace solarnet::core {
namespace {

const World& light_world() {
  static const World w = [] {
    WorldConfig cfg;
    cfg.submarine.total_cables = 150;
    cfg.submarine.target_landing_points = 350;
    cfg.submarine.cables_without_length = 5;
    cfg.intertubes.total_links = 120;
    cfg.intertubes.target_nodes = 70;
    cfg.intertubes.short_links = 55;
    cfg.build_itu = false;
    cfg.build_routers = false;
    cfg.build_population = false;
    cfg.dns.instance_count = 120;
    cfg.ixps.count = 50;
    return World::generate(cfg);
  }();
  return w;
}

TEST(ScenarioRunner, RunProducesFullReport) {
  const ScenarioRunner runner(light_world());
  ScenarioOptions opts;
  opts.trials = 5;
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const analysis::ResilienceReport report = runner.run(s1, opts);

  EXPECT_NE(report.title.find("S1"), std::string::npos);
  EXPECT_EQ(report.length_summaries.size(), 2u);  // no ITU in light world
  EXPECT_EQ(report.failure_results.size(), 2u);
  EXPECT_EQ(report.countries.size(), opts.countries.size());
  EXPECT_EQ(report.datacenter_footprints.size(), 2u);
  EXPECT_TRUE(report.has_dns);
  EXPECT_FALSE(report.render().empty());
}

TEST(ScenarioRunner, SubmarineSuffersMoreThanLand) {
  // The paper's core claim, via the façade: submarine cable failures exceed
  // land failures under the same model.
  const ScenarioRunner runner(light_world());
  ScenarioOptions opts;
  opts.trials = 20;
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const auto report = runner.run(s1, opts);
  double submarine = -1.0;
  double land = -1.0;
  for (const auto& r : report.failure_results) {
    if (r.model_name.find("[submarine]") != std::string::npos) {
      submarine = r.cables_failed_mean_pct;
    }
    if (r.model_name.find("[intertubes]") != std::string::npos) {
      land = r.cables_failed_mean_pct;
    }
  }
  ASSERT_GE(submarine, 0.0);
  ASSERT_GE(land, 0.0);
  EXPECT_GT(submarine, land);
}

TEST(ScenarioRunner, StormVariant) {
  const ScenarioRunner runner(light_world());
  ScenarioOptions opts;
  opts.trials = 5;
  const auto report = runner.run_storm(gic::carrington_1859(), opts);
  EXPECT_NE(report.title.find("Carrington"), std::string::npos);
  EXPECT_FALSE(report.failure_results.empty());
}

TEST(ScenarioRunner, StrongerStormDoesMoreDamage) {
  const ScenarioRunner runner(light_world());
  ScenarioOptions opts;
  opts.trials = 10;
  const auto strong = runner.run_storm(gic::carrington_1859(), opts);
  const auto weak = runner.run_storm(gic::moderate_storm(), opts);
  EXPECT_GE(strong.failure_results[0].cables_failed_mean_pct,
            weak.failure_results[0].cables_failed_mean_pct);
}

TEST(ScenarioRunner, RenderedReportContainsEverySection) {
  const ScenarioRunner runner(light_world());
  ScenarioOptions opts;
  opts.trials = 3;
  const std::string text =
      runner.run(gic::LatitudeBandFailureModel::s2(), opts).render();
  for (const char* section :
       {"Cable length / repeater inventory", "Failure simulation",
        "Country connectivity", "Hyperscale data center footprints",
        "DNS root servers"}) {
    EXPECT_NE(text.find(section), std::string::npos) << section;
  }
}

TEST(ScenarioRunner, SpacingFlowsThroughToSummaries) {
  const ScenarioRunner runner(light_world());
  ScenarioOptions wide;
  wide.trials = 2;
  wide.repeater_spacing_km = 150.0;
  ScenarioOptions tight = wide;
  tight.repeater_spacing_km = 50.0;
  const auto m = gic::UniformFailureModel(0.01);
  const auto r_wide = runner.run(m, wide);
  const auto r_tight = runner.run(m, tight);
  EXPECT_GT(r_tight.length_summaries[0].avg_repeaters_per_cable,
            r_wide.length_summaries[0].avg_repeaters_per_cable);
}

TEST(ScenarioRunner, CustomCountryList) {
  const ScenarioRunner runner(light_world());
  ScenarioOptions opts;
  opts.trials = 2;
  opts.countries = {"SG"};
  const auto report = runner.run(gic::UniformFailureModel(0.01), opts);
  ASSERT_EQ(report.countries.size(), 1u);
  EXPECT_EQ(report.countries[0].country, "SG");
}

}  // namespace
}  // namespace solarnet::core
