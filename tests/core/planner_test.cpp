#include "core/planner.h"

#include <gtest/gtest.h>

#include "datasets/submarine.h"

namespace solarnet::core {
namespace {

// A minimal world where the US-Europe corridor is one risky northern cable
// and Brazil offers a low-latitude alternative.
topo::InfrastructureNetwork tiny_net() {
  topo::InfrastructureNetwork net("tiny");
  net.add_node({"NY", {40.7, -74.0}, "US", topo::NodeKind::kLandingPoint,
                true});
  net.add_node({"Miami", {25.8, -80.2}, "US", topo::NodeKind::kLandingPoint,
                true});
  net.add_node({"Bude", {50.8, -4.5}, "GB", topo::NodeKind::kLandingPoint,
                true});
  net.add_node({"Lisbon", {38.7, -9.1}, "PT", topo::NodeKind::kLandingPoint,
                true});
  topo::Cable c;
  c.name = "northern";
  c.segments = {{*net.find_node("NY"), *net.find_node("Bude"), 6000.0}};
  net.add_cable(std::move(c));
  return net;
}

TEST(TopologyPlanner, CandidateReducesCorridorRisk) {
  const TopologyPlanner planner(tiny_net(), {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const CandidateEvaluation eval = planner.evaluate(
      {"Miami", "Lisbon", 0.0}, s1, {"US"}, {"GB", "PT"});
  EXPECT_GT(eval.corridor_cutoff_before, 0.9);  // one mid-band cable
  EXPECT_LT(eval.corridor_cutoff_after, eval.corridor_cutoff_before);
  EXPECT_GT(eval.risk_reduction(), 0.0);
  EXPECT_GT(eval.length_km, 5000.0);  // Miami-Lisbon is transatlantic
  EXPECT_GT(eval.death_probability, 0.0);
  EXPECT_LT(eval.death_probability, 1.0);
}

TEST(TopologyPlanner, LowLatitudeBeatsNorthernCandidate) {
  const TopologyPlanner planner(tiny_net(), {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const auto ranked = planner.rank(
      {{"NY", "Bude", 0.0}, {"Miami", "Lisbon", 0.0}}, s1, {"US"},
      {"GB", "PT"});
  ASSERT_EQ(ranked.size(), 2u);
  // The low-latitude Miami-Lisbon candidate must rank first: its own
  // death probability is lower (low band), so it protects the corridor
  // better than a second northern cable.
  EXPECT_EQ(ranked[0].candidate.from_node, "Miami");
  EXPECT_GE(ranked[0].risk_reduction(), ranked[1].risk_reduction());
}

TEST(TopologyPlanner, ExplicitLengthRespected) {
  const TopologyPlanner planner(tiny_net(), {});
  const auto s2 = gic::LatitudeBandFailureModel::s2();
  const CandidateEvaluation eval = planner.evaluate(
      {"Miami", "Lisbon", 9000.0}, s2, {"US"}, {"PT"});
  EXPECT_DOUBLE_EQ(eval.length_km, 9000.0);
}

TEST(TopologyPlanner, UnknownEndpointThrows) {
  const TopologyPlanner planner(tiny_net(), {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  EXPECT_THROW(
      planner.evaluate({"Atlantis", "Lisbon", 0.0}, s1, {"US"}, {"PT"}),
      std::invalid_argument);
}

TEST(TopologyPlanner, DefaultCandidatesResolveOnDefaultNetwork) {
  const auto net = datasets::make_submarine_network({});
  for (const CandidateCable& c :
       TopologyPlanner::default_low_latitude_candidates()) {
    EXPECT_TRUE(net.find_node(c.from_node).has_value()) << c.from_node;
    EXPECT_TRUE(net.find_node(c.to_node).has_value()) << c.to_node;
  }
}

TEST(WithCable, AugmentsACopy) {
  const auto base = tiny_net();
  double length = 0.0;
  const auto augmented =
      with_cable(base, {"Miami", "Lisbon", 0.0}, &length);
  EXPECT_EQ(augmented.cable_count(), base.cable_count() + 1);
  EXPECT_EQ(augmented.node_count(), base.node_count());
  EXPECT_GT(length, 5000.0);
  EXPECT_NEAR(augmented.cable(augmented.cable_count() - 1).total_length_km(),
              length, 1e-9);
  // Explicit lengths pass through untouched.
  const auto fixed = with_cable(base, {"Miami", "Lisbon", 1234.0});
  EXPECT_DOUBLE_EQ(fixed.cable(fixed.cable_count() - 1).total_length_km(),
                   1234.0);
  EXPECT_THROW(with_cable(base, {"Nowhere", "Lisbon", 0.0}),
               std::invalid_argument);
}

TEST(TopologyPlanner, ArcticCandidatesResolveOnDefaultNetwork) {
  const auto net = datasets::make_submarine_network({});
  for (const CandidateCable& c : TopologyPlanner::arctic_candidates()) {
    EXPECT_TRUE(net.find_node(c.from_node).has_value()) << c.from_node;
    EXPECT_TRUE(net.find_node(c.to_node).has_value()) << c.to_node;
    EXPECT_GT(c.length_km, 10000.0);  // trans-Arctic scale
  }
}

TEST(TopologyPlanner, BaseNetworkUnchangedByEvaluation) {
  const auto base = tiny_net();
  const TopologyPlanner planner(base, {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  planner.evaluate({"Miami", "Lisbon", 0.0}, s1, {"US"}, {"PT"});
  // Evaluating again gives identical "before" — no state leaked.
  const auto e1 = planner.evaluate({"Miami", "Lisbon", 0.0}, s1, {"US"},
                                   {"GB", "PT"});
  const auto e2 = planner.evaluate({"Miami", "Lisbon", 0.0}, s1, {"US"},
                                   {"GB", "PT"});
  EXPECT_DOUBLE_EQ(e1.corridor_cutoff_before, e2.corridor_cutoff_before);
  EXPECT_DOUBLE_EQ(e1.corridor_cutoff_after, e2.corridor_cutoff_after);
}

}  // namespace
}  // namespace solarnet::core
