#include "core/mitigation.h"

#include <gtest/gtest.h>

#include "datasets/submarine.h"

namespace solarnet::core {
namespace {

const topo::InfrastructureNetwork& small_net() {
  static const auto net = [] {
    datasets::SubmarineConfig cfg;
    cfg.total_cables = 150;
    cfg.target_landing_points = 380;
    cfg.cables_without_length = 0;
    return datasets::make_submarine_network(cfg);
  }();
  return net;
}

MitigationPlan default_plan() {
  MitigationPlan plan;
  plan.candidate_cables = TopologyPlanner::default_low_latitude_candidates();
  plan.cables_to_build = 2;
  return plan;
}

TEST(Mitigation, PackageReducesCorridorRisk) {
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const MitigationReport r =
      evaluate_mitigation(small_net(), s1, default_plan());
  EXPECT_EQ(r.cables_built.size(), 2u);
  EXPECT_LE(r.corridor_cutoff_after, r.corridor_cutoff_before + 1e-12);
  EXPECT_GE(r.corridor_risk_reduction(), 0.0);
  EXPECT_GE(r.expected_cables_saved(), 0.0);
}

TEST(Mitigation, BuildingMoreCablesHelpsMore) {
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  MitigationPlan small = default_plan();
  small.cables_to_build = 1;
  MitigationPlan big = default_plan();
  big.cables_to_build = 4;
  const auto r_small = evaluate_mitigation(small_net(), s1, small);
  const auto r_big = evaluate_mitigation(small_net(), s1, big);
  EXPECT_LE(r_big.corridor_cutoff_after, r_small.corridor_cutoff_after + 1e-12);
  EXPECT_EQ(r_big.cables_built.size(), 4u);
}

TEST(Mitigation, ServiceAvailabilityEvaluatedWhenGiven) {
  const auto s2 = gic::LatitudeBandFailureModel::s2();
  MitigationPlan plan = default_plan();
  plan.has_service = true;
  plan.service = services::ServiceSpec{
      "global",
      {{40.7, -74.0}, {50.1, 8.7}, {1.35, 103.8}, {-23.5, -46.6}},
      1};
  MitigationOptions opts;
  opts.availability_draws = 5;
  const auto r = evaluate_mitigation(small_net(), s2, plan, opts);
  EXPECT_GT(r.service_availability_before, 0.0);
  EXPECT_GT(r.service_availability_after, 0.0);
  // The augmented network can only help (same seed, more redundancy).
  EXPECT_GE(r.service_availability_after,
            r.service_availability_before - 0.15);
}

TEST(Mitigation, NoServiceMeansZeroAvailabilityFields) {
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const auto r = evaluate_mitigation(small_net(), s1, default_plan());
  EXPECT_DOUBLE_EQ(r.service_availability_before, 0.0);
  EXPECT_DOUBLE_EQ(r.service_availability_after, 0.0);
}

TEST(Mitigation, UnknownCandidateEndpointThrows) {
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  MitigationPlan plan;
  plan.candidate_cables = {{"Atlantis", "Lisbon", 0.0}};
  plan.cables_to_build = 1;
  EXPECT_THROW(evaluate_mitigation(small_net(), s1, plan),
               std::invalid_argument);
}

TEST(Mitigation, BaseNetworkUntouched) {
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const std::size_t cables_before = small_net().cable_count();
  evaluate_mitigation(small_net(), s1, default_plan());
  EXPECT_EQ(small_net().cable_count(), cables_before);
}

}  // namespace
}  // namespace solarnet::core
