#include "core/world.h"

#include <gtest/gtest.h>

namespace solarnet::core {
namespace {

WorldConfig light_config() {
  WorldConfig cfg;
  cfg.submarine.total_cables = 120;
  cfg.submarine.target_landing_points = 300;
  cfg.submarine.cables_without_length = 5;
  cfg.intertubes.total_links = 100;
  cfg.intertubes.target_nodes = 60;
  cfg.intertubes.short_links = 45;
  cfg.itu.total_links = 300;
  cfg.itu.target_nodes = 290;
  cfg.itu.short_links = 210;
  cfg.routers.router_count = 3000;
  cfg.routers.as_count = 300;
  cfg.ixps.count = 60;
  cfg.dns.instance_count = 80;
  cfg.population.cell_deg = 5.0;
  return cfg;
}

TEST(World, GeneratesAllDatasets) {
  const World w = World::generate(light_config());
  EXPECT_EQ(w.submarine().cable_count(), 120u);
  EXPECT_EQ(w.intertubes().cable_count(), 100u);
  ASSERT_TRUE(w.has_itu());
  EXPECT_EQ(w.itu().cable_count(), 300u);
  ASSERT_TRUE(w.has_routers());
  EXPECT_EQ(w.routers().router_count(), 3000u);
  EXPECT_EQ(w.ixps().size(), 60u);
  EXPECT_EQ(w.dns_roots().size(), 80u);
  ASSERT_TRUE(w.has_population());
  EXPECT_GT(w.population().total(), 0.0);
}

TEST(World, OptionalPartsCanBeSkipped) {
  WorldConfig cfg = light_config();
  cfg.build_itu = false;
  cfg.build_routers = false;
  cfg.build_population = false;
  const World w = World::generate(cfg);
  EXPECT_FALSE(w.has_itu());
  EXPECT_FALSE(w.has_routers());
  EXPECT_FALSE(w.has_population());
  EXPECT_THROW(w.itu(), std::logic_error);
  EXPECT_THROW(w.routers(), std::logic_error);
  EXPECT_THROW(w.population(), std::logic_error);
}

TEST(World, MoveSemantics) {
  World w = World::generate(light_config());
  const std::size_t cables = w.submarine().cable_count();
  World moved = std::move(w);
  EXPECT_EQ(moved.submarine().cable_count(), cables);
}

}  // namespace
}  // namespace solarnet::core
