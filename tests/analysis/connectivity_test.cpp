#include "analysis/connectivity.h"

#include <gtest/gtest.h>

namespace solarnet::analysis {
namespace {

topo::InfrastructureNetwork make_net() {
  topo::InfrastructureNetwork net("conn");
  const auto a = net.add_node(
      {"A", {65.0, 0.0}, "", topo::NodeKind::kLandingPoint, true});
  const auto b = net.add_node(
      {"B", {55.0, 0.0}, "", topo::NodeKind::kLandingPoint, true});
  const auto c = net.add_node(
      {"C", {0.0, 0.0}, "", topo::NodeKind::kLandingPoint, true});
  const auto d = net.add_node(
      {"D", {0.0, 20.0}, "", topo::NodeKind::kLandingPoint, true});
  topo::Cable high;
  high.name = "high";
  high.segments = {{a, b, 3000.0}};
  net.add_cable(std::move(high));
  topo::Cable low;
  low.name = "low";
  low.segments = {{c, d, 3000.0}};
  net.add_cable(std::move(low));
  return net;
}

TEST(UniformSweep, MonotoneInProbability) {
  const auto net = make_net();
  const sim::FailureSimulator simulator(net, {});
  const std::vector<double> probs = {0.001, 0.01, 0.1, 1.0};
  const auto sweep = uniform_failure_sweep(simulator, probs, 30, 11);
  ASSERT_EQ(sweep.size(), 4u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].cables_failed_mean_pct,
              sweep[i - 1].cables_failed_mean_pct - 1.0);
    EXPECT_GE(sweep[i].nodes_unreachable_mean_pct,
              sweep[i - 1].nodes_unreachable_mean_pct - 1.0);
  }
  EXPECT_DOUBLE_EQ(sweep.back().cables_failed_mean_pct, 100.0);
  EXPECT_DOUBLE_EQ(sweep.back().nodes_unreachable_mean_pct, 100.0);
}

TEST(UniformSweep, RecordsProbability) {
  const auto net = make_net();
  const sim::FailureSimulator simulator(net, {});
  const std::vector<double> probs = {0.05};
  const auto sweep = uniform_failure_sweep(simulator, probs, 10, 1);
  EXPECT_DOUBLE_EQ(sweep[0].repeater_failure_probability, 0.05);
  EXPECT_GE(sweep[0].cables_failed_sd_pct, 0.0);
}

TEST(DefaultProbabilityGrid, SpansPaperRange) {
  const auto grid = default_probability_grid();
  EXPECT_DOUBLE_EQ(grid.front(), 0.001);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
}

TEST(BandRun, S1HitsHighLatitudeCable) {
  const auto net = make_net();
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const BandSweepResult r = band_failure_run(net, s1, 150.0, 20, 5);
  // The high cable (max lat 65) dies with certainty under S1;
  // the low cable at p=0.01/repeater dies rarely.
  EXPECT_GT(r.cables_failed_mean_pct, 45.0);
  EXPECT_LT(r.cables_failed_mean_pct, 80.0);
  EXPECT_EQ(r.spacing_km, 150.0);
  EXPECT_FALSE(r.model_name.empty());
}

TEST(BandRun, S2WeakerThanS1) {
  const auto net = make_net();
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const auto s2 = gic::LatitudeBandFailureModel::s2();
  const BandSweepResult r1 = band_failure_run(net, s1, 150.0, 50, 5);
  const BandSweepResult r2 = band_failure_run(net, s2, 150.0, 50, 5);
  EXPECT_GT(r1.cables_failed_mean_pct, r2.cables_failed_mean_pct);
}

TEST(BandRun, TighterSpacingIncreasesFailures) {
  const auto net = make_net();
  const auto s2 = gic::LatitudeBandFailureModel::s2();
  const BandSweepResult wide = band_failure_run(net, s2, 150.0, 100, 5);
  const BandSweepResult tight = band_failure_run(net, s2, 50.0, 100, 5);
  EXPECT_GE(tight.cables_failed_mean_pct, wide.cables_failed_mean_pct);
}

}  // namespace
}  // namespace solarnet::analysis
