#include "analysis/dns_resolution.h"

#include <gtest/gtest.h>

#include "datasets/submarine.h"
#include "sim/monte_carlo.h"

namespace solarnet::analysis {
namespace {

// NY (NA) - Bude (EU) - Singapore (AS) line, as in the services tests.
class DnsResolutionTest : public ::testing::Test {
 protected:
  DnsResolutionTest() : net_("dns") {
    ny_ = add_node("NY", {40.7, -74.0}, "US");
    bude_ = add_node("Bude", {50.8, -4.5}, "GB");
    sg_ = add_node("Singapore", {1.35, 103.8}, "SG");
    atl_ = add_cable("atl", ny_, bude_);
    asia_ = add_cable("asia", bude_, sg_);
  }
  topo::NodeId add_node(const char* name, geo::GeoPoint p, const char* cc) {
    return net_.add_node({name, p, cc, topo::NodeKind::kLandingPoint, true});
  }
  topo::CableId add_cable(const char* name, topo::NodeId a, topo::NodeId b) {
    topo::Cable c;
    c.name = name;
    c.segments = {{a, b, 6000.0}};
    return net_.add_cable(std::move(c));
  }
  std::vector<datasets::DnsRootInstance> two_letters() const {
    return {
        {'a', {40.7, -74.0}, "US", geo::Continent::kNorthAmerica},
        {'b', {1.35, 103.8}, "SG", geo::Continent::kAsia},
    };
  }
  topo::InfrastructureNetwork net_;
  topo::NodeId ny_{}, bude_{}, sg_{};
  topo::CableId atl_{}, asia_{};
};

TEST_F(DnsResolutionTest, HealthyNetworkResolvesEverywhere) {
  const std::vector<bool> none(net_.cable_count(), false);
  const auto r = evaluate_dns_resolution(net_, none, two_letters());
  EXPECT_DOUBLE_EQ(r.resolution_availability, 1.0);
  EXPECT_NEAR(r.mean_letters_reachable, 2.0, 1e-9);
}

TEST_F(DnsResolutionTest, PartitionReducesLettersNotResolution) {
  // Cut the Asia leg: both sides still have one root instance each, so
  // anycast resolution survives everywhere, but each side sees only one
  // letter.
  std::vector<bool> dead(net_.cable_count(), false);
  dead[asia_] = true;
  const auto r = evaluate_dns_resolution(net_, dead, two_letters());
  EXPECT_DOUBLE_EQ(r.resolution_availability, 1.0);
  EXPECT_NEAR(r.mean_letters_reachable, 1.0, 1e-9);
}

TEST_F(DnsResolutionTest, LosingOnlyRegionalRootStrandsTheRest) {
  // Only one root letter, hosted in NA; cut the Atlantic: the NY island
  // (serving the NA and, in this toy net, SA anchors) keeps local
  // resolution, everything east of it loses it.
  const std::vector<datasets::DnsRootInstance> roots = {
      {'a', {40.7, -74.0}, "US", geo::Continent::kNorthAmerica}};
  std::vector<bool> dead(net_.cable_count(), false);
  dead[atl_] = true;
  const auto r = evaluate_dns_resolution(net_, dead, roots);
  EXPECT_NEAR(r.resolution_availability, 0.075 + 0.055, 1e-9);
  for (const auto& pc : r.per_continent) {
    if (pc.continent == geo::Continent::kEurope ||
        pc.continent == geo::Continent::kAsia) {
      EXPECT_FALSE(pc.any_root_reachable);
    }
  }
}

TEST(DnsResolutionFullScale, RootStaysResolvableUnderS1) {
  // §4.4.3's conclusion at full scale: anycast + 1076 instances keep the
  // root resolvable for the vast majority of the population even under
  // the severe state.
  const auto net = datasets::make_submarine_network({});
  const auto roots = datasets::make_dns_dataset({});
  const sim::FailureSimulator simulator(net, {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  util::Rng rng(13);
  double availability = 0.0;
  double letters = 0.0;
  constexpr int kDraws = 10;
  for (int d = 0; d < kDraws; ++d) {
    const auto dead = simulator.sample_cable_failures(s1, rng);
    const auto r = evaluate_dns_resolution(net, dead, roots);
    availability += r.resolution_availability;
    letters += r.mean_letters_reachable;
  }
  EXPECT_GT(availability / kDraws, 0.7);
  EXPECT_GT(letters / kDraws, 5.0);
}

}  // namespace
}  // namespace solarnet::analysis
