#include "analysis/country.h"

#include <gtest/gtest.h>

#include <cmath>

namespace solarnet::analysis {
namespace {

// US <-> GB corridor with two cables; US <-> BR with one; GB-FR domestic-ish.
class CountryTest : public ::testing::Test {
 protected:
  CountryTest() : net_("country") {
    us1_ = net_.add_node(
        {"NY", {40.7, -74.0}, "US", topo::NodeKind::kLandingPoint, true});
    us2_ = net_.add_node(
        {"Miami", {25.8, -80.2}, "US", topo::NodeKind::kLandingPoint, true});
    gb_ = net_.add_node(
        {"Bude", {50.8, -4.5}, "GB", topo::NodeKind::kLandingPoint, true});
    fr_ = net_.add_node(
        {"Brest", {48.4, -4.5}, "FR", topo::NodeKind::kLandingPoint, true});
    br_ = net_.add_node(
        {"Fortaleza", {-3.7, -38.5}, "BR", topo::NodeKind::kLandingPoint,
         true});
    t1_ = add_cable("transatlantic-1", us1_, gb_, 6000.0);
    t2_ = add_cable("transatlantic-2", us1_, gb_, 6500.0);
    sa_ = add_cable("us-brazil", us2_, br_, 7000.0);
    eu_ = add_cable("gb-fr", gb_, fr_, 300.0);
  }

  topo::CableId add_cable(const char* name, topo::NodeId a, topo::NodeId b,
                          double len) {
    topo::Cable c;
    c.name = name;
    c.segments = {{a, b, len}};
    return net_.add_cable(std::move(c));
  }

  topo::InfrastructureNetwork net_;
  topo::NodeId us1_{}, us2_{}, gb_{}, fr_{}, br_{};
  topo::CableId t1_{}, t2_{}, sa_{}, eu_{};
};

TEST_F(CountryTest, InternationalCables) {
  const auto us = international_cables(net_, "US");
  EXPECT_EQ(us.size(), 3u);
  const auto gb = international_cables(net_, "GB");
  EXPECT_EQ(gb.size(), 3u);  // two transatlantic + gb-fr
  const auto br = international_cables(net_, "BR");
  ASSERT_EQ(br.size(), 1u);
  EXPECT_EQ(br[0], sa_);
  EXPECT_TRUE(international_cables(net_, "XX").empty());
}

TEST_F(CountryTest, CorridorCables) {
  const auto atlantic = corridor_cables(net_, {"US"}, {"GB", "FR"});
  EXPECT_EQ(atlantic.size(), 2u);
  const auto south = corridor_cables(net_, {"US"}, {"BR"});
  ASSERT_EQ(south.size(), 1u);
  EXPECT_EQ(south[0], sa_);
  EXPECT_TRUE(corridor_cables(net_, {"US"}, {"JP"}).empty());
}

TEST_F(CountryTest, CablesAtNamedNode) {
  EXPECT_EQ(cables_at_named_node(net_, "NY").size(), 2u);
  EXPECT_EQ(cables_at_named_node(net_, "Fortaleza").size(), 1u);
  EXPECT_TRUE(cables_at_named_node(net_, "Ghost").empty());
}

TEST_F(CountryTest, AllFailProbabilityIsProduct) {
  const sim::FailureSimulator simulator(net_, {});
  const gic::UniformFailureModel m(0.1);
  const double p1 = simulator.cable_death_probability(t1_, m);
  const double p2 = simulator.cable_death_probability(t2_, m);
  EXPECT_NEAR(all_fail_probability(simulator, m, {t1_, t2_}), p1 * p2, 1e-12);
  // Empty set: vacuously "all failed".
  EXPECT_DOUBLE_EQ(all_fail_probability(simulator, m, {}), 1.0);
}

TEST_F(CountryTest, ExpectedSurvivors) {
  const sim::FailureSimulator simulator(net_, {});
  const gic::UniformFailureModel m(0.1);
  const double p1 = simulator.cable_death_probability(t1_, m);
  const double p2 = simulator.cable_death_probability(t2_, m);
  EXPECT_NEAR(expected_survivors(simulator, m, {t1_, t2_}),
              (1 - p1) + (1 - p2), 1e-12);
}

TEST_F(CountryTest, RankCableRiskOrdersByDeathProbability) {
  const sim::FailureSimulator simulator(net_, {});
  const gic::UniformFailureModel m(0.05);
  const auto ranked = rank_cable_risk(simulator, m, {eu_, t1_, sa_});
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_GE(ranked[0].death_probability, ranked[1].death_probability);
  EXPECT_GE(ranked[1].death_probability, ranked[2].death_probability);
  // The short GB-FR cable (no repeaters needed at 150 over 300 km -> 2
  // repeaters actually) is the least at risk.
  EXPECT_EQ(ranked[2].cable, eu_);
}

TEST_F(CountryTest, CountryConnectivitySummary) {
  const sim::FailureSimulator simulator(net_, {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const auto us = country_connectivity(net_, simulator, s1, "US");
  EXPECT_EQ(us.country, "US");
  EXPECT_EQ(us.international_cable_count, 3u);
  EXPECT_GT(us.all_fail_probability, 0.0);
  EXPECT_GT(us.expected_surviving_cables, 0.0);

  // Brazil's single cable tops out below 40 deg -> low band -> it is far
  // likelier to survive than any single transatlantic cable.
  const auto br = country_connectivity(net_, simulator, s1, "BR");
  EXPECT_LT(br.all_fail_probability,
            simulator.cable_death_probability(t1_, s1));
  EXPECT_GT(br.expected_surviving_cables, 0.5);
}

TEST_F(CountryTest, PaperShapeUsEuropeVsBrazilEurope) {
  // §4.3.4's headline: the US loses Europe before Brazil does, because the
  // Brazil-Europe cable is shorter and lands lower.
  const sim::FailureSimulator simulator(net_, {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const double us_eu = all_fail_probability(
      simulator, s1, corridor_cables(net_, {"US"}, {"GB", "FR"}));
  const double us_br =
      all_fail_probability(simulator, s1, corridor_cables(net_, {"US"}, {"BR"}));
  EXPECT_GT(us_eu, us_br);
}

}  // namespace
}  // namespace solarnet::analysis
