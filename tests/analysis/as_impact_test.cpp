#include "analysis/as_impact.h"

#include <gtest/gtest.h>

namespace solarnet::analysis {
namespace {

datasets::RouterDataset tiny_routers() {
  using datasets::RouterRecord;
  std::vector<RouterRecord> records = {
      {{65.0, 10.0}, 0},  // AS0: far north (direct under any big storm)
      {{60.0, 12.0}, 0},
      {{5.0, 100.0}, 1},  // AS1: equatorial (clear)
      {{41.0, -74.0}, 2},  // AS2: NYC — dark grid under Carrington,
                           // below the direct-field threshold for
                           // high-boundary storms
  };
  return datasets::RouterDataset(std::move(records), 3);
}

TEST(AsImpact, ClassifiesByFieldAndGrid) {
  const gic::GeoelectricFieldModel field(gic::carrington_1859());
  const auto grid = powergrid::evaluate_grid(field);
  const auto ds = tiny_routers();
  const AsImpactSummary s = classify_as_impact(ds, field, grid);
  EXPECT_EQ(s.as_total, 3u);
  EXPECT_GE(s.direct, 1u);  // AS0 is deep in the field
  EXPECT_EQ(s.direct + s.grid_impacted + s.clear, s.as_total);
  EXPECT_NEAR(s.router_share_direct + s.router_share_grid +
                  s.router_share_clear,
              1.0, 1e-12);
}

TEST(AsImpact, EquatorialAsStaysClearUnderModerateStorm) {
  const gic::GeoelectricFieldModel field(gic::moderate_storm());
  const auto ds = tiny_routers();
  const AsImpactSummary s = classify_as_impact(ds, field, {});
  // AS1 (equator) and AS2 (NYC, below the moderate storm's 55-deg
  // boundary) are clear; AS0 (60-65N) is direct.
  EXPECT_EQ(s.direct, 1u);
  EXPECT_EQ(s.clear, 2u);
  EXPECT_EQ(s.grid_impacted, 0u);  // no grid passed
}

TEST(AsImpact, StrongerStormImpactsMore) {
  const auto ds = datasets::make_router_dataset(
      {.router_count = 20000, .as_count = 2000, .seed = 9});
  const gic::GeoelectricFieldModel weak(gic::moderate_storm());
  const gic::GeoelectricFieldModel strong(gic::carrington_1859());
  const auto sw = classify_as_impact(ds, weak, {});
  const auto ss = classify_as_impact(ds, strong, {});
  EXPECT_GT(ss.fraction_direct(), sw.fraction_direct());
  EXPECT_GT(ss.fraction_direct(), 0.3);  // most ASes live up north
}

TEST(AsImpact, GridCouplingOnlyAddsImpact) {
  const auto ds = datasets::make_router_dataset(
      {.router_count = 20000, .as_count = 2000, .seed = 9});
  const gic::GeoelectricFieldModel field(gic::carrington_1859());
  const auto without = classify_as_impact(ds, field, {});
  const auto grid = powergrid::evaluate_grid(field);
  const auto with = classify_as_impact(ds, field, grid);
  EXPECT_EQ(with.direct, without.direct);  // direct class unchanged
  EXPECT_LE(with.clear, without.clear);    // grid moves clear -> impacted
}

TEST(AsImpact, SpreadIncreasesDirectImpactProbability) {
  // §4.4.1: "with a large spread, it is likely that an AS will be
  // directly impacted".
  const auto ds = datasets::make_router_dataset(
      {.router_count = 50000, .as_count = 5000, .seed = 4});
  const gic::GeoelectricFieldModel field(gic::ny_railroad_1921());
  const double narrow = direct_impact_fraction_by_spread(ds, field, 0.0);
  const double wide = direct_impact_fraction_by_spread(ds, field, 20.0);
  EXPECT_GT(wide, narrow);
  EXPECT_GT(wide, 0.8);  // a 20-deg spread almost guarantees exposure
}

TEST(AsImpact, Validation) {
  const auto ds = tiny_routers();
  const gic::GeoelectricFieldModel field(gic::quebec_1989());
  AsImpactParams bad;
  bad.direct_field_fraction = 0.0;
  EXPECT_THROW(classify_as_impact(ds, field, {}, bad),
               std::invalid_argument);
  std::vector<powergrid::GridOutcome> wrong_size(3);
  EXPECT_THROW(classify_as_impact(ds, field, wrong_size),
               std::invalid_argument);
}

}  // namespace
}  // namespace solarnet::analysis
