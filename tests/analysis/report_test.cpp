#include "analysis/report.h"

#include <gtest/gtest.h>

namespace solarnet::analysis {
namespace {

TEST(ResilienceReport, EmptyReportRendersTitleOnly) {
  ResilienceReport r;
  r.title = "empty-report";
  const std::string text = r.render();
  EXPECT_NE(text.find("empty-report"), std::string::npos);
  EXPECT_EQ(text.find("Country connectivity"), std::string::npos);
  EXPECT_EQ(text.find("DNS"), std::string::npos);
}

TEST(ResilienceReport, AllSectionsRendered) {
  ResilienceReport r;
  r.title = "full";
  LengthSummary ls;
  ls.network = "submarine-x";
  ls.cables_with_length = 10;
  ls.median_km = 775.0;
  r.length_summaries.push_back(ls);
  r.failure_results.push_back(
      {"S1-model", 150.0, 43.0, 1.0, 20.0, 0.5});
  CountryConnectivity cc;
  cc.country = "US";
  cc.international_cable_count = 5;
  cc.all_fail_probability = 0.8;
  cc.expected_surviving_cables = 1.2;
  r.countries.push_back(cc);
  r.datacenter_footprints.push_back(
      summarize_datacenters(datasets::DataCenterOperator::kGoogle));
  r.dns = summarize_dns(datasets::make_dns_dataset({}));
  r.has_dns = true;

  const std::string text = r.render();
  EXPECT_NE(text.find("submarine-x"), std::string::npos);
  EXPECT_NE(text.find("S1-model"), std::string::npos);
  EXPECT_NE(text.find("US"), std::string::npos);
  EXPECT_NE(text.find("0.800"), std::string::npos);
  EXPECT_NE(text.find("Google"), std::string::npos);
  EXPECT_NE(text.find("root letters: 13"), std::string::npos);
}

TEST(ResilienceReport, NumbersFormattedWithExpectedPrecision) {
  ResilienceReport r;
  r.title = "t";
  r.failure_results.push_back({"m", 150.0, 14.86, 0.123, 11.71, 0.456});
  const std::string text = r.render();
  EXPECT_NE(text.find("14.9"), std::string::npos);  // 1 decimal
  EXPECT_NE(text.find("11.7"), std::string::npos);
}

}  // namespace
}  // namespace solarnet::analysis
