#include "analysis/systems.h"

#include <gtest/gtest.h>

#include <cmath>

namespace solarnet::analysis {
namespace {

TEST(DataCenterFootprints, GoogleBeatsFacebook) {
  // §4.4.2's conclusion: "Google data centers have a better spread ...
  // Facebook is more vulnerable."
  const FootprintSummary google =
      summarize_datacenters(datasets::DataCenterOperator::kGoogle);
  const FootprintSummary facebook =
      summarize_datacenters(datasets::DataCenterOperator::kFacebook);
  EXPECT_GT(google.continents_covered, facebook.continents_covered);
  EXPECT_GT(footprint_resilience_score(google),
            footprint_resilience_score(facebook));
}

TEST(DataCenterFootprints, FieldsPopulated) {
  const FootprintSummary g =
      summarize_datacenters(datasets::DataCenterOperator::kGoogle);
  EXPECT_EQ(g.label, "Google");
  EXPECT_GT(g.site_count, 0u);
  EXPECT_EQ(g.site_count,
            g.low_risk_sites +
                static_cast<std::size_t>(
                    std::lround(g.fraction_above_40 *
                                static_cast<double>(g.site_count))));
  EXPECT_GT(g.latitude_spread_deg, 50.0);  // Hamina to Chile
  std::size_t per_continent_total = 0;
  for (const auto& [cont, n] : g.per_continent) per_continent_total += n;
  EXPECT_EQ(per_continent_total, g.site_count);
}

TEST(ResilienceScore, EmptyFootprintIsZero) {
  EXPECT_DOUBLE_EQ(footprint_resilience_score(FootprintSummary{}), 0.0);
}

TEST(ResilienceScore, RewardsContinentsAndLowRisk) {
  FootprintSummary a;
  a.site_count = 10;
  a.continents_covered = 6;
  a.low_risk_sites = 10;
  EXPECT_DOUBLE_EQ(footprint_resilience_score(a), 1.0);
  FootprintSummary b;
  b.site_count = 10;
  b.continents_covered = 1;
  b.low_risk_sites = 0;
  EXPECT_NEAR(footprint_resilience_score(b), 1.0 / 12.0, 1e-12);
}

TEST(DnsSummary, DefaultDatasetIsResilient) {
  const auto roots = datasets::make_dns_dataset({});
  const DnsSummary s = summarize_dns(roots);
  EXPECT_EQ(s.instance_count, 1076u);
  EXPECT_EQ(s.root_letters, 13u);
  EXPECT_GE(s.continents_covered, 6u);
  // §4.4.3: DNS root servers are resilient — every letter survives a
  // |40 deg| cutoff thanks to geographic distribution.
  EXPECT_EQ(s.letters_surviving_40_cutoff, 13u);
  EXPECT_NEAR(s.fraction_above_40, 0.39, 0.08);
}

TEST(DnsSummary, HandBuiltCutoffBehaviour) {
  using datasets::DnsRootInstance;
  const std::vector<DnsRootInstance> roots = {
      {'a', {50.0, 0.0}, "GB", geo::Continent::kEurope},
      {'a', {10.0, 0.0}, "NG", geo::Continent::kAfrica},
      {'b', {60.0, 0.0}, "SE", geo::Continent::kEurope},
  };
  const DnsSummary s = summarize_dns(roots);
  EXPECT_EQ(s.instance_count, 3u);
  EXPECT_EQ(s.root_letters, 2u);
  // Letter 'b' only exists above 40 -> does not survive the cutoff.
  EXPECT_EQ(s.letters_surviving_40_cutoff, 1u);
  EXPECT_NEAR(s.fraction_above_40, 2.0 / 3.0, 1e-12);
}

TEST(DnsSummary, EmptyInput) {
  const DnsSummary s = summarize_dns({});
  EXPECT_EQ(s.instance_count, 0u);
  EXPECT_EQ(s.root_letters, 0u);
  EXPECT_DOUBLE_EQ(s.fraction_above_40, 0.0);
}

}  // namespace
}  // namespace solarnet::analysis
