#include "analysis/outage.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/timeline_engine.h"
#include "topology/network.h"
#include "util/rng.h"

namespace solarnet::analysis {
namespace {

// Deterministic three-country network:
//   US1 -- GB1   1500 km international cable (10 repeaters => mortal)
//   US1 -- US2   1500 km domestic cable      (mortal, but not international)
//   JP1 -- JP2   1500 km domestic cable — "JP" has NO international cables
// so US and GB each hang off exactly one international cable, and JP can
// never be cut off by the all-international-cables-down definition.
class OutageTest : public ::testing::Test {
 protected:
  OutageTest() : net_("outage") {
    const auto us1 = net_.add_node(
        {"US1", {40.0, -74.0}, "US", topo::NodeKind::kLandingPoint, true});
    const auto us2 = net_.add_node(
        {"US2", {34.0, -118.0}, "US", topo::NodeKind::kLandingPoint, true});
    const auto gb1 = net_.add_node(
        {"GB1", {51.0, 0.0}, "GB", topo::NodeKind::kLandingPoint, true});
    const auto jp1 = net_.add_node(
        {"JP1", {35.0, 139.0}, "JP", topo::NodeKind::kLandingPoint, true});
    const auto jp2 = net_.add_node(
        {"JP2", {34.0, 135.0}, "JP", topo::NodeKind::kLandingPoint, true});
    topo::Cable transatlantic;
    transatlantic.name = "us-gb";
    transatlantic.segments = {{us1, gb1, 1500.0}};
    intl_ = net_.add_cable(std::move(transatlantic));
    topo::Cable domestic;
    domestic.name = "us-us";
    domestic.segments = {{us1, us2, 1500.0}};
    net_.add_cable(std::move(domestic));
    topo::Cable japan;
    japan.name = "jp-jp";
    japan.segments = {{jp1, jp2, 1500.0}};
    net_.add_cable(std::move(japan));
  }

  sim::DeathProbabilityTable table(double p) const {
    sim::DeathProbabilityTable t;
    t.probability.assign(net_.cable_count(), p);
    return t;
  }

  static sim::TimelineConfig config() {
    sim::TimelineConfig c = sim::TimelineConfig::from_profile({}, 12.0);
    c.repair_steps = 8;
    c.repair_step_hours = 5.0 * 24.0;
    return c;
  }

  topo::InfrastructureNetwork net_;
  topo::CableId intl_{};
};

TEST_F(OutageTest, CertainFailureCutsOffBothEndsOfTheOnlyIntlCable) {
  const sim::FailureSimulator sim(net_, {});
  sim::TimelineEngine engine(sim, table(1.0), config());
  CountryOutageObserver observer(net_, {"US", "GB", "JP"});
  engine.add_observer(observer);
  const std::size_t trials = 24;
  engine.run(trials, 3);

  const auto& results = observer.results();
  ASSERT_EQ(results.size(), 3u);

  // With p = 1 every mortal cable fails at the first positive-dose step, so
  // the single transatlantic cable is down in every trial — both US and GB
  // are cut off every time, for the same interval (same cable).
  const sim::TimelineConfig cfg = config();
  std::size_t first_positive = 0;
  while (!(cfg.dose_share[first_positive] > 0.0)) ++first_positive;
  const double fail_hour = cfg.storm_hours[first_positive];

  for (std::size_t i = 0; i < 2; ++i) {
    const CountryOutageResult& r = results[i];
    EXPECT_EQ(r.international_cable_count, 1u);
    EXPECT_EQ(r.trials, trials);
    EXPECT_EQ(r.cutoff_trials, trials);
    EXPECT_EQ(r.cutoff_rate(), 1.0);
    // Cutoff opens when the cable fails...
    EXPECT_EQ(r.cutoff_start_hour.count(), trials);
    EXPECT_EQ(r.cutoff_start_hour.min(), fail_hour);
    EXPECT_EQ(r.cutoff_start_hour.max(), fail_hour);
    // ...and lasts until its restoration, which is after the storm ends.
    EXPECT_EQ(r.outage_hours.count(), trials);
    EXPECT_GT(r.outage_hours.min(), cfg.storm_hours.back() - fail_hour);
  }
  EXPECT_EQ(results[0].country, "US");
  EXPECT_EQ(results[1].country, "GB");
  // Same cable => identical interval for both countries.
  EXPECT_EQ(results[0].outage_hours.mean(), results[1].outage_hours.mean());

  // JP has no international cables — never registered as cut off, but its
  // zero-outage trials still count toward the distribution.
  const CountryOutageResult& jp = results[2];
  EXPECT_EQ(jp.country, "JP");
  EXPECT_EQ(jp.international_cable_count, 0u);
  EXPECT_EQ(jp.trials, trials);
  EXPECT_EQ(jp.cutoff_trials, 0u);
  EXPECT_EQ(jp.cutoff_rate(), 0.0);
  EXPECT_EQ(jp.outage_hours.mean(), 0.0);
}

TEST_F(OutageTest, ZeroProbabilityNeverCutsAnyoneOff) {
  const sim::FailureSimulator sim(net_, {});
  sim::TimelineEngine engine(sim, table(0.0), config());
  CountryOutageObserver observer(net_, {"US", "GB"});
  engine.add_observer(observer);
  engine.run(16, 9);
  for (const CountryOutageResult& r : observer.results()) {
    EXPECT_EQ(r.trials, 16u);
    EXPECT_EQ(r.cutoff_trials, 0u);
    EXPECT_EQ(r.outage_hours.count(), 16u);
    EXPECT_EQ(r.outage_hours.max(), 0.0);
    EXPECT_TRUE(r.cutoff_start_hour.empty());
  }
}

TEST_F(OutageTest, UnknownCountryHasNoCablesAndNoCutoffs) {
  const sim::FailureSimulator sim(net_, {});
  sim::TimelineEngine engine(sim, table(1.0), config());
  CountryOutageObserver observer(net_, {"FR"});
  engine.add_observer(observer);
  engine.run(8, 21);
  ASSERT_EQ(observer.results().size(), 1u);
  const CountryOutageResult& fr = observer.results().front();
  EXPECT_EQ(fr.international_cable_count, 0u);
  EXPECT_EQ(fr.trials, 8u);
  EXPECT_EQ(fr.cutoff_trials, 0u);
}

TEST_F(OutageTest, ResultsAreThreadCountInvariant) {
  const sim::FailureSimulator sim(net_, {});
  sim::TimelineEngine engine(sim, table(0.5), config());
  CountryOutageObserver observer(net_, {"US", "GB", "JP"});
  engine.add_observer(observer);

  const std::size_t trials = 77;  // spans multiple chunks, not a multiple
  std::vector<std::vector<CountryOutageResult>> runs;
  for (const std::size_t threads : {1u, 2u, 4u, 0u}) {
    engine.run(trials, 1234, threads);
    runs.push_back(observer.results());
  }
  const auto& ref = runs.front();
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs[i].size(), ref.size());
    for (std::size_t c = 0; c < ref.size(); ++c) {
      EXPECT_EQ(runs[i][c].country, ref[c].country);
      EXPECT_EQ(runs[i][c].trials, ref[c].trials);
      EXPECT_EQ(runs[i][c].cutoff_trials, ref[c].cutoff_trials);
      EXPECT_EQ(runs[i][c].outage_hours.mean(), ref[c].outage_hours.mean());
      EXPECT_EQ(runs[i][c].outage_hours.sample_stddev(),
                ref[c].outage_hours.sample_stddev());
      EXPECT_EQ(runs[i][c].cutoff_start_hour.mean(),
                ref[c].cutoff_start_hour.mean());
    }
  }
  // Sanity on the partial-failure regime: some trials cut off, some not.
  EXPECT_GT(ref[0].cutoff_trials, 0u);
  EXPECT_LT(ref[0].cutoff_trials, trials);
}

}  // namespace
}  // namespace solarnet::analysis
