#include "analysis/latency.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/planner.h"
#include "datasets/submarine.h"
#include "sim/monte_carlo.h"

namespace solarnet::analysis {
namespace {

class LatencyTest : public ::testing::Test {
 protected:
  LatencyTest() : net_("lat") {
    a_ = add_node("A", {0.0, 0.0});
    b_ = add_node("B", {0.0, 10.0});
    c_ = add_node("C", {0.0, 20.0});
    ab_ = add_cable("ab", a_, b_, 1500.0);
    bc_ = add_cable("bc", b_, c_, 1500.0);
    ac_ = add_cable("ac", a_, c_, 4000.0);  // longer direct route
  }
  topo::NodeId add_node(const char* name, geo::GeoPoint p) {
    return net_.add_node({name, p, "", topo::NodeKind::kLandingPoint, true});
  }
  topo::CableId add_cable(const char* name, topo::NodeId x, topo::NodeId y,
                          double len) {
    topo::Cable c;
    c.name = name;
    c.segments = {{x, y, len}};
    return net_.add_cable(std::move(c));
  }
  topo::InfrastructureNetwork net_;
  topo::NodeId a_{}, b_{}, c_{};
  topo::CableId ab_{}, bc_{}, ac_{};
};

TEST_F(LatencyTest, ShortestPathLatency) {
  const RouteLatency r = route_latency(net_, "A", "C");
  EXPECT_TRUE(r.reachable);
  EXPECT_DOUBLE_EQ(r.path_km, 3000.0);  // via B, not the 4000 km direct
  EXPECT_NEAR(r.one_way_ms, 3000.0 * kFiberLatencyMsPerKm, 1e-12);
  EXPECT_DOUBLE_EQ(r.rtt_ms, 2.0 * r.one_way_ms);
}

TEST_F(LatencyTest, FailureForcesLongerRoute) {
  std::vector<bool> dead(net_.cable_count(), false);
  dead[ab_] = true;
  const LatencyInflation inflation = latency_inflation(net_, "A", "C", dead);
  EXPECT_TRUE(inflation.after.reachable);
  EXPECT_DOUBLE_EQ(inflation.after.path_km, 4000.0);
  EXPECT_NEAR(inflation.inflation_ms(),
              2.0 * 1000.0 * kFiberLatencyMsPerKm, 1e-9);
}

TEST_F(LatencyTest, DisconnectionIsInfiniteInflation) {
  std::vector<bool> dead(net_.cable_count(), false);
  dead[ab_] = true;
  dead[ac_] = true;
  const LatencyInflation inflation = latency_inflation(net_, "A", "C", dead);
  EXPECT_FALSE(inflation.after.reachable);
  EXPECT_TRUE(std::isinf(inflation.inflation_ms()));
}

TEST_F(LatencyTest, UnknownNodesThrow) {
  EXPECT_THROW(route_latency(net_, "A", "Ghost"), std::invalid_argument);
  EXPECT_THROW(route_latency(net_, "Ghost", "A"), std::invalid_argument);
}

TEST(ArcticTradeoff, ArcticCableCutsLondonTokyoLatency) {
  // §5.1: Arctic routes are "helpful for improving latency [but] prone to
  // higher risk". The latency half of that claim:
  const auto net = datasets::make_submarine_network({});
  const auto before = route_latency(net, "Bude", "Tokyo");
  ASSERT_TRUE(before.reachable);
  const auto arctic = core::TopologyPlanner::arctic_candidates().front();
  const auto augmented = core::with_cable(net, arctic);
  const auto after = route_latency(augmented, "Bude", "Tokyo");
  ASSERT_TRUE(after.reachable);
  EXPECT_LT(after.rtt_ms, before.rtt_ms - 20.0);  // tens of ms saved
  EXPECT_NEAR(after.path_km, 15500.0, 1.0);       // takes the new cable
}

TEST(ArcticTradeoff, ArcticCableDiesUnderFieldDrivenCarrington) {
  // ...and the risk half: the Arctic route's repeaters sit under the
  // auroral oval, so the field-driven model kills it almost surely while
  // a low-latitude build of the same length survives far more often.
  const auto net = datasets::make_submarine_network({});
  const auto arctic_net = core::with_cable(
      net, core::TopologyPlanner::arctic_candidates().front());
  const auto southern_net = core::with_cable(
      net, {"Fortaleza", "Lagos", 15500.0});  // same length, equatorial
  const gic::FieldDrivenFailureModel model{
      gic::GeoelectricFieldModel(gic::carrington_1859())};
  const sim::FailureSimulator arctic_sim(arctic_net, {});
  const sim::FailureSimulator southern_sim(southern_net, {});
  const auto arctic_id =
      static_cast<topo::CableId>(arctic_net.cable_count() - 1);
  const auto southern_id =
      static_cast<topo::CableId>(southern_net.cable_count() - 1);
  const double p_arctic =
      arctic_sim.cable_death_probability(arctic_id, model);
  const double p_southern =
      southern_sim.cable_death_probability(southern_id, model);
  EXPECT_GT(p_arctic, 0.95);
  EXPECT_GT(p_arctic, p_southern);
}

}  // namespace
}  // namespace solarnet::analysis
