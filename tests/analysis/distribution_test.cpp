#include "analysis/distribution.h"

#include <gtest/gtest.h>

namespace solarnet::analysis {
namespace {

TEST(LatitudePdf, IntegratesToOne) {
  const std::vector<double> lats = {-50.0, 0.0, 10.0, 45.0, 45.5, 80.0};
  const auto pdf = latitude_pdf(lats, 2.0);
  ASSERT_EQ(pdf.size(), 90u);
  double integral = 0.0;
  for (const PdfPoint& p : pdf) integral += p.density_pct / 100.0 * 2.0;
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(LatitudePdf, MassInRightBins) {
  const std::vector<double> lats = {41.0, 41.5};  // both in [40,42)
  const auto pdf = latitude_pdf(lats, 2.0);
  for (const PdfPoint& p : pdf) {
    if (p.latitude_center == 41.0) {
      EXPECT_GT(p.density_pct, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(p.density_pct, 0.0);
    }
  }
}

TEST(LatitudePdf, WeightedSamples) {
  const std::vector<std::pair<double, double>> w = {{10.0, 3.0}, {50.0, 1.0}};
  const auto pdf = latitude_pdf(std::span<const std::pair<double, double>>(w),
                                2.0);
  double at10 = 0.0;
  double at50 = 0.0;
  for (const PdfPoint& p : pdf) {
    if (p.latitude_center == 11.0) at10 = p.density_pct;
    if (p.latitude_center == 51.0) at50 = p.density_pct;
  }
  EXPECT_NEAR(at10 / at50, 3.0, 1e-9);
}

TEST(LatitudePdf, GridOverload) {
  geo::LatLonGrid grid(1.0);
  grid.add({20.5, 0.0}, 10.0);
  grid.add({-30.5, 0.0}, 10.0);
  const auto pdf = latitude_pdf(grid, 2.0);
  double total = 0.0;
  for (const PdfPoint& p : pdf) total += p.density_pct / 100.0 * 2.0;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PercentAbove, KnownFractions) {
  const std::vector<double> lats = {-50.0, -10.0, 10.0, 30.0, 50.0, 70.0};
  const std::vector<double> thresholds = {0.0, 40.0, 60.0, 90.0};
  const auto pct = percent_above_thresholds(lats, thresholds);
  ASSERT_EQ(pct.size(), 4u);
  EXPECT_DOUBLE_EQ(pct[0], 100.0);
  EXPECT_DOUBLE_EQ(pct[1], 50.0);
  EXPECT_DOUBLE_EQ(pct[2], 100.0 / 6.0);
  EXPECT_DOUBLE_EQ(pct[3], 0.0);
}

TEST(PercentAbove, WeightedVariant) {
  const std::vector<std::pair<double, double>> w = {{50.0, 1.0}, {10.0, 3.0}};
  const std::vector<double> thresholds = {40.0};
  const auto pct = percent_above_thresholds(
      std::span<const std::pair<double, double>>(w), thresholds);
  EXPECT_DOUBLE_EQ(pct[0], 25.0);
}

TEST(PercentAbove, EmptyInputIsZero) {
  const std::vector<double> thresholds = {0.0, 40.0};
  const auto pct =
      percent_above_thresholds(std::span<const double>{}, thresholds);
  EXPECT_DOUBLE_EQ(pct[0], 0.0);
}

class OneHopTest : public ::testing::Test {
 protected:
  OneHopTest() : net_("t") {
    // high (50N) -- mid (30N) via cable 1; mid -- low (10N) via cable 2;
    // far (5N) isolated from the high node by two hops.
    high_ = net_.add_node(
        {"high", {50.0, 0.0}, "", topo::NodeKind::kLandingPoint, true});
    mid_ = net_.add_node(
        {"mid", {30.0, 0.0}, "", topo::NodeKind::kLandingPoint, true});
    low_ = net_.add_node(
        {"low", {10.0, 0.0}, "", topo::NodeKind::kLandingPoint, true});
    topo::Cable c1;
    c1.name = "c1";
    c1.segments = {{high_, mid_, 2500.0}};
    net_.add_cable(std::move(c1));
    topo::Cable c2;
    c2.name = "c2";
    c2.segments = {{mid_, low_, 2500.0}};
    net_.add_cable(std::move(c2));
  }
  topo::InfrastructureNetwork net_;
  topo::NodeId high_{}, mid_{}, low_{};
};

TEST_F(OneHopTest, ClosureIsExactlyOneHop) {
  // Threshold 40: high is above; mid shares a cable with high; low does not.
  EXPECT_NEAR(one_hop_fraction_above(net_, 40.0), 2.0 / 3.0, 1e-12);
  // Threshold 25: high+mid above, low shares cable with mid -> all 3.
  EXPECT_NEAR(one_hop_fraction_above(net_, 25.0), 1.0, 1e-12);
  // Threshold 60: nothing above, closure empty.
  EXPECT_NEAR(one_hop_fraction_above(net_, 60.0), 0.0, 1e-12);
}

TEST_F(OneHopTest, CurveIsMonotoneDecreasing) {
  const auto thresholds = default_thresholds();
  const auto curve = one_hop_percent_above_thresholds(net_, thresholds);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 1e-9);
  }
}

TEST(DefaultThresholds, ZeroToNinetyByFive) {
  const auto t = default_thresholds();
  ASSERT_EQ(t.size(), 19u);
  EXPECT_DOUBLE_EQ(t.front(), 0.0);
  EXPECT_DOUBLE_EQ(t.back(), 90.0);
  EXPECT_DOUBLE_EQ(t[1], 5.0);
}

TEST(OneHop, EmptyNetwork) {
  const topo::InfrastructureNetwork empty("e");
  EXPECT_DOUBLE_EQ(one_hop_fraction_above(empty, 40.0), 0.0);
}

}  // namespace
}  // namespace solarnet::analysis
