#include "analysis/lengths.h"

#include <gtest/gtest.h>

namespace solarnet::analysis {
namespace {

topo::InfrastructureNetwork make_net() {
  topo::InfrastructureNetwork net("lengths");
  std::vector<topo::NodeId> nodes;
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(net.add_node({"N" + std::to_string(i),
                                  {0.0, static_cast<double>(i)},
                                  "",
                                  topo::NodeKind::kLandingPoint,
                                  true}));
  }
  auto add = [&](const char* name, topo::NodeId a, topo::NodeId b,
                 double len, bool known = true) {
    topo::Cable c;
    c.name = name;
    c.segments = {{a, b, len}};
    c.length_known = known;
    return net.add_cable(std::move(c));
  };
  add("c100", nodes[0], nodes[1], 100.0);
  add("c200", nodes[1], nodes[2], 200.0);
  add("c400", nodes[2], nodes[3], 400.0);
  add("c1000", nodes[3], nodes[4], 1000.0);
  add("unknown", nodes[4], nodes[5], 9999.0, false);
  return net;
}

TEST(LengthCdf, ExcludesUnknownLengths) {
  const auto net = make_net();
  const auto cdf = length_cdf(net);
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.back().value, 1000.0);
  EXPECT_DOUBLE_EQ(cdf.back().cum_fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.front().value, 100.0);
  EXPECT_DOUBLE_EQ(cdf.front().cum_fraction, 0.25);
}

TEST(LengthSummary, ComputesAllFields) {
  const auto net = make_net();
  const LengthSummary s = summarize_lengths(net, 150.0);
  EXPECT_EQ(s.network, "lengths");
  EXPECT_EQ(s.cables_with_length, 4u);
  EXPECT_DOUBLE_EQ(s.min_km, 100.0);
  EXPECT_DOUBLE_EQ(s.max_km, 1000.0);
  EXPECT_DOUBLE_EQ(s.median_km, 300.0);
  EXPECT_DOUBLE_EQ(s.mean_km, 425.0);
  // Repeaters: 0 + 1 + 2 + 6 + 66(unknown cable still has segments) at 150.
  EXPECT_EQ(s.cables_without_repeater, 1u);
  EXPECT_NEAR(s.avg_repeaters_per_cable, (0 + 1 + 2 + 6 + 66) / 5.0, 1e-9);
}

TEST(LengthSummary, SpacingAffectsRepeaterFields) {
  const auto net = make_net();
  const LengthSummary s50 = summarize_lengths(net, 50.0);
  const LengthSummary s150 = summarize_lengths(net, 150.0);
  EXPECT_GT(s50.avg_repeaters_per_cable, s150.avg_repeaters_per_cable);
  EXPECT_LE(s50.cables_without_repeater, s150.cables_without_repeater);
}

TEST(LengthSummary, EmptyNetwork) {
  const topo::InfrastructureNetwork empty("empty");
  const LengthSummary s = summarize_lengths(empty);
  EXPECT_EQ(s.cables_with_length, 0u);
  EXPECT_DOUBLE_EQ(s.avg_repeaters_per_cable, 0.0);
  EXPECT_TRUE(length_cdf(empty).empty());
}

}  // namespace
}  // namespace solarnet::analysis
