#include "analysis/economics.h"

#include <gtest/gtest.h>

#include "datasets/submarine.h"
#include "sim/monte_carlo.h"

namespace solarnet::analysis {
namespace {

TEST(RegionalEconomies, AnchoredOnPaperFigure) {
  // §1: US internet outage > $7B/day; North America's entry must sit just
  // above that anchor, and every entry must be positive.
  bool na_found = false;
  for (const RegionalEconomy& e : regional_economies()) {
    EXPECT_GT(e.internet_outage_cost_per_day_busd, 0.0);
    if (e.continent == geo::Continent::kNorthAmerica) {
      na_found = true;
      EXPECT_GE(e.internet_outage_cost_per_day_busd, 7.0);
      EXPECT_LE(e.internet_outage_cost_per_day_busd, 12.0);
    }
  }
  EXPECT_TRUE(na_found);
  EXPECT_EQ(regional_economies().size(), 6u);
}

class EconomicsTest : public ::testing::Test {
 protected:
  EconomicsTest() : net_("econ") {
    // Two NA landing points on one cable, two EU points on another.
    ny_ = add_node("NY", {40.7, -74.0});
    bos_ = add_node("Boston", {42.4, -71.1});
    bude_ = add_node("Bude", {50.8, -4.5});
    brest_ = add_node("Brest", {48.4, -4.5});
    na_cable_ = add_cable("na", ny_, bos_);
    eu_cable_ = add_cable("eu", bude_, brest_);
  }
  topo::NodeId add_node(const char* name, geo::GeoPoint p) {
    return net_.add_node({name, p, "", topo::NodeKind::kLandingPoint, true});
  }
  topo::CableId add_cable(const char* name, topo::NodeId a, topo::NodeId b) {
    topo::Cable c;
    c.name = name;
    c.segments = {{a, b, 500.0}};
    return net_.add_cable(std::move(c));
  }
  topo::InfrastructureNetwork net_;
  topo::NodeId ny_{}, bos_{}, bude_{}, brest_{};
  topo::CableId na_cable_{}, eu_cable_{};
};

TEST_F(EconomicsTest, NoFailureNoCost) {
  const std::vector<bool> none(net_.cable_count(), false);
  recovery::RecoveryTimeline timeline;
  timeline.restore_day.assign(net_.cable_count(), 0.0);
  const EconomicImpact impact =
      estimate_internet_impact(net_, none, timeline);
  EXPECT_DOUBLE_EQ(impact.internet_cost_busd, 0.0);
  for (const auto& [cont, sev] : impact.initial_severity) {
    EXPECT_DOUBLE_EQ(sev, 0.0);
  }
}

TEST_F(EconomicsTest, CostScalesWithOutageDuration) {
  std::vector<bool> dead(net_.cable_count(), false);
  dead[na_cable_] = true;
  recovery::RecoveryTimeline short_fix;
  short_fix.restore_day.assign(net_.cable_count(), 0.0);
  short_fix.restore_day[na_cable_] = 10.0;
  short_fix.jobs.push_back({na_cable_, 1, 10.0, 10.0});
  recovery::RecoveryTimeline long_fix = short_fix;
  long_fix.restore_day[na_cable_] = 40.0;
  long_fix.jobs[0].completion_day = 40.0;

  const auto cheap = estimate_internet_impact(net_, dead, short_fix, 1.0);
  const auto expensive = estimate_internet_impact(net_, dead, long_fix, 1.0);
  EXPECT_GT(cheap.internet_cost_busd, 0.0);
  EXPECT_NEAR(expensive.internet_cost_busd / cheap.internet_cost_busd, 4.0,
              0.5);
}

TEST_F(EconomicsTest, InitialSeverityReflectsGeography) {
  std::vector<bool> dead(net_.cable_count(), false);
  dead[na_cable_] = true;  // NA fully dark, EU untouched
  recovery::RecoveryTimeline timeline;
  timeline.restore_day.assign(net_.cable_count(), 0.0);
  timeline.restore_day[na_cable_] = 20.0;
  timeline.jobs.push_back({na_cable_, 1, 20.0, 20.0});
  const auto impact = estimate_internet_impact(net_, dead, timeline, 1.0);
  for (const auto& [cont, sev] : impact.initial_severity) {
    if (cont == geo::Continent::kNorthAmerica) {
      EXPECT_DOUBLE_EQ(sev, 1.0);
    } else if (cont == geo::Continent::kEurope) {
      EXPECT_DOUBLE_EQ(sev, 0.0);
    }
  }
  // 20 days x full NA outage x $8.5B/day = $170B (trapezoid edges shave a
  // little).
  EXPECT_NEAR(impact.internet_cost_busd, 170.0, 12.0);
}

TEST_F(EconomicsTest, Validation) {
  const std::vector<bool> none(net_.cable_count(), false);
  recovery::RecoveryTimeline timeline;
  timeline.restore_day.assign(net_.cable_count(), 0.0);
  EXPECT_THROW(estimate_internet_impact(net_, none, timeline, 0.0),
               std::invalid_argument);
  EXPECT_THROW(estimate_internet_impact(net_, {true}, timeline),
               std::invalid_argument);
}

TEST(EconomicsFullScale, CarringtonCostIsHundredsOfBillions) {
  // Order-of-magnitude check against §2.2's grid figure ($0.6-2.6T): the
  // Internet-only cost of a severe storm over a months-long repair
  // campaign lands in the hundreds of billions.
  const auto net = datasets::make_submarine_network({});
  const sim::FailureSimulator simulator(net, {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  util::Rng rng(1859);
  const auto dead = simulator.sample_cable_failures(s1, rng);
  const auto faults =
      recovery::sample_fault_counts(simulator, s1, dead, rng);
  const auto timeline = recovery::schedule_repairs(net, dead, faults, {});
  const auto impact = estimate_internet_impact(net, dead, timeline, 10.0);
  EXPECT_GT(impact.internet_cost_busd, 20.0);
  EXPECT_LT(impact.internet_cost_busd, 3000.0);
  EXPECT_GT(impact.outage_days_integral, 1.0);
}

}  // namespace
}  // namespace solarnet::analysis
