#include "analysis/as_analysis.h"

#include <gtest/gtest.h>

namespace solarnet::analysis {
namespace {

datasets::RouterDataset small_dataset() {
  using datasets::RouterRecord;
  std::vector<RouterRecord> records = {
      {{50.0, 0.0}, 0}, {{45.0, 1.0}, 0},   // AS0: spread 5, above 40
      {{10.0, 0.0}, 1},                     // AS1: single router, low
      {{-60.0, 0.0}, 2}, {{-20.0, 0.0}, 2}, // AS2: spread 40, above 40 (south)
      {{35.0, 0.0}, 3}, {{38.0, 0.0}, 3},   // AS3: spread 3, below 40
  };
  return datasets::RouterDataset(std::move(records), 4);
}

TEST(AsReachCurve, MatchesHandCount) {
  const auto ds = small_dataset();
  const std::vector<double> thresholds = {0.0, 40.0, 55.0, 90.0};
  const auto curve = as_reach_curve(ds, thresholds);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0], 100.0);   // everyone has |lat| > 0
  EXPECT_DOUBLE_EQ(curve[1], 50.0);    // AS0 and AS2
  EXPECT_DOUBLE_EQ(curve[2], 25.0);    // AS2 only (60S)
  EXPECT_DOUBLE_EQ(curve[3], 0.0);
}

TEST(AsSpreadCdf, StepsAtSpreads) {
  const auto ds = small_dataset();
  const auto cdf = as_spread_cdf(ds);
  ASSERT_FALSE(cdf.empty());
  // Spreads: 5, 0, 40, 3 -> sorted 0,3,5,40
  EXPECT_DOUBLE_EQ(cdf.front().value, 0.0);
  EXPECT_DOUBLE_EQ(cdf.front().cum_fraction, 0.25);
  EXPECT_DOUBLE_EQ(cdf.back().value, 40.0);
  EXPECT_DOUBLE_EQ(cdf.back().cum_fraction, 1.0);
}

TEST(AsSummaryStats, ComputesQuantiles) {
  const auto ds = small_dataset();
  const AsSummaryStats s = summarize_as_stats(ds);
  EXPECT_EQ(s.as_count, 4u);
  // Sorted spreads 0,3,5,40: median (type-7) = 4.0, p90 = 29.5.
  EXPECT_NEAR(s.spread_median_deg, 4.0, 1e-9);
  EXPECT_NEAR(s.spread_p90_deg, 29.5, 1e-9);
  EXPECT_DOUBLE_EQ(s.fraction_with_presence_above_40, 0.5);
  EXPECT_NEAR(s.router_fraction_above_40, 3.0 / 7.0, 1e-12);
}

TEST(AsAnalysis, DefaultDatasetReproducesFigure9) {
  const auto ds = datasets::make_router_dataset({});
  const AsSummaryStats s = summarize_as_stats(ds);
  // Figure 9(a): 57% of ASes above 40; Figure 9(b): median 1.723,
  // p90 18.263.
  EXPECT_NEAR(s.fraction_with_presence_above_40, 0.57, 0.06);
  EXPECT_NEAR(s.spread_median_deg, 1.723, 0.5);
  EXPECT_NEAR(s.spread_p90_deg, 18.263, 4.0);
}

}  // namespace
}  // namespace solarnet::analysis
