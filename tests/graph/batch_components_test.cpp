#include "graph/batch_components.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/components.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace solarnet::graph {
namespace {

Graph random_graph(util::Rng& rng, std::size_t vertices, std::size_t edges) {
  Graph g(vertices);
  for (std::size_t e = 0; e < edges; ++e) {
    const auto u = static_cast<VertexId>(rng.uniform_below(vertices));
    const auto v = rng.bernoulli(0.1)
                       ? u
                       : static_cast<VertexId>(rng.uniform_below(vertices));
    g.add_edge(u, v, 1.0);
  }
  return g;
}

// Scalar reference: the masked components kernel with all vertices alive
// and edge e alive iff bit `lane` of edge_dead[e] is clear — exactly what
// the batch kernel claims to compute per lane.
std::size_t scalar_largest(const Graph& g, const Csr& csr,
                           const std::vector<std::uint64_t>& edge_dead,
                           unsigned lane) {
  AliveMask mask = AliveMask::all_alive(g);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if ((edge_dead[e] >> lane) & 1) mask.edge_alive.reset(e);
  }
  ComponentScratch scratch;
  ComponentResult result;
  connected_components(csr, mask, scratch, result);
  return result.largest_component_size();
}

TEST(BatchComponents, MatchesScalarKernelLaneByLane) {
  util::Rng rng(2024);
  const struct {
    std::size_t vertices, edges;
  } shapes[] = {{1, 0}, {2, 1}, {6, 9}, {40, 70}, {130, 260}};
  for (const auto& shape : shapes) {
    const Graph g = random_graph(rng, shape.vertices, shape.edges);
    const Csr csr(g);
    // Mixed regime: some edges alive everywhere (backbone), some dead
    // everywhere, the rest varying per lane.
    std::vector<std::uint64_t> edge_dead(g.edge_count());
    for (auto& w : edge_dead) {
      const double kind = rng.uniform();
      if (kind < 0.3) {
        w = 0;
      } else if (kind < 0.45) {
        w = ~std::uint64_t{0};
      } else {
        w = rng.next_u64() & rng.next_u64();  // ~25% dead per lane
      }
    }
    for (const unsigned lanes : {1u, 3u, 32u, 64u}) {
      BatchComponentScratch scratch;
      std::uint32_t largest[kBatchLanes] = {};
      batch_largest_components(csr, edge_dead, lanes, scratch, largest);
      for (unsigned t = 0; t < lanes; ++t) {
        EXPECT_EQ(largest[t], scalar_largest(g, csr, edge_dead, t))
            << shape.vertices << "v/" << shape.edges << "e lane " << t
            << " of " << lanes;
      }
    }
  }
}

TEST(BatchComponents, IgnoresBitsAtAndAboveLaneCount) {
  util::Rng rng(7);
  const Graph g = random_graph(rng, 20, 35);
  const Csr csr(g);
  std::vector<std::uint64_t> clean(g.edge_count());
  for (auto& w : clean) w = rng.next_u64() & 0xFF;
  std::vector<std::uint64_t> noisy = clean;
  for (auto& w : noisy) w |= ~std::uint64_t{0xFF};  // garbage above lane 7

  BatchComponentScratch scratch;
  std::uint32_t a[kBatchLanes] = {};
  std::uint32_t b[kBatchLanes] = {};
  batch_largest_components(csr, clean, 8, scratch, a);
  batch_largest_components(csr, noisy, 8, scratch, b);
  for (unsigned t = 0; t < 8; ++t) EXPECT_EQ(a[t], b[t]);
}

TEST(BatchComponents, ScratchReuseAcrossShapesIsClean) {
  // One scratch serving a large batch then a smaller one must not leak
  // state between calls (vectors shrink/regrow in place).
  util::Rng rng(99);
  BatchComponentScratch scratch;
  for (const std::size_t vertices : {60u, 5u, 33u}) {
    const Graph g = random_graph(rng, vertices, vertices * 2);
    const Csr csr(g);
    std::vector<std::uint64_t> edge_dead(g.edge_count());
    for (auto& w : edge_dead) w = rng.next_u64();
    std::uint32_t largest[kBatchLanes] = {};
    batch_largest_components(csr, edge_dead, 64, scratch, largest);
    for (unsigned t = 0; t < 64; ++t) {
      EXPECT_EQ(largest[t], scalar_largest(g, csr, edge_dead, t));
    }
  }
}

TEST(BatchComponents, EmptyGraph) {
  const Csr csr{Graph{}};
  BatchComponentScratch scratch;
  std::uint32_t largest[2] = {77, 77};
  batch_largest_components(csr, {}, 2, scratch, largest);
  EXPECT_EQ(largest[0], 0u);
  EXPECT_EQ(largest[1], 0u);
}

TEST(BatchComponents, ValidatesArguments) {
  util::Rng rng(1);
  const Graph g = random_graph(rng, 4, 5);
  const Csr csr(g);
  BatchComponentScratch scratch;
  std::uint32_t largest[kBatchLanes] = {};
  std::vector<std::uint64_t> wrong_size(g.edge_count() + 1, 0);
  EXPECT_THROW(batch_largest_components(csr, wrong_size, 4, scratch, largest),
               std::invalid_argument);
  std::vector<std::uint64_t> ok(g.edge_count(), 0);
  EXPECT_THROW(batch_largest_components(csr, ok, 0, scratch, largest),
               std::invalid_argument);
  EXPECT_THROW(batch_largest_components(csr, ok, 65, scratch, largest),
               std::invalid_argument);
}

}  // namespace
}  // namespace solarnet::graph
