#include "graph/components.h"

#include <gtest/gtest.h>

namespace solarnet::graph {
namespace {

Graph triangle_plus_isolated() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  return g;  // vertex 3 isolated
}

TEST(Components, FullGraph) {
  const Graph g = triangle_plus_isolated();
  const ComponentResult cc = connected_components(g);
  EXPECT_EQ(cc.component_count(), 2u);
  EXPECT_TRUE(cc.same_component(0, 2));
  EXPECT_FALSE(cc.same_component(0, 3));
  EXPECT_EQ(cc.largest_component_size(), 3u);
}

TEST(Components, EmptyGraph) {
  const Graph g;
  const ComponentResult cc = connected_components(g);
  EXPECT_EQ(cc.component_count(), 0u);
  EXPECT_EQ(cc.largest_component_size(), 0u);
}

TEST(Components, DeadEdgeSplits) {
  Graph g(3);
  g.add_edge(0, 1);
  const EdgeId bridge = g.add_edge(1, 2);
  AliveMask mask = AliveMask::all_alive(g);
  mask.edge_alive.reset(bridge);
  const ComponentResult cc = connected_components(g, mask);
  EXPECT_EQ(cc.component_count(), 2u);
  EXPECT_TRUE(cc.same_component(0, 1));
  EXPECT_FALSE(cc.same_component(1, 2));
}

TEST(Components, DeadVertexExcluded) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  AliveMask mask = AliveMask::all_alive(g);
  mask.vertex_alive.reset(1);
  const ComponentResult cc = connected_components(g, mask);
  EXPECT_EQ(cc.component[1], ComponentResult::kNoComponent);
  EXPECT_EQ(cc.component_count(), 2u);  // {0} and {2}
  EXPECT_FALSE(cc.same_component(0, 2));
  EXPECT_FALSE(cc.same_component(0, 1));
}

TEST(Components, ParallelEdgesDontConfuse) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  const ComponentResult cc = connected_components(g);
  EXPECT_EQ(cc.component_count(), 1u);
}

TEST(Components, ComponentSizesSumToAliveVertices) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  AliveMask mask = AliveMask::all_alive(g);
  mask.vertex_alive.reset(5);
  const ComponentResult cc = connected_components(g, mask);
  std::size_t total = 0;
  for (std::size_t s : cc.component_sizes) total += s;
  EXPECT_EQ(total, 5u);  // 6 vertices - 1 dead
}

TEST(IsConnected, Basics) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(is_connected(g, AliveMask::all_alive(g)));
  g.add_edge(1, 2);
  EXPECT_TRUE(is_connected(g, AliveMask::all_alive(g)));
}

TEST(IsConnected, VacuouslyTrueWhenNothingAlive) {
  Graph g(3);
  AliveMask mask = AliveMask::all_alive(g);
  mask.vertex_alive.assign(3, false);
  EXPECT_TRUE(is_connected(g, mask));
}

TEST(Components, SameComponentRejectsBadIds) {
  const Graph g = triangle_plus_isolated();
  const ComponentResult cc = connected_components(g);
  EXPECT_FALSE(cc.same_component(0, 99));
  EXPECT_FALSE(cc.same_component(99, 0));
}

}  // namespace
}  // namespace solarnet::graph
