#include "graph/cut.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace solarnet::graph {
namespace {

bool contains_vertex(const std::vector<VertexId>& v, VertexId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}
bool contains_edge(const std::vector<EdgeId>& v, EdgeId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(Cuts, LineGraphAllBridges) {
  Graph g(4);
  const EdgeId e0 = g.add_edge(0, 1);
  const EdgeId e1 = g.add_edge(1, 2);
  const EdgeId e2 = g.add_edge(2, 3);
  const CutResult r = find_cuts(g);
  EXPECT_EQ(r.bridges.size(), 3u);
  EXPECT_TRUE(contains_edge(r.bridges, e0));
  EXPECT_TRUE(contains_edge(r.bridges, e1));
  EXPECT_TRUE(contains_edge(r.bridges, e2));
  // Interior vertices are articulation points.
  EXPECT_EQ(r.articulation_points.size(), 2u);
  EXPECT_TRUE(contains_vertex(r.articulation_points, 1));
  EXPECT_TRUE(contains_vertex(r.articulation_points, 2));
}

TEST(Cuts, CycleHasNoBridges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const CutResult r = find_cuts(g);
  EXPECT_TRUE(r.bridges.empty());
  EXPECT_TRUE(r.articulation_points.empty());
}

TEST(Cuts, ParallelEdgesAreNotBridges) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  const CutResult r = find_cuts(g);
  EXPECT_TRUE(r.bridges.empty());
}

TEST(Cuts, SingleEdgeIsBridge) {
  Graph g(2);
  g.add_edge(0, 1);
  const CutResult r = find_cuts(g);
  EXPECT_EQ(r.bridges.size(), 1u);
  EXPECT_TRUE(r.articulation_points.empty());  // endpoints aren't cut points
}

TEST(Cuts, BarbellGraph) {
  // Two triangles joined by one edge: that edge is the only bridge, its
  // endpoints are articulation points.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  const EdgeId bridge = g.add_edge(2, 3);
  const CutResult r = find_cuts(g);
  ASSERT_EQ(r.bridges.size(), 1u);
  EXPECT_EQ(r.bridges[0], bridge);
  EXPECT_EQ(r.articulation_points.size(), 2u);
  EXPECT_TRUE(contains_vertex(r.articulation_points, 2));
  EXPECT_TRUE(contains_vertex(r.articulation_points, 3));
}

TEST(Cuts, StarCenterIsArticulation) {
  Graph g(5);
  for (VertexId v = 1; v < 5; ++v) g.add_edge(0, v);
  const CutResult r = find_cuts(g);
  EXPECT_EQ(r.bridges.size(), 4u);
  ASSERT_EQ(r.articulation_points.size(), 1u);
  EXPECT_EQ(r.articulation_points[0], 0u);
}

TEST(Cuts, SelfLoopIgnored) {
  Graph g(2);
  g.add_edge(0, 0);
  const EdgeId e = g.add_edge(0, 1);
  const CutResult r = find_cuts(g);
  ASSERT_EQ(r.bridges.size(), 1u);
  EXPECT_EQ(r.bridges[0], e);
}

TEST(Cuts, MaskedDeadEdgeCreatesNewBridges) {
  // Square with a diagonal: no bridges. Kill the diagonal: still none.
  // Kill one side: the rest become... check behavior under masks.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const EdgeId side = g.add_edge(3, 0);
  EXPECT_TRUE(find_cuts(g).bridges.empty());
  AliveMask mask = AliveMask::all_alive(g);
  mask.edge_alive.reset(side);
  const CutResult r = find_cuts(g, mask);
  EXPECT_EQ(r.bridges.size(), 3u);  // remaining path is all bridges
}

TEST(Cuts, DisconnectedComponentsHandled) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const CutResult r = find_cuts(g);
  EXPECT_EQ(r.bridges.size(), 3u);
  ASSERT_EQ(r.articulation_points.size(), 1u);
  EXPECT_EQ(r.articulation_points[0], 3u);
}

TEST(Cuts, DeepPathDoesNotOverflowStack) {
  constexpr std::size_t kN = 200000;
  Graph g(kN);
  for (std::size_t i = 1; i < kN; ++i) {
    g.add_edge(static_cast<VertexId>(i - 1), static_cast<VertexId>(i));
  }
  const CutResult r = find_cuts(g);  // would crash with recursive Tarjan
  EXPECT_EQ(r.bridges.size(), kN - 1);
  EXPECT_EQ(r.articulation_points.size(), kN - 2);
}

TEST(Cuts, EmptyGraph) {
  const CutResult r = find_cuts(Graph{});
  EXPECT_TRUE(r.bridges.empty());
  EXPECT_TRUE(r.articulation_points.empty());
}

}  // namespace
}  // namespace solarnet::graph
