#include "graph/csr.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/components.h"
#include "graph/graph.h"
#include "graph/traversal.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace solarnet::graph {
namespace {

// Random multigraph with self-loops and parallel edges — the shapes real
// cable systems produce (several cables between the same two landing
// stations; a segment can return to its own station in synthetic sets).
Graph random_graph(util::Rng& rng, std::size_t vertices, std::size_t edges) {
  Graph g(vertices);
  for (std::size_t e = 0; e < edges; ++e) {
    const auto u = static_cast<VertexId>(rng.uniform_below(vertices));
    // ~10% self-loops, and repeated (u, v) pairs occur naturally.
    const auto v = rng.bernoulli(0.1)
                       ? u
                       : static_cast<VertexId>(rng.uniform_below(vertices));
    g.add_edge(u, v, 1.0);
  }
  return g;
}

AliveMask random_mask(util::Rng& rng, const Graph& g, double vertex_dead_p,
                      double edge_dead_p) {
  AliveMask mask = AliveMask::all_alive(g);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (rng.bernoulli(vertex_dead_p)) mask.vertex_alive.reset(v);
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (rng.bernoulli(edge_dead_p)) mask.edge_alive.reset(e);
  }
  return mask;
}

TEST(Csr, EmptyGraph) {
  const Csr csr{Graph{}};
  EXPECT_EQ(csr.vertex_count(), 0u);
  EXPECT_EQ(csr.edge_count(), 0u);
  EXPECT_EQ(csr.half_edge_count(), 0u);
}

TEST(Csr, MirrorsAdjacencyIncludingSelfLoopsAndParallels) {
  Graph g(3);
  const EdgeId ab1 = g.add_edge(0, 1);
  const EdgeId ab2 = g.add_edge(0, 1);  // parallel
  const EdgeId loop = g.add_edge(2, 2);  // self-loop
  const Csr csr(g);
  ASSERT_EQ(csr.vertex_count(), 3u);
  ASSERT_EQ(csr.edge_count(), 3u);
  // A self-loop contributes one half-edge, a normal edge two.
  EXPECT_EQ(csr.half_edge_count(), 5u);
  ASSERT_EQ(csr.neighbors(0).size(), 2u);
  EXPECT_EQ(csr.edge_ids(0)[0], ab1);
  EXPECT_EQ(csr.edge_ids(0)[1], ab2);
  ASSERT_EQ(csr.neighbors(2).size(), 1u);
  EXPECT_EQ(csr.neighbors(2)[0], 2u);
  EXPECT_EQ(csr.edge_ids(2)[0], loop);
  EXPECT_EQ(csr.edge_u(ab1), 0u);
  EXPECT_EQ(csr.edge_v(ab1), 1u);
}

// Half-edge order must equal Graph::incident order — the property the
// bit-identical-results guarantee rests on.
TEST(Csr, HalfEdgeOrderMatchesIncident) {
  util::Rng rng(7);
  const Graph g = random_graph(rng, 40, 120);
  const Csr csr(g);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const auto incident = g.incident(v);
    const auto nbrs = csr.neighbors(v);
    const auto eids = csr.edge_ids(v);
    ASSERT_EQ(nbrs.size(), incident.size());
    ASSERT_EQ(eids.size(), incident.size());
    for (std::size_t i = 0; i < incident.size(); ++i) {
      EXPECT_EQ(nbrs[i], incident[i].neighbor);
      EXPECT_EQ(eids[i], incident[i].edge);
    }
  }
}

// Property sweep: on randomized graphs the CSR scratch kernels must return
// exactly what the Graph-based implementations return, masked or not.
TEST(Csr, ScratchKernelsMatchGraphKernelsOnRandomGraphs) {
  util::Rng rng(2024);
  ComponentScratch comp_scratch;
  ComponentResult cc;
  TraversalScratch trav_scratch;
  util::Bitset reach;
  std::vector<std::uint32_t> hops;

  for (int round = 0; round < 30; ++round) {
    const std::size_t vertices = 2 + rng.uniform_below(60);
    const std::size_t edges = rng.uniform_below(3 * vertices);
    const Graph g = random_graph(rng, vertices, edges);
    const Csr csr(g);
    const AliveMask mask = random_mask(rng, g, 0.2, 0.3);

    // Components.
    const ComponentResult ref = connected_components(g, mask);
    connected_components(csr, mask, comp_scratch, cc);
    EXPECT_EQ(cc.component, ref.component) << "round " << round;
    EXPECT_EQ(cc.component_sizes, ref.component_sizes) << "round " << round;
    EXPECT_EQ(is_connected(csr, mask, comp_scratch), is_connected(g, mask))
        << "round " << round;

    // Traversals from every vertex (small graphs, exhaustive is cheap).
    for (VertexId s = 0; s < g.vertex_count(); ++s) {
      const auto ref_reach = reachable_from(g, mask, s);
      reachable_from(csr, mask, s, trav_scratch, reach);
      ASSERT_EQ(reach.size(), ref_reach.size());
      for (std::size_t v = 0; v < ref_reach.size(); ++v) {
        EXPECT_EQ(reach[v], ref_reach[v])
            << "round " << round << " source " << s << " vertex " << v;
      }
      const auto ref_hops = bfs_hops(g, mask, s);
      bfs_hops(csr, mask, s, trav_scratch, hops);
      EXPECT_EQ(hops, ref_hops) << "round " << round << " source " << s;
    }
  }
}

// The unmasked overload takes the direct path (no AliveMask); it must agree
// with the masked overload under an all-alive mask.
TEST(Csr, UnmaskedComponentsMatchAllAliveMask) {
  util::Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    const Graph g = random_graph(rng, 2 + rng.uniform_below(40), 60);
    const ComponentResult direct = connected_components(g);
    const ComponentResult masked =
        connected_components(g, AliveMask::all_alive(g));
    EXPECT_EQ(direct.component, masked.component);
    EXPECT_EQ(direct.component_sizes, masked.component_sizes);
  }
}

// Scratch reuse across wildly different graphs must not leak state.
TEST(Csr, ScratchReuseAcrossGraphSizesIsDeterministic) {
  util::Rng rng(5);
  ComponentScratch scratch;
  ComponentResult first, again;
  TraversalScratch trav;
  std::vector<std::uint32_t> hops_first, hops_again;

  const Graph big = random_graph(rng, 80, 200);
  const Graph small = random_graph(rng, 5, 4);
  const Csr big_csr(big);
  const Csr small_csr(small);
  const AliveMask big_mask = random_mask(rng, big, 0.1, 0.2);
  const AliveMask small_mask = AliveMask::all_alive(small);

  connected_components(big_csr, big_mask, scratch, first);
  // Pollute the scratch with a different-shaped problem, then repeat.
  connected_components(small_csr, small_mask, scratch, again);
  connected_components(big_csr, big_mask, scratch, again);
  EXPECT_EQ(again.component, first.component);
  EXPECT_EQ(again.component_sizes, first.component_sizes);

  bfs_hops(big_csr, big_mask, 0, trav, hops_first);
  bfs_hops(small_csr, small_mask, 0, trav, hops_again);
  bfs_hops(big_csr, big_mask, 0, trav, hops_again);
  EXPECT_EQ(hops_again, hops_first);
}

TEST(Csr, KernelsRejectMismatchedMask) {
  Graph g(3);
  g.add_edge(0, 1);
  const Csr csr(g);
  AliveMask wrong;
  wrong.vertex_alive.assign(2, true);  // wrong vertex count
  wrong.edge_alive.assign(1, true);
  ComponentScratch scratch;
  ComponentResult cc;
  EXPECT_THROW(connected_components(csr, wrong, scratch, cc),
               std::invalid_argument);
  EXPECT_THROW(is_connected(csr, wrong, scratch), std::invalid_argument);
}

}  // namespace
}  // namespace solarnet::graph
