#include "graph/union_find.h"

#include <gtest/gtest.h>

namespace solarnet::graph {
namespace {

TEST(UnionFind, StartsAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  EXPECT_EQ(uf.element_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1u);
  }
}

TEST(UnionFind, UniteMergesSets) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_EQ(uf.set_size(0), 2u);
}

TEST(UnionFind, UniteIsIdempotent) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.set_count(), 2u);
}

TEST(UnionFind, TransitiveConnectivity) {
  UnionFind uf(5);
  uf.unite(0, 1);
  uf.unite(1, 2);
  uf.unite(3, 4);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(2, 3));
  uf.unite(2, 3);
  EXPECT_TRUE(uf.connected(0, 4));
  EXPECT_EQ(uf.set_count(), 1u);
  EXPECT_EQ(uf.set_size(0), 5u);
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(2);
  EXPECT_THROW(uf.find(2), std::out_of_range);
  EXPECT_THROW(uf.unite(0, 5), std::out_of_range);
}

TEST(UnionFind, LargeChainStaysFlat) {
  constexpr std::size_t kN = 100000;
  UnionFind uf(kN);
  for (std::size_t i = 1; i < kN; ++i) uf.unite(i - 1, i);
  EXPECT_EQ(uf.set_count(), 1u);
  EXPECT_TRUE(uf.connected(0, kN - 1));
  EXPECT_EQ(uf.set_size(kN / 2), kN);
}

TEST(UnionFind, ZeroElements) {
  UnionFind uf(0);
  EXPECT_EQ(uf.set_count(), 0u);
}

}  // namespace
}  // namespace solarnet::graph
