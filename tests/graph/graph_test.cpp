#include "graph/graph.h"

#include <gtest/gtest.h>

namespace solarnet::graph {
namespace {

TEST(Graph, StartsEmpty) {
  Graph g;
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, AddVerticesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.vertex_count(), 3u);
  const EdgeId e = g.add_edge(0, 1, 5.0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).u, 0u);
  EXPECT_EQ(g.edge(e).v, 1u);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 5.0);
}

TEST(Graph, AddVertexReturnsSequentialIds) {
  Graph g;
  EXPECT_EQ(g.add_vertex(), 0u);
  EXPECT_EQ(g.add_vertex(), 1u);
  g.add_vertices(3);
  EXPECT_EQ(g.vertex_count(), 5u);
}

TEST(Graph, IncidenceIsSymmetric) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 2);
  ASSERT_EQ(g.incident(0).size(), 1u);
  ASSERT_EQ(g.incident(2).size(), 1u);
  EXPECT_EQ(g.incident(0)[0].neighbor, 2u);
  EXPECT_EQ(g.incident(0)[0].edge, e);
  EXPECT_EQ(g.incident(2)[0].neighbor, 0u);
  EXPECT_TRUE(g.incident(1).empty());
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, ParallelEdgesAllowed) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Graph, SelfLoopCountsOnce) {
  Graph g(1);
  g.add_edge(0, 0);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, OppositeEndpoint) {
  Graph g(3);
  const EdgeId e = g.add_edge(1, 2);
  EXPECT_EQ(g.opposite(e, 1), 2u);
  EXPECT_EQ(g.opposite(e, 2), 1u);
  EXPECT_THROW(g.opposite(e, 0), std::invalid_argument);
}

TEST(Graph, RejectsBadInput) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(g.edge(99), std::out_of_range);
  EXPECT_THROW(g.incident(99), std::out_of_range);
}

TEST(AliveMask, AllAliveMatchesGraph) {
  Graph g(3);
  g.add_edge(0, 1);
  const AliveMask mask = AliveMask::all_alive(g);
  EXPECT_EQ(mask.vertex_alive.size(), 3u);
  EXPECT_EQ(mask.edge_alive.size(), 1u);
  EXPECT_TRUE(mask.traversable(g, 0));
}

TEST(AliveMask, DeadEdgeNotTraversable) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1);
  AliveMask mask = AliveMask::all_alive(g);
  mask.edge_alive.reset(e);
  EXPECT_FALSE(mask.traversable(g, e));
}

TEST(AliveMask, DeadEndpointBlocksEdge) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1);
  AliveMask mask = AliveMask::all_alive(g);
  mask.vertex_alive.reset(1);
  EXPECT_FALSE(mask.traversable(g, e));
}

TEST(AliveMask, OutOfRangeEdgeIsNotTraversable) {
  Graph g(2);
  g.add_edge(0, 1);
  const AliveMask mask = AliveMask::all_alive(g);
  EXPECT_FALSE(mask.traversable(g, 42));
}

}  // namespace
}  // namespace solarnet::graph
