#include "graph/traversal.h"

#include <gtest/gtest.h>

namespace solarnet::graph {
namespace {

// 0 --1-- 1 --1-- 2
//  \------5------/      (direct heavy edge 0-2)
Graph weighted_triangle() {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 5.0);
  return g;
}

TEST(Reachability, BasicFlood) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto reach = reachable_from(g, AliveMask::all_alive(g), 0);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[2]);
  EXPECT_FALSE(reach[3]);
}

TEST(Reachability, DeadSourceReachesNothing) {
  Graph g(2);
  g.add_edge(0, 1);
  AliveMask mask = AliveMask::all_alive(g);
  mask.vertex_alive.reset(0);
  const auto reach = reachable_from(g, mask, 0);
  EXPECT_FALSE(reach[0]);
  EXPECT_FALSE(reach[1]);
}

TEST(Reachability, MaskBlocksEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  const EdgeId e = g.add_edge(1, 2);
  AliveMask mask = AliveMask::all_alive(g);
  mask.edge_alive.reset(e);
  const auto reach = reachable_from(g, mask, 0);
  EXPECT_TRUE(reach[1]);
  EXPECT_FALSE(reach[2]);
}

TEST(BfsHops, CountsEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);  // shortcut
  const auto hops = bfs_hops(g, AliveMask::all_alive(g), 0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 1u);
  EXPECT_EQ(hops[3], kUnreachableHops);
}

TEST(Dijkstra, PrefersLightPath) {
  const Graph g = weighted_triangle();
  const ShortestPaths sp = dijkstra(g, AliveMask::all_alive(g), 0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 2.0);  // via vertex 1, not the 5.0 edge
  const auto path = sp.path_to(2);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 1u);
  EXPECT_EQ(path[2], 2u);
}

TEST(Dijkstra, DirectWhenCheaper) {
  Graph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 10.0);
  g.add_edge(0, 2, 5.0);
  const ShortestPaths sp = dijkstra(g, AliveMask::all_alive(g), 0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 5.0);
  EXPECT_EQ(sp.path_to(2).size(), 2u);
}

TEST(Dijkstra, UnreachableIsInfinity) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const ShortestPaths sp = dijkstra(g, AliveMask::all_alive(g), 0);
  EXPECT_EQ(sp.distance[2], kUnreachable);
  EXPECT_TRUE(sp.path_to(2).empty());
}

TEST(Dijkstra, MaskChangesRoute) {
  const Graph g = weighted_triangle();
  AliveMask mask = AliveMask::all_alive(g);
  mask.vertex_alive.reset(1);  // force the heavy direct edge
  const ShortestPaths sp = dijkstra(g, mask, 0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 5.0);
}

TEST(Dijkstra, SourceProperties) {
  const Graph g = weighted_triangle();
  const ShortestPaths sp = dijkstra(g, AliveMask::all_alive(g), 1);
  EXPECT_DOUBLE_EQ(sp.distance[1], 0.0);
  EXPECT_EQ(sp.parent[1], kInvalidVertex);
  const auto self_path = sp.path_to(1);
  ASSERT_EQ(self_path.size(), 1u);
  EXPECT_EQ(self_path[0], 1u);
}

TEST(Dijkstra, ThrowsOnBadSource) {
  const Graph g = weighted_triangle();
  EXPECT_THROW(dijkstra(g, AliveMask::all_alive(g), 99),
               std::invalid_argument);
}

TEST(Dijkstra, DeadSourceHasNoDistances) {
  const Graph g = weighted_triangle();
  AliveMask mask = AliveMask::all_alive(g);
  mask.vertex_alive.reset(0);
  const ShortestPaths sp = dijkstra(g, mask, 0);
  EXPECT_EQ(sp.distance[0], kUnreachable);
  EXPECT_EQ(sp.distance[1], kUnreachable);
}

TEST(Dijkstra, ZeroWeightEdges) {
  Graph g(3);
  g.add_edge(0, 1, 0.0);
  g.add_edge(1, 2, 0.0);
  const ShortestPaths sp = dijkstra(g, AliveMask::all_alive(g), 0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 0.0);
}

TEST(Dijkstra, LargeLineGraph) {
  constexpr std::size_t kN = 10000;
  Graph g(kN);
  for (std::size_t i = 1; i < kN; ++i) {
    g.add_edge(static_cast<VertexId>(i - 1), static_cast<VertexId>(i), 1.0);
  }
  const ShortestPaths sp = dijkstra(g, AliveMask::all_alive(g), 0);
  EXPECT_DOUBLE_EQ(sp.distance[kN - 1], static_cast<double>(kN - 1));
}

}  // namespace
}  // namespace solarnet::graph
