#include "graph/shortest_paths.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/traversal.h"
#include "util/rng.h"

namespace solarnet::graph {
namespace {

std::vector<double> weights_of(const Graph& g) {
  std::vector<double> w(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) w[e] = g.edge(e).weight;
  return w;
}

// Random connected-ish graph: a spine path plus extra random edges,
// including the odd self-loop and parallel edge, with varied weights.
Graph random_graph(util::Rng& rng, std::size_t n, std::size_t extra_edges) {
  Graph g(n);
  for (VertexId v = 1; v < n; ++v) {
    g.add_edge(v - 1, v, 1.0 + rng.uniform() * 9.0);
  }
  for (std::size_t i = 0; i < extra_edges; ++i) {
    const auto u = static_cast<VertexId>(rng.uniform_below(n));
    const auto v = static_cast<VertexId>(rng.uniform_below(n));
    g.add_edge(u, v, 0.5 + rng.uniform() * 20.0);  // may repeat or self-loop
  }
  return g;
}

AliveMask random_mask(util::Rng& rng, const Graph& g, double dead_fraction) {
  AliveMask mask = AliveMask::all_alive(g);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (rng.uniform() < dead_fraction) mask.edge_alive.reset(e);
  }
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (rng.uniform() < dead_fraction / 2.0) mask.vertex_alive.reset(v);
  }
  return mask;
}

void expect_matches_dijkstra(const Graph& g, const AliveMask& mask,
                             VertexId source, RoutingScratch& scratch) {
  const Csr csr(g);
  const std::vector<double> w = weights_of(g);
  shortest_path_tree(csr, w, mask, source, scratch);
  const ShortestPaths sp = dijkstra(g, mask, source);
  ASSERT_EQ(scratch.distance.size(), sp.distance.size());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    // Bit-identical, not approximately equal: the kernels must run the
    // same float operations in the same order.
    EXPECT_EQ(scratch.distance[v], sp.distance[v]) << "vertex " << v;
    EXPECT_EQ(scratch.parent[v], sp.parent[v]) << "vertex " << v;
    EXPECT_EQ(scratch.parent_edge[v], sp.parent_edge[v]) << "vertex " << v;
  }
}

TEST(ShortestPathTree, MatchesDijkstraOnSmallGraph) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 5.0);
  g.add_edge(2, 3, 2.0);
  RoutingScratch scratch;
  expect_matches_dijkstra(g, AliveMask::all_alive(g), 0, scratch);
}

TEST(ShortestPathTree, PropertySweepVsDijkstra) {
  util::Rng rng(20260808);
  RoutingScratch scratch;  // deliberately reused across every case
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.uniform_below(40);
    const Graph g = random_graph(rng, n, rng.uniform_below(3 * n));
    const AliveMask mask = random_mask(rng, g, rng.uniform() * 0.5);
    const auto source = static_cast<VertexId>(rng.uniform_below(n));
    expect_matches_dijkstra(g, mask, source, scratch);
  }
}

TEST(ShortestPathTree, DeadSourceIsAllUnreachable) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  AliveMask mask = AliveMask::all_alive(g);
  mask.vertex_alive.reset(0);
  RoutingScratch scratch;
  shortest_path_tree(Csr(g), weights_of(g), mask, 0, scratch);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(scratch.distance[v], kUnreachable);
    EXPECT_EQ(scratch.parent_edge[v], kInvalidEdge);
  }
}

TEST(ShortestPathTree, ScratchReuseIsDeterministic) {
  util::Rng rng(7);
  const Graph g = random_graph(rng, 30, 60);
  const Csr csr(g);
  const std::vector<double> w = weights_of(g);
  const AliveMask mask = random_mask(rng, g, 0.3);
  RoutingScratch warm;
  // Warm the scratch on a different source, then compare against a cold one.
  shortest_path_tree(csr, w, mask, 5, warm);
  shortest_path_tree(csr, w, mask, 0, warm);
  RoutingScratch cold;
  shortest_path_tree(csr, w, mask, 0, cold);
  EXPECT_EQ(warm.distance, cold.distance);
  EXPECT_EQ(warm.parent, cold.parent);
  EXPECT_EQ(warm.parent_edge, cold.parent_edge);
}

TEST(ShortestPathTo, EarlyExitSettlesTarget) {
  util::Rng rng(11);
  RoutingScratch scratch;
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 2 + rng.uniform_below(30);
    const Graph g = random_graph(rng, n, rng.uniform_below(2 * n));
    const AliveMask mask = random_mask(rng, g, rng.uniform() * 0.4);
    const auto src = static_cast<VertexId>(rng.uniform_below(n));
    const auto dst = static_cast<VertexId>(rng.uniform_below(n));
    const ShortestPaths sp = dijkstra(g, mask, src);
    const bool reachable = shortest_path_to(Csr(g), weights_of(g), mask, src,
                                            dst, scratch);
    EXPECT_EQ(reachable, sp.distance[dst] != kUnreachable);
    if (!reachable) continue;
    EXPECT_EQ(scratch.distance[dst], sp.distance[dst]);
    // The target's whole parent chain must be final.
    for (VertexId v = dst; scratch.parent_edge[v] != kInvalidEdge;
         v = scratch.parent[v]) {
      EXPECT_EQ(scratch.parent_edge[v], sp.parent_edge[v]);
      EXPECT_EQ(scratch.parent[v], sp.parent[v]);
      EXPECT_EQ(scratch.distance[v], sp.distance[v]);
    }
  }
}

TEST(ShortestPathTree, ValidatesArguments) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  const Csr csr(g);
  const AliveMask mask = AliveMask::all_alive(g);
  const std::vector<double> w = weights_of(g);
  RoutingScratch scratch;
  EXPECT_THROW(shortest_path_tree(csr, w, mask, 2, scratch),
               std::invalid_argument);
  const std::vector<double> short_w;  // wrong edge count
  EXPECT_THROW(shortest_path_tree(csr, short_w, mask, 0, scratch),
               std::invalid_argument);
  EXPECT_THROW(shortest_path_to(csr, w, mask, 0, 9, scratch),
               std::invalid_argument);
}

}  // namespace
}  // namespace solarnet::graph
