#include "services/availability.h"

#include <gtest/gtest.h>

#include "datasets/datacenters.h"
#include "datasets/submarine.h"
#include "sim/monte_carlo.h"

namespace solarnet::services {
namespace {

// Line topology: NY (NA) - Bude (EU) - Singapore (AS) - Sydney (OC).
class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() : net_("svc") {
    ny_ = add_node("NY", {40.7, -74.0}, "US");
    bude_ = add_node("Bude", {50.8, -4.5}, "GB");
    sg_ = add_node("Singapore", {1.35, 103.8}, "SG");
    syd_ = add_node("Sydney", {-33.9, 151.2}, "AU");
    atl_ = add_cable("atl", ny_, bude_);
    asia_ = add_cable("asia", bude_, sg_);
    oc_ = add_cable("oc", sg_, syd_);
  }
  topo::NodeId add_node(const char* name, geo::GeoPoint p, const char* cc) {
    return net_.add_node({name, p, cc, topo::NodeKind::kLandingPoint, true});
  }
  topo::CableId add_cable(const char* name, topo::NodeId a, topo::NodeId b) {
    topo::Cable c;
    c.name = name;
    c.segments = {{a, b, 6000.0}};
    return net_.add_cable(std::move(c));
  }
  std::vector<bool> none() const {
    return std::vector<bool>(net_.cable_count(), false);
  }
  topo::InfrastructureNetwork net_;
  topo::NodeId ny_{}, bude_{}, sg_{}, syd_{};
  topo::CableId atl_{}, asia_{}, oc_{};
};

TEST_F(ServiceTest, HealthyNetworkFullyAvailable) {
  ServiceSpec svc;
  svc.name = "global-db";
  svc.replicas = {{40.7, -74.0}, {1.35, 103.8}};  // NY + Singapore
  svc.write_quorum = 2;
  const AvailabilityReport r = evaluate_service(net_, none(), svc);
  EXPECT_DOUBLE_EQ(r.read_availability, 1.0);
  EXPECT_DOUBLE_EQ(r.write_availability, 1.0);
}

TEST_F(ServiceTest, PartitionSplitsQuorum) {
  ServiceSpec svc;
  svc.name = "global-db";
  svc.replicas = {{40.7, -74.0}, {1.35, 103.8}};
  svc.write_quorum = 2;
  std::vector<bool> dead = none();
  dead[asia_] = true;  // Europe/NA vs Asia/Oceania partition
  const AvailabilityReport r = evaluate_service(net_, dead, svc);
  // Reads survive on both sides (one replica each); writes die everywhere.
  EXPECT_DOUBLE_EQ(r.read_availability, 1.0);
  EXPECT_DOUBLE_EQ(r.write_availability, 0.0);
}

TEST_F(ServiceTest, QuorumOneKeepsWritesPerPartition) {
  ServiceSpec svc;
  svc.name = "multi-master";
  svc.replicas = {{40.7, -74.0}, {1.35, 103.8}};
  svc.write_quorum = 1;
  std::vector<bool> dead = none();
  dead[asia_] = true;
  const AvailabilityReport r = evaluate_service(net_, dead, svc);
  EXPECT_DOUBLE_EQ(r.write_availability, 1.0);
}

TEST_F(ServiceTest, SingleReplicaLosesFarSide) {
  ServiceSpec svc;
  svc.name = "us-only";
  svc.replicas = {{40.7, -74.0}};  // NY only
  svc.write_quorum = 1;
  std::vector<bool> dead = none();
  dead[atl_] = true;  // NY isolated
  const AvailabilityReport r = evaluate_service(net_, dead, svc);
  // NY becomes its own island partition: clients attached to the same dark
  // landing station as the replica keep local service. In this 4-node toy
  // net both American anchors fall back to NY (nothing closer exists), so
  // NA and SA stay up; everyone else loses the service.
  for (const ContinentAvailability& c : r.per_continent) {
    if (c.continent == geo::Continent::kNorthAmerica ||
        c.continent == geo::Continent::kSouthAmerica) {
      EXPECT_TRUE(c.read_available) << geo::to_string(c.continent);
    } else {
      EXPECT_FALSE(c.read_available) << geo::to_string(c.continent);
    }
  }
  EXPECT_NEAR(r.read_availability, 0.075 + 0.055, 1e-9);  // NA + SA shares
}

TEST_F(ServiceTest, PerContinentBreakdown) {
  ServiceSpec svc;
  svc.name = "asia-db";
  svc.replicas = {{1.35, 103.8}};
  svc.write_quorum = 1;
  std::vector<bool> dead = none();
  dead[atl_] = true;  // NA cut off
  const AvailabilityReport r = evaluate_service(net_, dead, svc);
  for (const ContinentAvailability& c : r.per_continent) {
    if (c.continent == geo::Continent::kNorthAmerica) {
      EXPECT_FALSE(c.read_available);
    }
    if (c.continent == geo::Continent::kAsia ||
        c.continent == geo::Continent::kOceania ||
        c.continent == geo::Continent::kEurope) {
      EXPECT_TRUE(c.read_available) << geo::to_string(c.continent);
    }
  }
}

TEST_F(ServiceTest, SpecValidation) {
  ServiceSpec bad;
  bad.name = "bad";
  EXPECT_THROW(evaluate_service(net_, none(), bad), std::invalid_argument);
  bad.replicas = {{0.0, 0.0}};
  bad.write_quorum = 2;  // quorum > replicas
  EXPECT_THROW(evaluate_service(net_, none(), bad), std::invalid_argument);
}

TEST(ContinentShares, SumToOne) {
  double total = 0.0;
  for (const auto& [cont, share] : continent_population_shares()) {
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ServiceFromDatacenters, BuildsSpec) {
  const auto sites = datasets::datacenters_of(
      datasets::DataCenterOperator::kGoogle);
  std::vector<geo::GeoPoint> points;
  for (const auto& d : sites) points.push_back(d.location);
  const ServiceSpec spec = service_from_datacenters("google", points, 3);
  EXPECT_EQ(spec.replicas.size(), sites.size());
  EXPECT_EQ(spec.write_quorum, 3u);
}

TEST_F(ServiceTest, EvaluatorMatchesOneShotApi) {
  ServiceSpec svc;
  svc.name = "global-db";
  svc.replicas = {{40.7, -74.0}, {1.35, 103.8}};
  svc.write_quorum = 2;
  ServiceEvaluator evaluator(net_, svc);
  util::Rng rng(77);
  for (int draw = 0; draw < 20; ++draw) {
    std::vector<bool> dead_vb(net_.cable_count());
    util::Bitset dead_bits(net_.cable_count());
    for (std::size_t c = 0; c < net_.cable_count(); ++c) {
      const bool dead = rng.bernoulli(0.4);
      dead_vb[c] = dead;
      dead_bits.set(c, dead);
    }
    const AvailabilityReport ref = evaluate_service(net_, dead_vb, svc);
    const AvailabilityReport got = evaluator.evaluate(dead_bits);
    EXPECT_DOUBLE_EQ(got.read_availability, ref.read_availability);
    EXPECT_DOUBLE_EQ(got.write_availability, ref.write_availability);
    ASSERT_EQ(got.per_continent.size(), ref.per_continent.size());
    for (std::size_t i = 0; i < ref.per_continent.size(); ++i) {
      EXPECT_EQ(got.per_continent[i].read_available,
                ref.per_continent[i].read_available);
      EXPECT_EQ(got.per_continent[i].write_available,
                ref.per_continent[i].write_available);
    }
  }
}

TEST_F(ServiceTest, EvaluatorValidatesSpec) {
  ServiceSpec bad;
  bad.name = "bad";
  EXPECT_THROW(ServiceEvaluator(net_, bad), std::invalid_argument);
  bad.replicas = {{0.0, 0.0}};
  bad.write_quorum = 2;
  EXPECT_THROW(ServiceEvaluator(net_, bad), std::invalid_argument);
}

TEST_F(ServiceTest, SweepMatchesSerialPerDrawLoop) {
  ServiceSpec svc;
  svc.name = "global-db";
  svc.replicas = {{40.7, -74.0}, {1.35, 103.8}};
  svc.write_quorum = 1;
  const sim::FailureSimulator simulator(net_, {});
  const auto model = gic::LatitudeBandFailureModel::s1();
  constexpr std::size_t kDraws = 40;
  constexpr std::uint64_t kSeed = 11;

  // Reference: the pre-sweep idiom — draw d from child stream d, one
  // evaluate_service call per draw.
  util::RunningStats ref_read, ref_write;
  const util::Rng base(kSeed);
  for (std::size_t d = 0; d < kDraws; ++d) {
    util::Rng rng = base.split(d);
    const auto dead = simulator.sample_cable_failures(model, rng);
    const auto report = evaluate_service(net_, dead, svc);
    ref_read.add(report.read_availability);
    ref_write.add(report.write_availability);
  }

  const AvailabilitySweep sweep =
      availability_sweep(simulator, model, svc, kDraws, kSeed, 1);
  EXPECT_EQ(sweep.draws, kDraws);
  EXPECT_EQ(sweep.read_availability.count(), kDraws);
  EXPECT_DOUBLE_EQ(sweep.read_availability.mean(), ref_read.mean());
  EXPECT_DOUBLE_EQ(sweep.write_availability.mean(), ref_write.mean());
  EXPECT_DOUBLE_EQ(sweep.read_availability.sample_stddev(),
                   ref_read.sample_stddev());
  EXPECT_DOUBLE_EQ(sweep.write_availability.sample_stddev(),
                   ref_write.sample_stddev());
}

TEST_F(ServiceTest, SweepBitIdenticalAcrossThreadCounts) {
  ServiceSpec svc;
  svc.name = "global-db";
  svc.replicas = {{40.7, -74.0}, {1.35, 103.8}};
  svc.write_quorum = 2;
  const sim::FailureSimulator simulator(net_, {});
  const auto model = gic::LatitudeBandFailureModel::s2();
  constexpr std::size_t kDraws = 100;  // > kDrawChunk so chunking kicks in
  const AvailabilitySweep serial =
      availability_sweep(simulator, model, svc, kDraws, 3, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{0}}) {
    const AvailabilitySweep parallel =
        availability_sweep(simulator, model, svc, kDraws, 3, threads);
    EXPECT_EQ(parallel.read_availability.mean(),
              serial.read_availability.mean())
        << "threads=" << threads;
    EXPECT_EQ(parallel.read_availability.sample_stddev(),
              serial.read_availability.sample_stddev())
        << "threads=" << threads;
    EXPECT_EQ(parallel.write_availability.mean(),
              serial.write_availability.mean())
        << "threads=" << threads;
    EXPECT_EQ(parallel.write_availability.sample_stddev(),
              serial.write_availability.sample_stddev())
        << "threads=" << threads;
  }
}

TEST_F(ServiceTest, SweepZeroDrawsStillValidatesSpec) {
  const sim::FailureSimulator simulator(net_, {});
  const auto model = gic::LatitudeBandFailureModel::s1();
  ServiceSpec bad;
  bad.name = "bad";
  EXPECT_THROW(availability_sweep(simulator, model, bad, 0, 1),
               std::invalid_argument);
  ServiceSpec ok;
  ok.name = "ok";
  ok.replicas = {{40.7, -74.0}};
  ok.write_quorum = 1;
  const AvailabilitySweep sweep = availability_sweep(simulator, model, ok, 0, 1);
  EXPECT_EQ(sweep.draws, 0u);
  EXPECT_EQ(sweep.read_availability.count(), 0u);
}

TEST(ServiceFullScale, GoogleFootprintBeatsFacebookUnderS1) {
  // §4.4.2 restated as a service-availability experiment: the broader
  // replica footprint keeps more of the world readable after a storm.
  const auto net = datasets::make_submarine_network({});
  const sim::FailureSimulator simulator(net, {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();

  auto spec_for = [&](datasets::DataCenterOperator op, const char* name) {
    std::vector<geo::GeoPoint> points;
    for (const auto& d : datasets::datacenters_of(op)) {
      points.push_back(d.location);
    }
    return service_from_datacenters(name, points, 1);
  };
  const ServiceSpec google =
      spec_for(datasets::DataCenterOperator::kGoogle, "google");
  const ServiceSpec facebook =
      spec_for(datasets::DataCenterOperator::kFacebook, "facebook");

  double google_total = 0.0;
  double facebook_total = 0.0;
  util::Rng rng(21);
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const auto dead = simulator.sample_cable_failures(s1, rng);
    google_total += evaluate_service(net, dead, google).read_availability;
    facebook_total += evaluate_service(net, dead, facebook).read_availability;
  }
  EXPECT_GE(google_total, facebook_total);
  EXPECT_GT(google_total / kTrials, 0.3);
}

}  // namespace
}  // namespace solarnet::services
