#include "geo/distance.h"

#include <gtest/gtest.h>

#include <cmath>

namespace solarnet::geo {
namespace {

// Well-known reference distances (great circle, km).
TEST(Haversine, KnownCityPairs) {
  const GeoPoint nyc{40.71, -74.01};
  const GeoPoint london{51.51, -0.13};
  EXPECT_NEAR(haversine_km(nyc, london), 5570.0, 60.0);

  const GeoPoint sydney{-33.87, 151.21};
  const GeoPoint auckland{-36.85, 174.76};
  EXPECT_NEAR(haversine_km(sydney, auckland), 2156.0, 40.0);
}

TEST(Haversine, ZeroForCoincidentPoints) {
  const GeoPoint p{12.0, 34.0};
  EXPECT_DOUBLE_EQ(haversine_km(p, p), 0.0);
}

TEST(Haversine, SymmetricAndPositive) {
  const GeoPoint a{10.0, 20.0};
  const GeoPoint b{-30.0, 150.0};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
  EXPECT_GT(haversine_km(a, b), 0.0);
}

TEST(Haversine, AntipodalIsHalfCircumference) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(haversine_km(a, b), std::numbers::pi * kEarthRadiusKm, 1.0);
}

TEST(Haversine, EquatorDegreeLength) {
  // One degree of longitude at the equator is ~111.2 km.
  EXPECT_NEAR(haversine_km({0.0, 0.0}, {0.0, 1.0}), 111.2, 0.5);
}

TEST(Haversine, CrossesAntimeridianCorrectly) {
  // Fiji-ish to Samoa-ish across 180: short way, not around the world.
  const GeoPoint a{-18.0, 179.0};
  const GeoPoint b{-18.0, -179.0};
  EXPECT_LT(haversine_km(a, b), 250.0);
}

TEST(InitialBearing, CardinalDirections) {
  EXPECT_NEAR(initial_bearing_deg({0.0, 0.0}, {10.0, 0.0}), 0.0, 1e-9);
  EXPECT_NEAR(initial_bearing_deg({0.0, 0.0}, {0.0, 10.0}), 90.0, 1e-9);
  EXPECT_NEAR(initial_bearing_deg({0.0, 0.0}, {-10.0, 0.0}), 180.0, 1e-9);
  EXPECT_NEAR(initial_bearing_deg({0.0, 0.0}, {0.0, -10.0}), 270.0, 1e-9);
}

TEST(InitialBearing, CoincidentPointsReturnZero) {
  EXPECT_DOUBLE_EQ(initial_bearing_deg({5.0, 5.0}, {5.0, 5.0}), 0.0);
}

TEST(Destination, InvertsHaversine) {
  const GeoPoint start{37.77, -122.42};
  for (double bearing : {0.0, 45.0, 133.0, 270.0}) {
    for (double dist : {10.0, 500.0, 5000.0}) {
      const GeoPoint end = destination(start, bearing, dist);
      EXPECT_NEAR(haversine_km(start, end), dist, dist * 1e-9 + 1e-6);
    }
  }
}

TEST(Destination, ZeroDistanceStaysPut) {
  const GeoPoint p{10.0, 20.0};
  const GeoPoint q = destination(p, 77.0, 0.0);
  EXPECT_NEAR(q.lat_deg, p.lat_deg, 1e-12);
  EXPECT_NEAR(q.lon_deg, p.lon_deg, 1e-12);
}

TEST(Interpolate, EndpointsAndMidpoint) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 90.0};
  const GeoPoint t0 = interpolate(a, b, 0.0);
  EXPECT_NEAR(t0.lat_deg, 0.0, 1e-9);
  EXPECT_NEAR(t0.lon_deg, 0.0, 1e-9);
  const GeoPoint t1 = interpolate(a, b, 1.0);
  EXPECT_NEAR(t1.lon_deg, 90.0, 1e-9);
  const GeoPoint mid = interpolate(a, b, 0.5);
  EXPECT_NEAR(mid.lon_deg, 45.0, 1e-9);
  EXPECT_NEAR(mid.lat_deg, 0.0, 1e-9);
}

TEST(Interpolate, ClampsT) {
  const GeoPoint a{10.0, 10.0};
  const GeoPoint b{20.0, 20.0};
  const GeoPoint lo = interpolate(a, b, -0.5);
  EXPECT_NEAR(lo.lat_deg, a.lat_deg, 1e-9);
  const GeoPoint hi = interpolate(a, b, 1.5);
  EXPECT_NEAR(hi.lat_deg, b.lat_deg, 1e-9);
}

TEST(Interpolate, CoincidentPoints) {
  const GeoPoint a{10.0, 10.0};
  const GeoPoint m = interpolate(a, a, 0.5);
  EXPECT_NEAR(m.lat_deg, 10.0, 1e-9);
  EXPECT_NEAR(m.lon_deg, 10.0, 1e-9);
}

TEST(Interpolate, DistanceIsProportional) {
  const GeoPoint a{40.0, -74.0};
  const GeoPoint b{51.0, 0.0};
  const double total = haversine_km(a, b);
  for (double t : {0.25, 0.5, 0.75}) {
    const GeoPoint p = interpolate(a, b, t);
    EXPECT_NEAR(haversine_km(a, p), t * total, total * 1e-6);
  }
}

TEST(SamplePath, IncludesEndpointsAndRespectsStep) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 10.0};  // ~1112 km
  const auto path = sample_path(a, b, 100.0);
  ASSERT_GE(path.size(), 2u);
  EXPECT_NEAR(path.front().lon_deg, 0.0, 1e-9);
  EXPECT_NEAR(path.back().lon_deg, 10.0, 1e-9);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_LE(haversine_km(path[i - 1], path[i]), 100.0 + 1e-6);
  }
}

TEST(SamplePath, ShortSegmentIsJustEndpoints) {
  const auto path = sample_path({0.0, 0.0}, {0.0, 0.1}, 100.0);
  EXPECT_EQ(path.size(), 2u);
}

TEST(SamplePath, RejectsBadStep) {
  EXPECT_THROW(sample_path({0, 0}, {1, 1}, 0.0), std::invalid_argument);
  EXPECT_THROW(sample_path({0, 0}, {1, 1}, -5.0), std::invalid_argument);
}

TEST(PathLength, SumsSegments) {
  const std::vector<GeoPoint> path = {{0, 0}, {0, 1}, {0, 2}};
  EXPECT_NEAR(path_length_km(path), haversine_km({0, 0}, {0, 2}), 0.01);
  EXPECT_DOUBLE_EQ(path_length_km({}), 0.0);
  EXPECT_DOUBLE_EQ(path_length_km({{1, 1}}), 0.0);
}

TEST(SamplePath, PathLengthMatchesDirectDistance) {
  const GeoPoint a{35.0, 139.0};
  const GeoPoint b{37.0, -122.0};
  const auto path = sample_path(a, b, 50.0);
  EXPECT_NEAR(path_length_km(path), haversine_km(a, b), 1.0);
}

TEST(RoadDistance, AlwaysAtLeastGreatCircle) {
  const GeoPoint a{40.0, -74.0};
  const GeoPoint b{41.9, -87.6};
  EXPECT_GT(road_distance_km(a, b), haversine_km(a, b));
}

TEST(RoadDistance, CircuityScaleSensitivity) {
  // DESIGN.md choice #3: the circuity profile is a knob. Scale 0 degrades
  // to the great circle; scale 1 is the published default; larger scales
  // only add detour, and repeater counts respond sub-linearly.
  const GeoPoint a{40.0, -74.0};
  const GeoPoint b{41.9, -87.6};
  const double gc = haversine_km(a, b);
  EXPECT_NEAR(road_distance_km(a, b, 0.0), gc, 1e-9);
  EXPECT_DOUBLE_EQ(road_distance_km(a, b, 1.0), road_distance_km(a, b));
  EXPECT_GT(road_distance_km(a, b, 2.0), road_distance_km(a, b, 1.0));
  // Negative scales clamp at the great circle (roads are never shorter).
  EXPECT_NEAR(road_distance_km(a, b, -5.0), gc, 1e-9);
  // A +/-20% circuity error moves an ~1150 km route by under 5% — the
  // repeater-count calibration is robust to the knob.
  const double base = road_distance_km(a, b, 1.0);
  EXPECT_LT(std::abs(road_distance_km(a, b, 1.2) - base) / base, 0.05);
  EXPECT_LT(std::abs(road_distance_km(a, b, 0.8) - base) / base, 0.05);
}

TEST(RoadDistance, CircuityShrinksWithDistance) {
  const GeoPoint base{39.0, -95.0};
  const double short_ratio =
      road_distance_km(base, destination(base, 90.0, 50.0)) / 50.0;
  const double long_ratio =
      road_distance_km(base, destination(base, 90.0, 2000.0)) / 2000.0;
  EXPECT_GT(short_ratio, long_ratio);
  EXPECT_NEAR(short_ratio, 1.45, 0.01);
  EXPECT_NEAR(long_ratio, 1.20, 0.01);
}

}  // namespace
}  // namespace solarnet::geo
