#include "geo/regions.h"

#include <gtest/gtest.h>

namespace solarnet::geo {
namespace {

TEST(LatitudeBand, BoundariesMatchPaper) {
  // The paper splits at 40 and 60 degrees (§4.3.3).
  EXPECT_EQ(latitude_band(0.0), LatitudeBand::kLow);
  EXPECT_EQ(latitude_band(39.99), LatitudeBand::kLow);
  EXPECT_EQ(latitude_band(40.0), LatitudeBand::kLow);   // 40 < L strict
  EXPECT_EQ(latitude_band(40.01), LatitudeBand::kMid);
  EXPECT_EQ(latitude_band(60.0), LatitudeBand::kMid);
  EXPECT_EQ(latitude_band(60.01), LatitudeBand::kHigh);
  EXPECT_EQ(latitude_band(90.0), LatitudeBand::kHigh);
}

TEST(LatitudeBand, SymmetricInHemisphere) {
  EXPECT_EQ(latitude_band(-45.0), LatitudeBand::kMid);
  EXPECT_EQ(latitude_band(-65.0), LatitudeBand::kHigh);
  EXPECT_EQ(latitude_band(-10.0), LatitudeBand::kLow);
  EXPECT_EQ(latitude_band(GeoPoint{-45.0, 10.0}), LatitudeBand::kMid);
}

TEST(LatitudeBand, ToStringIsDistinct) {
  EXPECT_NE(to_string(LatitudeBand::kHigh), to_string(LatitudeBand::kLow));
  EXPECT_NE(to_string(LatitudeBand::kHigh), to_string(LatitudeBand::kMid));
}

TEST(HighRiskRegion, UsesAbsoluteLatitude) {
  EXPECT_TRUE(in_high_risk_region({50.0, 0.0}));
  EXPECT_TRUE(in_high_risk_region({-50.0, 0.0}));
  EXPECT_FALSE(in_high_risk_region({39.0, 0.0}));
}

TEST(GeoBox, ContainsBasics) {
  const GeoBox box{10.0, 20.0, -5.0, 5.0};
  EXPECT_TRUE(box.contains({15.0, 0.0}));
  EXPECT_TRUE(box.contains({10.0, -5.0}));  // inclusive edges
  EXPECT_FALSE(box.contains({9.9, 0.0}));
  EXPECT_FALSE(box.contains({15.0, 6.0}));
}

TEST(GeoBox, WrapsAntimeridian) {
  const GeoBox fiji{-20.0, -15.0, 175.0, -175.0};
  EXPECT_TRUE(fiji.contains({-18.0, 179.0}));
  EXPECT_TRUE(fiji.contains({-18.0, -179.0}));
  EXPECT_FALSE(fiji.contains({-18.0, 0.0}));
}

TEST(CountryLookup, MajorCities) {
  EXPECT_EQ(country_code_at({40.71, -74.01}).value_or(""), "US");   // NYC
  EXPECT_EQ(country_code_at({51.51, -0.13}).value_or(""), "GB");    // London
  EXPECT_EQ(country_code_at({1.35, 103.82}).value_or(""), "SG");    // Singapore
  EXPECT_EQ(country_code_at({35.68, 139.69}).value_or(""), "JP");   // Tokyo
  EXPECT_EQ(country_code_at({-33.87, 151.21}).value_or(""), "AU");  // Sydney
  EXPECT_EQ(country_code_at({19.08, 72.88}).value_or(""), "IN");    // Mumbai
  EXPECT_EQ(country_code_at({31.23, 121.47}).value_or(""), "CN");   // Shanghai
  EXPECT_EQ(country_code_at({-23.55, -46.63}).value_or(""), "BR");  // Sao Paulo
  EXPECT_EQ(country_code_at({-33.92, 18.42}).value_or(""), "ZA");   // Cape Town
}

TEST(CountryLookup, NestedCountriesResolveBeforeNeighbors) {
  // Singapore sits inside the Malaysia/Indonesia bounding region.
  EXPECT_EQ(country_code_at({1.3, 103.8}).value_or(""), "SG");
  // Alaska must be US, not Canada.
  EXPECT_EQ(country_code_at({61.22, -149.90}).value_or(""), "US");
  // Hawaii must be US.
  EXPECT_EQ(country_code_at({21.31, -157.86}).value_or(""), "US");
  // Portugal before Spain.
  EXPECT_EQ(country_code_at({38.72, -9.14}).value_or(""), "PT");
}

TEST(CountryLookup, OpenOceanIsNullopt) {
  EXPECT_FALSE(country_code_at({0.0, -30.0}).has_value());      // mid Atlantic
  EXPECT_FALSE(country_code_at({-40.0, -120.0}).has_value());   // S Pacific
}

TEST(ContinentOf, KnownCodes) {
  EXPECT_EQ(continent_of("US"), Continent::kNorthAmerica);
  EXPECT_EQ(continent_of("BR"), Continent::kSouthAmerica);
  EXPECT_EQ(continent_of("DE"), Continent::kEurope);
  EXPECT_EQ(continent_of("ZA"), Continent::kAfrica);
  EXPECT_EQ(continent_of("JP"), Continent::kAsia);
  EXPECT_EQ(continent_of("NZ"), Continent::kOceania);
}

TEST(ContinentOf, UnknownCodeThrows) {
  EXPECT_THROW(continent_of("XX"), std::out_of_range);
}

TEST(ContinentAt, FallsBackForNonCountryPoints) {
  EXPECT_EQ(continent_at({46.0, 14.0}), Continent::kEurope);   // Slovenia-ish
  EXPECT_EQ(continent_at({15.0, 30.0}), Continent::kAfrica);   // Sudan-ish
  EXPECT_EQ(continent_at({-75.0, 0.0}), Continent::kAntarctica);
  EXPECT_EQ(continent_at({64.18, -51.72}), Continent::kNorthAmerica);  // Nuuk
}

TEST(ContinentAt, RemoteOceanSnapsSanely) {
  EXPECT_EQ(continent_at({-30.0, -100.0}), Continent::kSouthAmerica);
  EXPECT_EQ(continent_at({-25.0, 160.0}), Continent::kOceania);
}

TEST(CountryRegistry, CoversPaperCountries) {
  // Every country named in §4.3.4 must be classifiable.
  for (const char* code : {"US", "CN", "IN", "SG", "GB", "ZA", "AU", "NZ",
                           "BR", "CA", "JP", "HK", "ID", "PH", "MX", "CR",
                           "PT", "ES", "FR", "NO", "SO", "MZ", "MG"}) {
    EXPECT_NO_THROW(continent_of(code)) << code;
  }
}

TEST(CountryRegistry, BoxesContainTheirOwnCountry) {
  for (const CountryInfo& c : country_registry()) {
    ASSERT_FALSE(c.boxes.empty()) << c.code;
    for (const GeoBox& b : c.boxes) {
      EXPECT_LE(b.south, b.north) << c.code;
    }
  }
}

}  // namespace
}  // namespace solarnet::geo
