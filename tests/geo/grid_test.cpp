#include "geo/grid.h"

#include <gtest/gtest.h>

namespace solarnet::geo {
namespace {

TEST(LatLonGrid, DimensionsFollowCellSize) {
  const LatLonGrid g1(1.0);
  EXPECT_EQ(g1.rows(), 180u);
  EXPECT_EQ(g1.cols(), 360u);
  const LatLonGrid g5(5.0);
  EXPECT_EQ(g5.rows(), 36u);
  EXPECT_EQ(g5.cols(), 72u);
}

TEST(LatLonGrid, RejectsBadCellSize) {
  EXPECT_THROW(LatLonGrid(0.0), std::invalid_argument);
  EXPECT_THROW(LatLonGrid(-1.0), std::invalid_argument);
  EXPECT_THROW(LatLonGrid(7.0), std::invalid_argument);  // doesn't divide 180
}

TEST(LatLonGrid, AddAndQuery) {
  LatLonGrid g(1.0);
  g.add({10.5, 20.5}, 3.0);
  EXPECT_DOUBLE_EQ(g.at({10.5, 20.5}), 3.0);
  EXPECT_DOUBLE_EQ(g.at({10.9, 20.1}), 3.0);  // same cell
  EXPECT_DOUBLE_EQ(g.at({11.5, 20.5}), 0.0);  // next cell
  EXPECT_DOUBLE_EQ(g.total(), 3.0);
}

TEST(LatLonGrid, AddAccumulates) {
  LatLonGrid g(1.0);
  g.add({0.5, 0.5}, 1.0);
  g.add({0.5, 0.5}, 2.0);
  EXPECT_DOUBLE_EQ(g.at({0.5, 0.5}), 3.0);
}

TEST(LatLonGrid, RejectsInvalidInput) {
  LatLonGrid g(1.0);
  EXPECT_THROW(g.add({95.0, 0.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(g.add({0.0, 0.0}, -1.0), std::invalid_argument);
}

TEST(LatLonGrid, PolesAndEdgesLandInGrid) {
  LatLonGrid g(1.0);
  EXPECT_NO_THROW(g.add({90.0, 0.0}, 1.0));
  EXPECT_NO_THROW(g.add({-90.0, 0.0}, 1.0));
  EXPECT_NO_THROW(g.add({0.0, -180.0}, 1.0));
  EXPECT_NO_THROW(g.add({0.0, 179.99}, 1.0));
  EXPECT_DOUBLE_EQ(g.total(), 4.0);
}

TEST(LatLonGrid, CellAccessAndCenter) {
  LatLonGrid g(5.0);
  g.set_cell(0, 0, 7.0);
  EXPECT_DOUBLE_EQ(g.cell(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(g.total(), 7.0);
  g.set_cell(0, 0, 3.0);  // overwrite adjusts total
  EXPECT_DOUBLE_EQ(g.total(), 3.0);
  const GeoPoint c = g.cell_center(0, 0);
  EXPECT_DOUBLE_EQ(c.lat_deg, -87.5);
  EXPECT_DOUBLE_EQ(c.lon_deg, -177.5);
  EXPECT_THROW(g.cell(100, 0), std::out_of_range);
  EXPECT_THROW(g.cell_center(0, 100), std::out_of_range);
}

TEST(LatLonGrid, LatitudeBandTotal) {
  LatLonGrid g(1.0);
  g.add({45.5, 0.0}, 2.0);
  g.add({-45.5, 0.0}, 3.0);
  g.add({10.5, 0.0}, 5.0);
  EXPECT_DOUBLE_EQ(g.latitude_band_total(40.0, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(g.latitude_band_total(-50.0, -40.0), 3.0);
  EXPECT_DOUBLE_EQ(g.latitude_band_total(-90.0, 90.0), 10.0);
}

TEST(LatLonGrid, FractionAboveAbsLatitude) {
  LatLonGrid g(1.0);
  g.add({50.5, 0.0}, 1.0);
  g.add({-50.5, 0.0}, 1.0);
  g.add({0.5, 0.0}, 2.0);
  EXPECT_DOUBLE_EQ(g.fraction_above_abs_latitude(40.0), 0.5);
  EXPECT_DOUBLE_EQ(g.fraction_above_abs_latitude(60.0), 0.0);
  EXPECT_DOUBLE_EQ(LatLonGrid(1.0).fraction_above_abs_latitude(40.0), 0.0);
}

TEST(LatLonGrid, LatitudeSamplesMatchMass) {
  LatLonGrid g(1.0);
  g.add({10.5, 0.5}, 1.5);
  g.add({20.5, 30.5}, 2.5);
  const auto samples = g.latitude_samples();
  ASSERT_EQ(samples.size(), 2u);
  double mass = 0.0;
  for (const auto& [lat, w] : samples) mass += w;
  EXPECT_DOUBLE_EQ(mass, 4.0);
}

}  // namespace
}  // namespace solarnet::geo
