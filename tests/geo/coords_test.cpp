#include "geo/coords.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace solarnet::geo {
namespace {

TEST(AngleConversion, RoundTrip) {
  EXPECT_NEAR(rad_to_deg(deg_to_rad(37.5)), 37.5, 1e-12);
  EXPECT_NEAR(deg_to_rad(180.0), std::numbers::pi, 1e-12);
  EXPECT_NEAR(rad_to_deg(std::numbers::pi / 2.0), 90.0, 1e-12);
}

TEST(NormalizeLongitude, WrapsIntoRange) {
  EXPECT_DOUBLE_EQ(normalize_longitude(0.0), 0.0);
  EXPECT_DOUBLE_EQ(normalize_longitude(190.0), -170.0);
  EXPECT_DOUBLE_EQ(normalize_longitude(-190.0), 170.0);
  EXPECT_DOUBLE_EQ(normalize_longitude(360.0), 0.0);
  EXPECT_DOUBLE_EQ(normalize_longitude(540.0), 180.0 - 360.0);
  EXPECT_DOUBLE_EQ(normalize_longitude(-180.0), -180.0);
  // +180 wraps to -180 (half-open interval).
  EXPECT_DOUBLE_EQ(normalize_longitude(180.0), -180.0);
}

TEST(GeoPoint, AbsLat) {
  EXPECT_DOUBLE_EQ((GeoPoint{-51.0, 0.0}).abs_lat(), 51.0);
  EXPECT_DOUBLE_EQ((GeoPoint{12.5, 0.0}).abs_lat(), 12.5);
}

TEST(Validated, NormalizesLongitude) {
  const GeoPoint p = validated({10.0, 200.0});
  EXPECT_DOUBLE_EQ(p.lat_deg, 10.0);
  EXPECT_DOUBLE_EQ(p.lon_deg, -160.0);
}

TEST(Validated, RejectsBadLatitude) {
  EXPECT_THROW(validated({91.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(validated({-90.5, 0.0}), std::invalid_argument);
  EXPECT_NO_THROW(validated({90.0, 0.0}));
  EXPECT_NO_THROW(validated({-90.0, 0.0}));
}

TEST(Validated, RejectsNonFinite) {
  EXPECT_THROW(validated({std::nan(""), 0.0}), std::invalid_argument);
  EXPECT_THROW(validated({0.0, std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
}

TEST(IsValid, MirrorsValidated) {
  EXPECT_TRUE(is_valid({45.0, 90.0}));
  EXPECT_FALSE(is_valid({95.0, 0.0}));
  EXPECT_FALSE(is_valid({std::nan(""), 0.0}));
}

TEST(ToString, Streams) {
  std::ostringstream os;
  os << GeoPoint{1.5, -2.5};
  EXPECT_EQ(os.str(), "(1.5, -2.5)");
}

TEST(UnitVector, RoundTripsAtVariousPoints) {
  for (const GeoPoint p : {GeoPoint{0.0, 0.0}, GeoPoint{45.0, 45.0},
                           GeoPoint{-60.0, 170.0}, GeoPoint{89.0, -120.0}}) {
    const GeoPoint q = from_unit_vector(to_unit_vector(p));
    EXPECT_NEAR(q.lat_deg, p.lat_deg, 1e-9);
    EXPECT_NEAR(q.lon_deg, p.lon_deg, 1e-9);
  }
}

TEST(UnitVector, HasUnitNorm) {
  const Vec3 v = to_unit_vector({33.0, -110.0});
  EXPECT_NEAR(v.x * v.x + v.y * v.y + v.z * v.z, 1.0, 1e-12);
}

TEST(UnitVector, PolesMapToZAxis) {
  const Vec3 north = to_unit_vector({90.0, 0.0});
  EXPECT_NEAR(north.z, 1.0, 1e-12);
  EXPECT_NEAR(north.x, 0.0, 1e-12);
  const Vec3 south = to_unit_vector({-90.0, 57.0});
  EXPECT_NEAR(south.z, -1.0, 1e-12);
}

TEST(FromUnitVector, ZeroVectorIsSafe) {
  const GeoPoint p = from_unit_vector({0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(p.lat_deg, 0.0);
  EXPECT_DOUBLE_EQ(p.lon_deg, 0.0);
}

}  // namespace
}  // namespace solarnet::geo
