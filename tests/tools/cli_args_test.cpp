#include "cli_args.h"

#include <gtest/gtest.h>

namespace solarnet::cli {
namespace {

Args parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "solarnet");
  return Args::parse(static_cast<int>(argv.size()),
                     const_cast<char**>(argv.data()));
}

TEST(Args, EmptyCommandLine) {
  const Args a = parse({});
  EXPECT_TRUE(a.command().empty());
  EXPECT_TRUE(a.keys().empty());
}

TEST(Args, CommandOnly) {
  const Args a = parse({"risk"});
  EXPECT_EQ(a.command(), "risk");
  EXPECT_FALSE(a.has("start"));
}

TEST(Args, KeyValuePairs) {
  const Args a = parse({"scenario", "--storm", "1989", "--trials", "5"});
  EXPECT_EQ(a.command(), "scenario");
  EXPECT_EQ(a.get_or("storm", "x"), "1989");
  EXPECT_EQ(a.get_int_or("trials", 0), 5);
}

TEST(Args, BareSwitches) {
  const Args a = parse({"model", "--s2", "--spacing", "100"});
  EXPECT_TRUE(a.has("s2"));
  EXPECT_EQ(a.get("s2").value(), "");
  EXPECT_DOUBLE_EQ(a.get_double_or("spacing", 0.0), 100.0);
}

TEST(Args, SwitchFollowedBySwitch) {
  const Args a = parse({"model", "--s1", "--s2"});
  EXPECT_TRUE(a.has("s1"));
  EXPECT_TRUE(a.has("s2"));
}

TEST(Args, DefaultsWhenMissing) {
  const Args a = parse({"risk"});
  EXPECT_EQ(a.get_or("start", "2026"), "2026");
  EXPECT_DOUBLE_EQ(a.get_double_or("years", 10.0), 10.0);
  EXPECT_EQ(a.get_int_or("trials", 10), 10);
  EXPECT_FALSE(a.get("missing").has_value());
}

TEST(Args, MalformedNumberThrows) {
  const Args a = parse({"risk", "--start", "soon"});
  EXPECT_THROW(a.get_double_or("start", 0.0), std::invalid_argument);
}

TEST(Args, KeysListsEverything) {
  const Args a = parse({"plan", "--from", "Miami", "--to", "Dakar"});
  const auto keys = a.keys();
  EXPECT_EQ(keys.size(), 2u);
}

}  // namespace
}  // namespace solarnet::cli
