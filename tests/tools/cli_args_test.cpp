#include "cli_args.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace solarnet::cli {
namespace {

Args parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "solarnet");
  return Args::parse(static_cast<int>(argv.size()),
                     const_cast<char**>(argv.data()));
}

TEST(Args, EmptyCommandLine) {
  const Args a = parse({});
  EXPECT_TRUE(a.command().empty());
  EXPECT_TRUE(a.keys().empty());
}

TEST(Args, CommandOnly) {
  const Args a = parse({"risk"});
  EXPECT_EQ(a.command(), "risk");
  EXPECT_FALSE(a.has("start"));
}

TEST(Args, KeyValuePairs) {
  const Args a = parse({"scenario", "--storm", "1989", "--trials", "5"});
  EXPECT_EQ(a.command(), "scenario");
  EXPECT_EQ(a.get_or("storm", "x"), "1989");
  EXPECT_EQ(a.get_int_or("trials", 0), 5);
}

TEST(Args, BareSwitches) {
  const Args a = parse({"model", "--s2", "--spacing", "100"});
  EXPECT_TRUE(a.has("s2"));
  EXPECT_EQ(a.get("s2").value(), "");
  EXPECT_DOUBLE_EQ(a.get_double_or("spacing", 0.0), 100.0);
}

TEST(Args, SwitchFollowedBySwitch) {
  const Args a = parse({"model", "--s1", "--s2"});
  EXPECT_TRUE(a.has("s1"));
  EXPECT_TRUE(a.has("s2"));
}

TEST(Args, DefaultsWhenMissing) {
  const Args a = parse({"risk"});
  EXPECT_EQ(a.get_or("start", "2026"), "2026");
  EXPECT_DOUBLE_EQ(a.get_double_or("years", 10.0), 10.0);
  EXPECT_EQ(a.get_int_or("trials", 10), 10);
  EXPECT_FALSE(a.get("missing").has_value());
}

TEST(Args, MalformedNumberThrows) {
  const Args a = parse({"risk", "--start", "soon"});
  EXPECT_THROW(a.get_double_or("start", 0.0), std::invalid_argument);
}

TEST(Args, KeysListsEverything) {
  const Args a = parse({"plan", "--from", "Miami", "--to", "Dakar"});
  const auto keys = a.keys();
  EXPECT_EQ(keys.size(), 2u);
}

TEST(Args, GetTrialsOrReturnsValueOrFallback) {
  EXPECT_EQ(parse({"risk", "--trials", "5000"}).get_trials_or(10), 5000u);
  EXPECT_EQ(parse({"risk"}).get_trials_or(10), 10u);
  EXPECT_EQ(parse({"risk", "--trials", "1"}).get_trials_or(10), 1u);
}

TEST(Args, GetTrialsOrRejectsNonPositiveCounts) {
  // --trials 0 used to be accepted and silently produced a run where every
  // statistic was an empty accumulator (reported as 0.0). Reject it with a
  // message that says why.
  for (const char* bad : {"0", "-3"}) {
    const Args a = parse({"risk", "--trials", bad});
    try {
      a.get_trials_or(10);
      FAIL() << "--trials " << bad << " was accepted";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("--trials must be >= 1"), std::string::npos) << what;
      EXPECT_NE(what.find(bad), std::string::npos) << what;
    }
  }
}

}  // namespace
}  // namespace solarnet::cli
