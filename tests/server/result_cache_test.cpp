// ResultCache tests: LRU semantics under a byte budget, exact accounting,
// and the satellite property check — a randomized op sequence against a
// naive reference model proves eviction never serves a stale body (every
// lookup either misses or returns exactly the last value inserted for that
// key). A single-shard cache makes LRU order deterministic; the multi-shard
// concurrent smoke exists for TSan.
#include "server/result_cache.h"

#include <gtest/gtest.h>

#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace solarnet::server {
namespace {

std::shared_ptr<const std::string> body(const std::string& text) {
  return std::make_shared<const std::string>(text);
}

ResultCache::Options single_shard(std::size_t byte_budget) {
  ResultCache::Options options;
  options.byte_budget = byte_budget;
  options.shards = 1;
  return options;
}

TEST(ResultCache, MissThenHit) {
  ResultCache cache;
  EXPECT_EQ(cache.lookup("k"), nullptr);
  cache.insert("k", body("v"));
  const auto hit = cache.lookup("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "v");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 2u);  // 1-byte key + 1-byte value
}

TEST(ResultCache, ReplaceKeepsOneEntryAndExactBytes) {
  ResultCache cache(single_shard(1 << 10));
  cache.insert("key", body("short"));
  cache.insert("key", body("a much longer body"));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 3u + 18u);
  EXPECT_EQ(*cache.lookup("key"), "a much longer body");
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  // Each entry is 4 bytes (2-byte key + 2-byte value); budget holds two.
  ResultCache cache(single_shard(8));
  cache.insert("aa", body("11"));
  cache.insert("bb", body("22"));
  ASSERT_NE(cache.lookup("aa"), nullptr);  // promote aa over bb
  cache.insert("cc", body("33"));          // evicts bb, the LRU entry
  EXPECT_NE(cache.lookup("aa"), nullptr);
  EXPECT_EQ(cache.lookup("bb"), nullptr);
  EXPECT_NE(cache.lookup("cc"), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 8u);
}

TEST(ResultCache, InsertPromotesExistingKey) {
  ResultCache cache(single_shard(8));
  cache.insert("aa", body("11"));
  cache.insert("bb", body("22"));
  cache.insert("aa", body("11"));  // re-insert promotes aa over bb
  cache.insert("cc", body("33"));
  EXPECT_NE(cache.lookup("aa"), nullptr);
  EXPECT_EQ(cache.lookup("bb"), nullptr);
}

TEST(ResultCache, OversizedEntryIsDroppedNotHoarded) {
  ResultCache cache(single_shard(8));
  cache.insert("aa", body("11"));
  cache.insert("bb", body(std::string(100, 'x')));  // exceeds whole budget
  EXPECT_EQ(cache.lookup("bb"), nullptr);
  // The small resident entry must survive the oversized insert.
  EXPECT_NE(cache.lookup("aa"), nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCache, EvictionDoesNotInvalidateHeldBodies) {
  ResultCache cache(single_shard(8));
  cache.insert("aa", body("11"));
  const auto held = cache.lookup("aa");
  cache.insert("bb", body(std::string(2, 'y')));
  cache.insert("cc", body("33"));  // aa or bb is gone by now
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, "11");  // reader's reference outlives the entry
}

TEST(ResultCache, RejectsBadArguments) {
  EXPECT_THROW(ResultCache(single_shard(0)).insert("k", nullptr),
               std::invalid_argument);
  ResultCache::Options zero_shards;
  zero_shards.shards = 0;
  EXPECT_THROW(ResultCache{zero_shards}, std::invalid_argument);
}

// Reference model: an LRU list + map with the same budget policy, written
// the obvious slow way. The cache must agree with it on every lookup —
// in particular it may never return a value other than the latest one
// inserted for the key (the "stale body" failure mode the determinism
// contract cannot tolerate).
class ReferenceLru {
 public:
  explicit ReferenceLru(std::size_t budget) : budget_(budget) {}

  void insert(const std::string& key, std::string value) {
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (it->key == key) {
        bytes_ -= it->bytes;
        order_.erase(it);
        break;
      }
    }
    const std::size_t bytes = key.size() + value.size();
    order_.push_front({key, std::move(value), bytes});
    bytes_ += bytes;
    while (bytes_ > budget_ && !order_.empty()) {
      bytes_ -= order_.back().bytes;
      order_.pop_back();
    }
  }

  const std::string* lookup(const std::string& key) {
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (it->key == key) {
        order_.splice(order_.begin(), order_, it);
        return &order_.front().value;
      }
    }
    return nullptr;
  }

 private:
  struct Node {
    std::string key;
    std::string value;
    std::size_t bytes;
  };
  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::list<Node> order_;
};

TEST(ResultCache, RandomizedOpsMatchReferenceModel) {
  constexpr std::size_t kBudget = 160;
  ResultCache cache(single_shard(kBudget));
  ReferenceLru reference(kBudget);
  // Latest value written per key, for the never-stale assertion.
  std::unordered_map<std::string, std::string> latest;
  util::SplitMix64 rng(0x5eedcafe);
  for (int step = 0; step < 20000; ++step) {
    const std::string key = "key" + std::to_string(rng.next() % 12);
    if (rng.next() % 2 == 0) {
      std::string value =
          "v" + std::to_string(step) + std::string(rng.next() % 20, '.');
      cache.insert(key, body(value));
      reference.insert(key, value);
      latest[key] = std::move(value);
    } else {
      const auto got = cache.lookup(key);
      const std::string* expected = reference.lookup(key);
      ASSERT_EQ(got != nullptr, expected != nullptr)
          << "step " << step << " key " << key;
      if (got) {
        EXPECT_EQ(*got, *expected) << "step " << step;
        EXPECT_EQ(*got, latest.at(key)) << "stale body at step " << step;
      }
    }
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u) << "budget never exercised";
  EXPECT_LE(stats.bytes, kBudget);
}

TEST(ResultCache, ConcurrentMixedOpsAreSafe) {
  // Correctness here is "no data race, no crash, never a wrong body" —
  // exercised across shards from several threads; run under TSan in CI.
  ResultCache cache(ResultCache::Options{1 << 12, 4});
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&cache, w] {
      util::SplitMix64 rng(0x9000 + static_cast<std::uint64_t>(w));
      for (int step = 0; step < 5000; ++step) {
        const std::uint64_t id = rng.next() % 16;
        const std::string key = "key" + std::to_string(id);
        const std::string value = "value" + std::to_string(id);
        if (rng.next() % 2 == 0) {
          cache.insert(key, body(value));
        } else if (const auto got = cache.lookup(key)) {
          // Writers always pair key i with value i, so any hit must too.
          EXPECT_EQ(*got, value);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_LE(cache.stats().bytes, std::size_t{1} << 12);
}

}  // namespace
}  // namespace solarnet::server
