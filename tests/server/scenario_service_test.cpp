// ScenarioService tests: served bodies are byte-identical to direct engine
// runs, repeats hit the cache, the engine knob maps onto the same cache
// entry (the engines are bit-identical, so it must), concurrent identical
// misses coalesce onto one computation, and both front ends (stdin stream,
// Unix-domain socket) speak the line protocol end to end.
#include "server/scenario_service.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/country.h"
#include "analysis/dns_resolution.h"
#include "analysis/outage.h"
#include "datasets/datacenters.h"
#include "datasets/land.h"
#include "datasets/submarine.h"
#include "gic/failure_model.h"
#include "gic/timeline.h"
#include "routing/assignment.h"
#include "routing/demand.h"
#include "routing/traffic_observer.h"
#include "server/request.h"
#include "server/serve_loop.h"
#include "services/availability.h"
#include "sim/monte_carlo.h"
#include "sim/pipeline.h"
#include "sim/sweep.h"
#include "sim/timeline_engine.h"

namespace solarnet::server {
namespace {

const topo::InfrastructureNetwork& submarine() {
  static const auto net = datasets::make_submarine_network({});
  return net;
}

const topo::InfrastructureNetwork& intertubes() {
  static const auto net = datasets::make_intertubes_network({});
  return net;
}

const std::vector<datasets::DnsRootInstance>& dns_roots() {
  static const auto roots = datasets::make_dns_dataset({});
  return roots;
}

ServiceContext context() {
  ServiceContext ctx;
  ctx.submarine = &submarine();
  ctx.intertubes = &intertubes();
  ctx.itu = nullptr;
  ctx.dns_roots = &dns_roots();
  return ctx;
}

ScenarioRequest parse(const std::string& line) {
  ScenarioRequest req;
  parse_request(line, req);
  return req;
}

// Small trial budgets keep each computed scenario in the tens of
// milliseconds; every assertion below is about bytes and counters, not
// statistical quality.
const char* kReportLine =
    R"({"cmd":"report","model":"uniform","p":0.3,"trials":8,"seed":3})";
const char* kSweepLine =
    R"({"cmd":"sweep","grid":[0.01,0.5],"trials":8,"seed":4})";

// The same replica-set construction the service uses (quorum clamped to
// the operator's site count), so the direct run evaluates identical specs.
services::ServiceSpec datacenter_service(datasets::DataCenterOperator op,
                                         std::size_t quorum) {
  std::vector<geo::GeoPoint> sites;
  for (const datasets::DataCenter& dc : datasets::datacenters_of(op)) {
    sites.push_back(dc.location);
  }
  return services::service_from_datacenters(
      std::string(datasets::to_string(op)), sites,
      std::max<std::size_t>(1, std::min(quorum, sites.size())));
}

std::string direct_report_body(const ScenarioRequest& req,
                               const std::vector<std::string>& countries) {
  const auto model = req.model == "uniform" ? gic::make_uniform(req.uniform_p)
                     : req.model == "s2"    ? gic::make_s2()
                                            : gic::make_s1();
  sim::TrialConfig cfg;
  cfg.repeater_spacing_km = req.spacing_km;
  cfg.engine = req.engine;
  const sim::FailureSimulator simulator(submarine(), cfg);
  sim::TrialPipeline pipeline(simulator, *model);
  sim::ConnectivityObserver conn;
  services::AvailabilityObserver google(
      submarine(),
      datacenter_service(datasets::DataCenterOperator::kGoogle, req.quorum));
  services::AvailabilityObserver facebook(
      submarine(),
      datacenter_service(datasets::DataCenterOperator::kFacebook, req.quorum));
  analysis::DnsResolutionObserver dns(submarine(), dns_roots(),
                                      req.dns_threshold_pct);
  analysis::CountryIsolationObserver isolation(submarine(), countries);
  pipeline.add_observer(conn);
  pipeline.add_observer(google);
  pipeline.add_observer(facebook);
  pipeline.add_observer(dns);
  pipeline.add_observer(isolation);
  // Traffic demands mirror ReportEngine: sampled matrices use the fixed
  // kServedDemandSeed so pooled engines serve any (trials, seed).
  std::unique_ptr<routing::TrafficEngine> traffic_engine;
  std::unique_ptr<routing::TrafficObserver> traffic_observer;
  if (req.traffic) {
    std::vector<routing::TrafficDemand> demands =
        req.demand_pairs == 0
            ? routing::gravity_demands(submarine())
            : routing::sampled_node_demands(submarine(), req.demand_pairs,
                                            400.0, kServedDemandSeed);
    traffic_engine =
        std::make_unique<routing::TrafficEngine>(submarine(),
                                                 std::move(demands));
    traffic_observer =
        std::make_unique<routing::TrafficObserver>(*traffic_engine);
    pipeline.add_observer(*traffic_observer);
  }
  pipeline.run(req.trials, req.seed);
  return serialize_report_body(
      req, conn.result(), google.result(), facebook.result(), dns.result(),
      isolation.results(),
      traffic_observer ? &traffic_observer->result() : nullptr);
}

TEST(ScenarioService, ServedReportMatchesDirectBytes) {
  ScenarioService service(context());
  RequestScratch scratch;
  const Body served = service.handle_line(kReportLine, scratch);
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(*served, direct_report_body(parse(kReportLine),
                                        service.options().countries));
}

TEST(ScenarioService, ServedSweepMatchesDirectBytes) {
  ScenarioService service(context());
  RequestScratch scratch;
  const Body served = service.handle_line(kSweepLine, scratch);
  ASSERT_NE(served, nullptr);
  const ScenarioRequest req = parse(kSweepLine);
  sim::TrialConfig cfg;
  cfg.repeater_spacing_km = req.spacing_km;
  const sim::FailureSimulator simulator(submarine(), cfg);
  const sim::SweepResult result =
      sim::SweepEngine::uniform(simulator, req.grid).run(req.trials, req.seed,
                                                         0);
  EXPECT_EQ(*served, serialize_sweep_body(req, result));
}

TEST(ScenarioService, EmptyGridSweepUsesDefaultProbabilityGrid) {
  ScenarioService service(context());
  RequestScratch scratch;
  const Body served =
      service.handle_line(R"({"cmd":"sweep","trials":4,"seed":1})", scratch);
  ASSERT_NE(served, nullptr);
  // Ten default grid points => ten "p": fields in the body.
  std::size_t points = 0;
  for (std::size_t pos = served->find("\"p\":"); pos != std::string::npos;
       pos = served->find("\"p\":", pos + 1)) {
    ++points;
  }
  EXPECT_EQ(points, 10u);
}

TEST(ScenarioService, RepeatedRequestHitsCacheWithIdenticalBytes) {
  ScenarioService service(context());
  RequestScratch scratch;
  const Body first = service.handle_line(kReportLine, scratch);
  const auto before = service.stats();
  const Body second = service.handle_line(kReportLine, scratch);
  const auto after = service.stats();
  EXPECT_EQ(after.cache_hits, before.cache_hits + 1);
  EXPECT_EQ(after.computed, before.computed);
  EXPECT_EQ(second, first);  // literally the same shared body
}

TEST(ScenarioService, EngineChoiceSharesTheCacheEntry) {
  // The scalar engine is bit-identical to the batch engine, so a scalar
  // request for an already-cached scenario must be a hit, not a recompute…
  ScenarioService service(context());
  RequestScratch scratch;
  const Body batch = service.handle_line(kReportLine, scratch);
  const std::string scalar_line =
      R"({"cmd":"report","model":"uniform","p":0.3,"trials":8,"seed":3,)"
      R"("engine":"scalar"})";
  const auto before = service.stats();
  const Body via_cache = service.handle_line(scalar_line, scratch);
  EXPECT_EQ(service.stats().computed, before.computed);
  EXPECT_EQ(via_cache, batch);
  // …and that shortcut is honest: a cold service forced down the scalar
  // path produces the same bytes the batch path cached.
  ScenarioService cold(context());
  RequestScratch cold_scratch;
  const Body recomputed = cold.handle_line(scalar_line, cold_scratch);
  ASSERT_NE(recomputed, nullptr);
  EXPECT_EQ(*recomputed, *batch);
}

TEST(ScenarioService, DifferentSeedsProduceDifferentEntries) {
  ScenarioService service(context());
  RequestScratch scratch;
  const Body a = service.handle_line(kReportLine, scratch);
  const Body b = service.handle_line(
      R"({"cmd":"report","model":"uniform","p":0.3,"trials":8,"seed":5})",
      scratch);
  EXPECT_EQ(service.stats().computed, 2u);
  EXPECT_NE(*a, *b);
}

TEST(ScenarioService, StatsAndShutdownCommands) {
  ScenarioService service(context());
  RequestScratch scratch;
  (void)service.handle_line(kReportLine, scratch);
  const Body stats = service.handle_line(R"({"cmd":"stats"})", scratch);
  ASSERT_NE(stats, nullptr);
  EXPECT_NE(stats->find("\"requests\":2"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"computed\":1"), std::string::npos) << *stats;
  EXPECT_FALSE(service.shutdown_requested());
  const Body bye = service.handle_line(R"({"cmd":"shutdown"})", scratch);
  ASSERT_NE(bye, nullptr);
  EXPECT_NE(bye->find("\"ok\":true"), std::string::npos);
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(ScenarioService, BadRequestsBecomeErrorBodiesNotThrows) {
  ScenarioService service(context());
  RequestScratch scratch;
  const Body parse_error = service.handle_line("not json", scratch);
  ASSERT_NE(parse_error, nullptr);
  EXPECT_NE(parse_error->find("\"ok\":false"), std::string::npos);
  const Body bad_field =
      service.handle_line(R"({"trials":0})", scratch);
  ASSERT_NE(bad_field, nullptr);
  EXPECT_NE(bad_field->find("\"ok\":false"), std::string::npos);
  EXPECT_NE(bad_field->find("trials"), std::string::npos);
  // itu was not loaded into this service's context.
  const Body no_itu =
      service.handle_line(R"({"network":"itu","trials":4})", scratch);
  ASSERT_NE(no_itu, nullptr);
  EXPECT_NE(no_itu->find("\"ok\":false"), std::string::npos);
  EXPECT_EQ(service.stats().errors, 3u);
  // An errored request never pollutes the cache.
  EXPECT_EQ(service.stats().cache.entries, 0u);
}

TEST(ScenarioService, ConcurrentIdenticalMissesCoalesce) {
  ScenarioService service(context());
  constexpr std::size_t kThreads = 4;
  std::atomic<std::size_t> ready{0};
  std::vector<Body> bodies(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RequestScratch scratch;
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      bodies[t] = service.handle_line(kReportLine, scratch);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(service.stats().computed, 1u);
  for (const Body& body : bodies) {
    ASSERT_NE(body, nullptr);
    EXPECT_EQ(*body, *bodies[0]);
  }
}

TEST(ScenarioService, StdinFrontEndServesLinesUntilShutdown) {
  ScenarioService service(context());
  std::istringstream in(std::string(kReportLine) + "\n" + kReportLine +
                        "\n{\"cmd\":\"stats\"}\n{\"cmd\":\"shutdown\"}\n" +
                        "{\"cmd\":\"stats\"}\n");  // never reached
  std::ostringstream out;
  const std::size_t handled = serve_stdin(service, in, out);
  EXPECT_EQ(handled, 4u);
  EXPECT_TRUE(service.shutdown_requested());
  std::vector<std::string> lines;
  std::istringstream responses(out.str());
  for (std::string line; std::getline(responses, line);) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], lines[1]);  // second report served from cache
  EXPECT_NE(lines[2].find("\"cache_hits\":1"), std::string::npos) << lines[2];
  EXPECT_NE(lines[3].find("\"ok\":true"), std::string::npos);
}

TEST(ScenarioService, UnixSocketFrontEndServesEndToEnd) {
  ScenarioService service(context());
  const std::string path = testing::TempDir() + "solarnet_serve_test.sock";
  std::thread server([&] { serve_unix_socket(service, path); });

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  // The listener comes up asynchronously; retry connect briefly.
  int connected = -1;
  for (int attempt = 0; attempt < 200 && connected != 0; ++attempt) {
    connected = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr));
    if (connected != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_EQ(connected, 0) << "could not connect to " << path;

  const std::string payload =
      std::string(kReportLine) + "\n{\"cmd\":\"shutdown\"}\n";
  ASSERT_EQ(::send(fd, payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));
  std::string received;
  char buf[4096];
  for (ssize_t n; (n = ::recv(fd, buf, sizeof(buf), 0)) > 0;) {
    received.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.join();

  std::vector<std::string> lines;
  std::istringstream responses(received);
  for (std::string line; std::getline(responses, line);) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u) << received;
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"ok\":true"), std::string::npos) << lines[1];
  EXPECT_TRUE(service.shutdown_requested());
  // Served bytes over the socket match the in-process answer.
  RequestScratch scratch;
  ScenarioService direct(context());
  EXPECT_EQ(lines[0], *direct.handle_line(kReportLine, scratch));
}

TEST(ScenarioService, ServedTrafficReportMatchesDirectBytes) {
  // The traffic knob routes the served report through a TrafficEngine +
  // TrafficObserver pair; both the gravity matrix (demand_pairs omitted)
  // and a sampled matrix must serve bytes identical to a direct run.
  ScenarioService service(context());
  RequestScratch scratch;
  const std::string gravity_line =
      R"({"cmd":"report","model":"uniform","p":0.3,"trials":8,"seed":3,)"
      R"("traffic":1})";
  const Body gravity = service.handle_line(gravity_line, scratch);
  ASSERT_NE(gravity, nullptr);
  EXPECT_NE(gravity->find("\"traffic\":{"), std::string::npos) << *gravity;
  EXPECT_EQ(*gravity, direct_report_body(parse(gravity_line),
                                         service.options().countries));

  const std::string sampled_line =
      R"({"cmd":"report","model":"uniform","p":0.3,"trials":8,"seed":3,)"
      R"("traffic":1,"demand_pairs":64})";
  const Body sampled = service.handle_line(sampled_line, scratch);
  ASSERT_NE(sampled, nullptr);
  EXPECT_NE(sampled->find("\"demand_pairs\":64"), std::string::npos)
      << *sampled;
  EXPECT_EQ(*sampled, direct_report_body(parse(sampled_line),
                                         service.options().countries));

  // Three distinct scenarios: plain, gravity-traffic, sampled-traffic.
  const Body plain = service.handle_line(kReportLine, scratch);
  EXPECT_EQ(service.stats().computed, 3u);
  EXPECT_NE(*plain, *gravity);
  EXPECT_NE(*gravity, *sampled);
}

std::string direct_timeline_body(const ScenarioRequest& req,
                                 const std::vector<std::string>& countries) {
  // Mirrors TimelineEngineEntry + timeline_config_for: the default storm
  // phase profile sampled on the requested step, repair grid and fleet
  // from the request, connectivity + per-country outage observers.
  const auto model = req.model == "uniform" ? gic::make_uniform(req.uniform_p)
                     : req.model == "s2"    ? gic::make_s2()
                                            : gic::make_s1();
  sim::TrialConfig cfg;
  cfg.repeater_spacing_km = req.spacing_km;
  cfg.engine = req.engine;
  const sim::FailureSimulator simulator(submarine(), cfg);
  sim::TimelineConfig config = sim::TimelineConfig::from_profile(
      gic::StormPhaseProfile{}, req.timeline_step_hours);
  config.repair_steps = req.repair_steps;
  config.repair_step_hours = req.repair_step_days * 24.0;
  config.fleet.cable_ships = req.ships;
  sim::TimelineEngine engine(simulator,
                             simulator.death_probability_table(*model),
                             config);
  sim::TimelineConnectivityObserver conn(req.partition_threshold_pct);
  analysis::CountryOutageObserver outage(submarine(), countries);
  engine.add_observer(conn);
  engine.add_observer(outage);
  engine.run(req.trials, req.seed, 0);
  return serialize_timeline_body(req, engine, conn.result(),
                                 outage.results());
}

const char* kTimelineLine =
    R"({"cmd":"timeline","model":"uniform","p":0.3,"trials":8,"seed":3,)"
    R"("step_hours":12,"repair_steps":8,"repair_step_days":10,"ships":40,)"
    R"("partition_threshold":50})";

TEST(ScenarioService, ServedTimelineMatchesDirectBytes) {
  ScenarioService service(context());
  RequestScratch scratch;
  const Body served = service.handle_line(kTimelineLine, scratch);
  ASSERT_NE(served, nullptr);
  EXPECT_NE(served->find("\"ok\":true"), std::string::npos) << *served;
  EXPECT_NE(served->find("\"steps\":["), std::string::npos);
  EXPECT_NE(served->find("\"partition\":{"), std::string::npos);
  EXPECT_NE(served->find("\"outage\":["), std::string::npos);
  EXPECT_EQ(*served, direct_timeline_body(parse(kTimelineLine),
                                          service.options().countries));
}

TEST(ScenarioService, RepeatedTimelineRequestHitsCacheWithSharedBody) {
  ScenarioService service(context());
  RequestScratch scratch;
  const Body first = service.handle_line(kTimelineLine, scratch);
  const auto before = service.stats();
  const Body second = service.handle_line(kTimelineLine, scratch);
  const auto after = service.stats();
  EXPECT_EQ(after.cache_hits, before.cache_hits + 1);
  EXPECT_EQ(after.computed, before.computed);
  EXPECT_EQ(second, first);  // literally the same shared body

  // A different seed reuses the pooled engine but is a distinct scenario.
  const std::string reseeded =
      R"({"cmd":"timeline","model":"uniform","p":0.3,"trials":8,"seed":9,)"
      R"("step_hours":12,"repair_steps":8,"repair_step_days":10,"ships":40,)"
      R"("partition_threshold":50})";
  const Body other = service.handle_line(reseeded, scratch);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(service.stats().computed, after.computed + 1);
  EXPECT_NE(*other, *first);
  EXPECT_EQ(*other, direct_timeline_body(parse(reseeded),
                                         service.options().countries));
}

TEST(ScenarioService, RejectsNullContext) {
  ServiceContext ctx = context();
  ctx.submarine = nullptr;
  EXPECT_THROW(ScenarioService{ctx}, std::invalid_argument);
}

}  // namespace
}  // namespace solarnet::server
