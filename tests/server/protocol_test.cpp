// Request-protocol tests: the NDJSON parser's grammar and validation, and
// the canonical cache/engine key properties the result cache's correctness
// rests on — identical scenarios collide, distinct scenarios never do, and
// the fields the determinism contract says cannot change response bytes
// (engine, thread count) are excluded from the cache key.
#include "server/request.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/checkpoint.h"
#include "util/status.h"

namespace solarnet::server {
namespace {

ScenarioRequest parse(const std::string& line) {
  ScenarioRequest req;
  parse_request(line, req);
  return req;
}

std::string cache_key(const ScenarioRequest& req, std::uint64_t fp = 1,
                      std::uint64_t salt = 2) {
  util::ByteWriter key;
  build_cache_key(req, fp, salt, key);
  return key.data();
}

std::string engine_key(const ScenarioRequest& req, std::uint64_t fp = 1,
                       std::uint64_t salt = 2) {
  util::ByteWriter key;
  build_engine_key(req, fp, salt, key);
  return key.data();
}

TEST(ServeProtocol, EmptyObjectYieldsDefaults) {
  const ScenarioRequest req = parse("{}");
  EXPECT_EQ(req.kind, RequestKind::kReport);
  EXPECT_EQ(req.network, "submarine");
  EXPECT_EQ(req.model, "s1");
  EXPECT_DOUBLE_EQ(req.uniform_p, 0.01);
  EXPECT_DOUBLE_EQ(req.spacing_km, 150.0);
  EXPECT_EQ(req.trials, 10u);
  EXPECT_EQ(req.seed, 7u);
  EXPECT_EQ(req.quorum, 2u);
  EXPECT_DOUBLE_EQ(req.dns_threshold_pct, 10.0);
  EXPECT_EQ(req.engine, sim::TrialEngine::kAuto);
  EXPECT_TRUE(req.grid.empty());
}

TEST(ServeProtocol, ParsesEveryField) {
  const ScenarioRequest req = parse(
      R"({"cmd":"sweep","network":"intertubes","model":"uniform","p":0.25,)"
      R"("spacing":100.5,"trials":64,"seed":42,"quorum":3,)"
      R"("dns_threshold":20,"engine":"scalar","grid":[0.1,0.01,1]})");
  EXPECT_EQ(req.kind, RequestKind::kSweep);
  EXPECT_EQ(req.network, "intertubes");
  EXPECT_EQ(req.model, "uniform");
  EXPECT_DOUBLE_EQ(req.uniform_p, 0.25);
  EXPECT_DOUBLE_EQ(req.spacing_km, 100.5);
  EXPECT_EQ(req.trials, 64u);
  EXPECT_EQ(req.seed, 42u);
  EXPECT_EQ(req.quorum, 3u);
  EXPECT_DOUBLE_EQ(req.dns_threshold_pct, 20.0);
  EXPECT_EQ(req.engine, sim::TrialEngine::kScalar);
  EXPECT_EQ(req.grid, (std::vector<double>{0.01, 0.1, 1.0}));  // sorted
}

TEST(ServeProtocol, StatsAndShutdownCommands) {
  EXPECT_EQ(parse(R"({"cmd":"stats"})").kind, RequestKind::kStats);
  EXPECT_EQ(parse(R"({"cmd":"shutdown"})").kind, RequestKind::kShutdown);
}

TEST(ServeProtocol, WhitespaceTolerated) {
  const ScenarioRequest req =
      parse("  { \"cmd\" : \"report\" ,\t\"trials\" : 5 }  ");
  EXPECT_EQ(req.kind, RequestKind::kReport);
  EXPECT_EQ(req.trials, 5u);
}

TEST(ServeProtocol, ReusedRequestIsFullyReset) {
  ScenarioRequest req;
  parse_request(R"({"trials":99,"grid":[0.5],"engine":"scalar"})", req);
  parse_request("{}", req);
  EXPECT_EQ(req.trials, 10u);
  EXPECT_TRUE(req.grid.empty());
  EXPECT_EQ(req.engine, sim::TrialEngine::kAuto);
}

void expect_rejected(const std::string& line, util::ErrorCode code,
                     const std::string& field = "") {
  ScenarioRequest req;
  try {
    parse_request(line, req);
    FAIL() << "expected rejection of: " << line;
  } catch (const util::Error& e) {
    EXPECT_EQ(e.code(), code) << line;
    if (!field.empty()) {
      EXPECT_EQ(e.context().field, field) << line;
    }
  }
}

TEST(ServeProtocol, RejectsMalformedAndInvalid) {
  expect_rejected("", util::ErrorCode::kParseError);
  expect_rejected("report", util::ErrorCode::kParseError);
  expect_rejected(R"({"cmd":"report")", util::ErrorCode::kParseError);
  expect_rejected(R"({"cmd":"report"} extra)", util::ErrorCode::kParseError);
  expect_rejected(R"({"trials":"ten"})", util::ErrorCode::kParseError);
  expect_rejected(R"({"cmd":"re\"port"})", util::ErrorCode::kParseError);

  expect_rejected(R"({"frobnicate":1})", util::ErrorCode::kInvalidArgument,
                  "frobnicate");
  expect_rejected(R"({"cmd":"dance"})", util::ErrorCode::kInvalidArgument,
                  "cmd");
  expect_rejected(R"({"network":"mars"})", util::ErrorCode::kInvalidArgument,
                  "network");
  expect_rejected(R"({"model":"s3"})", util::ErrorCode::kInvalidArgument,
                  "model");
  expect_rejected(R"({"engine":"gpu"})", util::ErrorCode::kInvalidArgument,
                  "engine");
  expect_rejected(R"({"p":1.5})", util::ErrorCode::kInvalidArgument, "p");
  expect_rejected(R"({"p":-0.1})", util::ErrorCode::kInvalidArgument, "p");
  expect_rejected(R"({"spacing":0})", util::ErrorCode::kInvalidArgument,
                  "spacing");
  expect_rejected(R"({"trials":0})", util::ErrorCode::kInvalidArgument,
                  "trials");
  expect_rejected(R"({"trials":2.5})", util::ErrorCode::kInvalidArgument,
                  "trials");
  expect_rejected(R"({"seed":-1})", util::ErrorCode::kInvalidArgument,
                  "seed");
  expect_rejected(R"({"quorum":0})", util::ErrorCode::kInvalidArgument,
                  "quorum");
  expect_rejected(R"({"dns_threshold":101})",
                  util::ErrorCode::kInvalidArgument, "dns_threshold");
  expect_rejected(R"({"grid":[2]})", util::ErrorCode::kInvalidArgument,
                  "grid");
}

TEST(ServeProtocol, RejectsOversizedGrid) {
  std::string line = R"({"grid":[0)";
  for (int i = 0; i < 4096; ++i) line += ",0.5";
  line += "]}";
  expect_rejected(line, util::ErrorCode::kInvalidArgument, "grid");
}

// --- cache-key properties ---------------------------------------------------

ScenarioRequest base_request() {
  ScenarioRequest req;
  req.model = "uniform";
  return req;
}

TEST(ServeProtocol, IdenticalRequestsShareTheCacheKey) {
  EXPECT_EQ(cache_key(base_request()), cache_key(base_request()));
  // Two grid permutations are the same scenario after canonicalization.
  EXPECT_EQ(cache_key(parse(R"({"cmd":"sweep","grid":[0.1,0.01,0.5]})")),
            cache_key(parse(R"({"cmd":"sweep","grid":[0.5,0.1,0.01]})")));
}

TEST(ServeProtocol, EveryScenarioFieldSeparatesCacheKeys) {
  // One mutation per scenario-shaping field; all resulting keys must be
  // pairwise distinct (and distinct from the base).
  std::vector<std::string> keys;
  keys.push_back(cache_key(base_request()));
  {
    ScenarioRequest r = base_request();
    r.kind = RequestKind::kSweep;
    keys.push_back(cache_key(r));
  }
  {
    ScenarioRequest r = base_request();
    r.model = "s1";
    keys.push_back(cache_key(r));
  }
  {
    ScenarioRequest r = base_request();
    r.model = "s2";
    keys.push_back(cache_key(r));
  }
  {
    ScenarioRequest r = base_request();
    r.uniform_p = 0.02;
    keys.push_back(cache_key(r));
  }
  {
    ScenarioRequest r = base_request();
    r.spacing_km = 151.0;
    keys.push_back(cache_key(r));
  }
  {
    ScenarioRequest r = base_request();
    r.trials = 11;
    keys.push_back(cache_key(r));
  }
  {
    ScenarioRequest r = base_request();
    r.seed = 8;
    keys.push_back(cache_key(r));
  }
  {
    ScenarioRequest r = base_request();
    r.quorum = 3;
    keys.push_back(cache_key(r));
  }
  {
    ScenarioRequest r = base_request();
    r.dns_threshold_pct = 11.0;
    keys.push_back(cache_key(r));
  }
  {
    ScenarioRequest r = base_request();
    r.kind = RequestKind::kSweep;
    r.grid = {0.01};
    keys.push_back(cache_key(r));
  }
  {
    ScenarioRequest r = base_request();
    r.kind = RequestKind::kSweep;
    r.grid = {0.01, 0.1};
    keys.push_back(cache_key(r));
  }
  keys.push_back(cache_key(base_request(), /*fp=*/99));   // network content
  keys.push_back(cache_key(base_request(), 1, /*salt=*/99));  // observer set
  for (std::size_t a = 0; a < keys.size(); ++a) {
    for (std::size_t b = a + 1; b < keys.size(); ++b) {
      EXPECT_NE(keys[a], keys[b]) << "variants " << a << " and " << b;
    }
  }
}

TEST(ServeProtocol, EngineAndNonScenarioFieldsDoNotSplitTheCacheKey) {
  // The batch and scalar engines are bit-identical, so the engine choice
  // must map to the same cache entry.
  ScenarioRequest scalar = base_request();
  scalar.engine = sim::TrialEngine::kScalar;
  EXPECT_EQ(cache_key(base_request()), cache_key(scalar));

  // The network *name* is not folded — the content fingerprint is the
  // identity (content-addressing: equal content, equal results).
  ScenarioRequest renamed = base_request();
  renamed.network = "itu";
  EXPECT_EQ(cache_key(base_request()), cache_key(renamed));

  // p is canonicalized to 0 for non-uniform models, where it is inert.
  ScenarioRequest s1_a = base_request();
  s1_a.model = "s1";
  ScenarioRequest s1_b = s1_a;
  s1_b.uniform_p = 0.7;
  EXPECT_EQ(cache_key(s1_a), cache_key(s1_b));
}

TEST(ServeProtocol, ParsesTrafficAndTimelineFields) {
  // Defaults first: traffic off, zero sampled pairs, the documented
  // timeline axis defaults.
  const ScenarioRequest defaults = parse("{}");
  EXPECT_FALSE(defaults.traffic);
  EXPECT_EQ(defaults.demand_pairs, 0u);
  EXPECT_DOUBLE_EQ(defaults.timeline_step_hours, 6.0);
  EXPECT_EQ(defaults.repair_steps, 24u);
  EXPECT_DOUBLE_EQ(defaults.repair_step_days, 15.0);
  EXPECT_EQ(defaults.ships, 60u);
  EXPECT_DOUBLE_EQ(defaults.partition_threshold_pct, 50.0);

  const ScenarioRequest req = parse(
      R"({"cmd":"timeline","traffic":1,"demand_pairs":500,"step_hours":3,)"
      R"("repair_steps":12,"repair_step_days":10,"ships":30,)"
      R"("partition_threshold":40})");
  EXPECT_EQ(req.kind, RequestKind::kTimeline);
  EXPECT_TRUE(req.traffic);
  EXPECT_EQ(req.demand_pairs, 500u);
  EXPECT_DOUBLE_EQ(req.timeline_step_hours, 3.0);
  EXPECT_EQ(req.repair_steps, 12u);
  EXPECT_DOUBLE_EQ(req.repair_step_days, 10.0);
  EXPECT_EQ(req.ships, 30u);
  EXPECT_DOUBLE_EQ(req.partition_threshold_pct, 40.0);
}

TEST(ServeProtocol, RejectsBadTrafficAndTimelineFields) {
  expect_rejected(R"({"traffic":2})", util::ErrorCode::kInvalidArgument,
                  "traffic");
  expect_rejected(R"({"traffic":0.5})", util::ErrorCode::kInvalidArgument,
                  "traffic");
  expect_rejected(R"({"demand_pairs":-1})",
                  util::ErrorCode::kInvalidArgument, "demand_pairs");
  expect_rejected(R"({"demand_pairs":10000001})",
                  util::ErrorCode::kInvalidArgument, "demand_pairs");
  expect_rejected(R"({"step_hours":0})", util::ErrorCode::kInvalidArgument,
                  "step_hours");
  expect_rejected(R"({"step_hours":73})", util::ErrorCode::kInvalidArgument,
                  "step_hours");
  expect_rejected(R"({"repair_steps":0})",
                  util::ErrorCode::kInvalidArgument, "repair_steps");
  expect_rejected(R"({"repair_steps":4097})",
                  util::ErrorCode::kInvalidArgument, "repair_steps");
  expect_rejected(R"({"repair_steps":2.5})",
                  util::ErrorCode::kInvalidArgument, "repair_steps");
  expect_rejected(R"({"repair_step_days":0})",
                  util::ErrorCode::kInvalidArgument, "repair_step_days");
  expect_rejected(R"({"repair_step_days":366})",
                  util::ErrorCode::kInvalidArgument, "repair_step_days");
  expect_rejected(R"({"ships":0})", util::ErrorCode::kInvalidArgument,
                  "ships");
  expect_rejected(R"({"ships":100001})", util::ErrorCode::kInvalidArgument,
                  "ships");
  expect_rejected(R"({"partition_threshold":-1})",
                  util::ErrorCode::kInvalidArgument, "partition_threshold");
  expect_rejected(R"({"partition_threshold":101})",
                  util::ErrorCode::kInvalidArgument, "partition_threshold");
}

TEST(ServeProtocol, TrafficFieldsSeparateBothKeys) {
  // traffic/demand_pairs shape the response body of every command, so they
  // are folded unconditionally — cache key AND engine key must split.
  ScenarioRequest with_traffic = base_request();
  with_traffic.traffic = true;
  EXPECT_NE(cache_key(base_request()), cache_key(with_traffic));
  EXPECT_NE(engine_key(base_request()), engine_key(with_traffic));

  ScenarioRequest sampled = with_traffic;
  sampled.demand_pairs = 500;
  EXPECT_NE(cache_key(with_traffic), cache_key(sampled));
  EXPECT_NE(engine_key(with_traffic), engine_key(sampled));

  ScenarioRequest more = sampled;
  more.demand_pairs = 501;
  EXPECT_NE(cache_key(sampled), cache_key(more));
}

TEST(ServeProtocol, TimelineFieldsSeparateKeys) {
  ScenarioRequest base = base_request();
  base.kind = RequestKind::kTimeline;

  // Same parameters, different command: never the same entry.
  EXPECT_NE(cache_key(base), cache_key(base_request()));
  EXPECT_NE(engine_key(base), engine_key(base_request()));

  // Every timeline-axis field must split both the cache key and the
  // resident-engine pool key (the pool is keyed without trials/seed, so a
  // collision would serve a wrong axis).
  std::vector<std::string> cache_keys = {cache_key(base)};
  std::vector<std::string> engine_keys = {engine_key(base)};
  const auto push = [&](const ScenarioRequest& r) {
    cache_keys.push_back(cache_key(r));
    engine_keys.push_back(engine_key(r));
  };
  {
    ScenarioRequest r = base;
    r.timeline_step_hours = 3.0;
    push(r);
  }
  {
    ScenarioRequest r = base;
    r.repair_steps = 12;
    push(r);
  }
  {
    ScenarioRequest r = base;
    r.repair_step_days = 10.0;
    push(r);
  }
  {
    ScenarioRequest r = base;
    r.ships = 30;
    push(r);
  }
  {
    ScenarioRequest r = base;
    r.partition_threshold_pct = 40.0;
    push(r);
  }
  for (std::size_t a = 0; a < cache_keys.size(); ++a) {
    for (std::size_t b = a + 1; b < cache_keys.size(); ++b) {
      EXPECT_NE(cache_keys[a], cache_keys[b])
          << "cache variants " << a << " and " << b;
      EXPECT_NE(engine_keys[a], engine_keys[b])
          << "engine variants " << a << " and " << b;
    }
  }

  // Trials/seed still reuse the timeline engine bundle.
  ScenarioRequest rerun = base;
  rerun.trials = 4096;
  rerun.seed = 99;
  EXPECT_EQ(engine_key(base), engine_key(rerun));
  EXPECT_NE(cache_key(base), cache_key(rerun));
}

TEST(ServeProtocol, TimelineFieldsAreInertOutsideTimelineRequests) {
  // Kind-gated folding: a report ignores the timeline axis, so mutating it
  // must not split report cache entries.
  ScenarioRequest tweaked = base_request();
  tweaked.timeline_step_hours = 3.0;
  tweaked.repair_steps = 12;
  tweaked.ships = 30;
  EXPECT_EQ(cache_key(base_request()), cache_key(tweaked));
  EXPECT_EQ(engine_key(base_request()), engine_key(tweaked));
}

TEST(ServeProtocol, EngineKeyDropsTrialBudgetButKeepsEngine) {
  // Same scenario with a different trial budget or seed reuses the
  // resident engine bundle...
  ScenarioRequest more_trials = base_request();
  more_trials.trials = 4096;
  more_trials.seed = 1234;
  EXPECT_EQ(engine_key(base_request()), engine_key(more_trials));
  // ...but the engine selection and the scenario shape still split pools.
  ScenarioRequest scalar = base_request();
  scalar.engine = sim::TrialEngine::kScalar;
  EXPECT_NE(engine_key(base_request()), engine_key(scalar));
  ScenarioRequest wider = base_request();
  wider.spacing_km = 50.0;
  EXPECT_NE(engine_key(base_request()), engine_key(wider));
  EXPECT_NE(engine_key(base_request(), /*fp=*/99), engine_key(base_request()));
}

}  // namespace
}  // namespace solarnet::server
