#include "topology/network.h"

#include <gtest/gtest.h>

#include "geo/distance.h"

namespace solarnet::topo {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  // Four landing points; three cables:
  //   C0: A-B, C1: B-C (two segments via D? no — single), C2: A-C
  // D is cable-less.
  void SetUp() override {
    a_ = net_.add_node({"A", {0.0, 0.0}, "US", NodeKind::kLandingPoint, true});
    b_ = net_.add_node({"B", {10.0, 0.0}, "US", NodeKind::kLandingPoint, true});
    c_ = net_.add_node({"C", {50.0, 0.0}, "GB", NodeKind::kLandingPoint, true});
    d_ = net_.add_node({"D", {-5.0, 5.0}, "BR", NodeKind::kCity, true});
    Cable c0;
    c0.name = "C0";
    c0.segments = {{a_, b_, 1200.0}};
    c0_ = net_.add_cable(std::move(c0));
    Cable c1;
    c1.name = "C1";
    c1.segments = {{b_, c_, 4500.0}};
    c1_ = net_.add_cable(std::move(c1));
    Cable c2;
    c2.name = "C2";
    c2.segments = {{a_, c_, 5700.0}};
    c2_ = net_.add_cable(std::move(c2));
  }

  InfrastructureNetwork net_{"test"};
  NodeId a_{}, b_{}, c_{}, d_{};
  CableId c0_{}, c1_{}, c2_{};
};

TEST_F(NetworkTest, CountsAndLookup) {
  EXPECT_EQ(net_.node_count(), 4u);
  EXPECT_EQ(net_.cable_count(), 3u);
  EXPECT_EQ(net_.find_node("B").value(), b_);
  EXPECT_FALSE(net_.find_node("nope").has_value());
  EXPECT_EQ(net_.node(a_).name, "A");
  EXPECT_EQ(net_.cable(c1_).name, "C1");
}

TEST_F(NetworkTest, DuplicateNodeNameRejected) {
  EXPECT_THROW(
      net_.add_node({"A", {1.0, 1.0}, "", NodeKind::kCity, true}),
      std::invalid_argument);
}

TEST_F(NetworkTest, EmptyNodeNameRejected) {
  EXPECT_THROW(net_.add_node({"", {1.0, 1.0}, "", NodeKind::kCity, true}),
               std::invalid_argument);
}

TEST_F(NetworkTest, InvalidCoordinateRejected) {
  EXPECT_THROW(net_.add_node({"X", {95.0, 0.0}, "", NodeKind::kCity, true}),
               std::invalid_argument);
}

TEST_F(NetworkTest, CableValidation) {
  EXPECT_THROW(net_.add_cable(Cable{}), std::invalid_argument);  // no segments
  Cable bad;
  bad.name = "bad";
  bad.segments = {{a_, 99, 1.0}};
  EXPECT_THROW(net_.add_cable(std::move(bad)), std::out_of_range);
  Cable neg;
  neg.name = "neg";
  neg.segments = {{a_, b_, -5.0}};
  EXPECT_THROW(net_.add_cable(std::move(neg)), std::invalid_argument);
}

TEST_F(NetworkTest, ZeroLengthSegmentsGetGreatCircle) {
  Cable c;
  c.name = "auto-length";
  c.segments = {{a_, b_, 0.0}};
  const CableId id = net_.add_cable(std::move(c));
  const double expected =
      geo::haversine_km(net_.node(a_).location, net_.node(b_).location);
  EXPECT_NEAR(net_.cable(id).segments[0].length_km, expected, 1e-9);
}

TEST_F(NetworkTest, CablesAtNode) {
  EXPECT_EQ(net_.cables_at(a_).size(), 2u);
  EXPECT_EQ(net_.cables_at(b_).size(), 2u);
  EXPECT_TRUE(net_.cables_at(d_).empty());
  EXPECT_TRUE(net_.has_cables(a_));
  EXPECT_FALSE(net_.has_cables(d_));
}

TEST_F(NetworkTest, GraphViewMatchesTopology) {
  EXPECT_EQ(net_.graph().vertex_count(), 4u);
  EXPECT_EQ(net_.graph().edge_count(), 3u);
  EXPECT_EQ(net_.cable_of_edge(0), c0_);
  EXPECT_EQ(net_.edges_of_cable(c1_).size(), 1u);
  EXPECT_THROW(net_.cable_of_edge(99), std::out_of_range);
}

TEST_F(NetworkTest, MaskForFailuresKillsSegments) {
  std::vector<bool> dead(3, false);
  dead[c0_] = true;
  const auto mask = net_.mask_for_failures(dead);
  EXPECT_FALSE(mask.edge_alive[net_.edges_of_cable(c0_)[0]]);
  EXPECT_TRUE(mask.edge_alive[net_.edges_of_cable(c1_)[0]]);
  EXPECT_THROW(net_.mask_for_failures({true}), std::invalid_argument);
}

TEST_F(NetworkTest, UnreachableNodesPaperDefinition) {
  // Kill C0 and C2: A loses both its cables; B and C still have C1.
  std::vector<bool> dead = {true, false, true};
  const auto unreachable = net_.unreachable_nodes(dead);
  ASSERT_EQ(unreachable.size(), 1u);
  EXPECT_EQ(unreachable[0], a_);
}

TEST_F(NetworkTest, UnreachableNodesInPlaceOverloadReusesBuffer) {
  std::vector<bool> dead = {true, false, true};
  std::vector<NodeId> out = {99, 98, 97};  // stale contents must be cleared
  net_.unreachable_nodes(dead, out);
  EXPECT_EQ(out, net_.unreachable_nodes(dead));
  // A second, different query reuses the same buffer.
  std::vector<bool> all_dead = {true, true, true};
  net_.unreachable_nodes(all_dead, out);
  EXPECT_EQ(out, net_.unreachable_nodes(all_dead));
  EXPECT_THROW(net_.unreachable_nodes(std::vector<bool>{true}, out),
               std::invalid_argument);
}

TEST_F(NetworkTest, NodeWithoutCablesNeverUnreachable) {
  std::vector<bool> all_dead = {true, true, true};
  const auto unreachable = net_.unreachable_nodes(all_dead);
  EXPECT_EQ(unreachable.size(), 3u);  // A, B, C — never the cable-less D
}

TEST_F(NetworkTest, ConnectedNodeCount) {
  EXPECT_EQ(net_.connected_node_count(), 3u);
}

TEST_F(NetworkTest, NodeLatitudesRespectAuthoritativeFlag) {
  EXPECT_EQ(net_.node_latitudes().size(), 4u);
  net_.add_node({"E", {20.0, 20.0}, "", NodeKind::kCity, false});
  EXPECT_EQ(net_.node_latitudes().size(), 4u);  // E excluded
}

TEST_F(NetworkTest, CableLengthsRespectLengthKnown) {
  EXPECT_EQ(net_.cable_lengths().size(), 3u);
  net_.set_cable_length_known(c0_, false);
  EXPECT_EQ(net_.cable_lengths().size(), 2u);
  EXPECT_THROW(net_.set_cable_length_known(99, true), std::out_of_range);
}

TEST_F(NetworkTest, CableMaxAbsLatitude) {
  EXPECT_DOUBLE_EQ(net_.cable_max_abs_latitude(c0_), 10.0);
  EXPECT_DOUBLE_EQ(net_.cable_max_abs_latitude(c1_), 50.0);
  EXPECT_DOUBLE_EQ(net_.cable_max_abs_latitude(c2_), 50.0);
}

TEST_F(NetworkTest, SouthernLatitudesCountAbsolutely) {
  const NodeId s = net_.add_node(
      {"S", {-55.0, 0.0}, "CL", NodeKind::kLandingPoint, true});
  Cable c;
  c.name = "south";
  c.segments = {{a_, s, 6000.0}};
  const CableId id = net_.add_cable(std::move(c));
  EXPECT_DOUBLE_EQ(net_.cable_max_abs_latitude(id), 55.0);
}

TEST_F(NetworkTest, MultiSegmentCableSharesFate) {
  const NodeId e = net_.add_node(
      {"E2", {30.0, 10.0}, "", NodeKind::kLandingPoint, true});
  Cable c;
  c.name = "multi";
  c.segments = {{a_, e, 3000.0}, {e, c_, 2500.0}};
  const CableId id = net_.add_cable(std::move(c));
  EXPECT_EQ(net_.edges_of_cable(id).size(), 2u);
  std::vector<bool> dead(net_.cable_count(), false);
  dead[id] = true;
  const auto mask = net_.mask_for_failures(dead);
  for (auto edge : net_.edges_of_cable(id)) {
    EXPECT_FALSE(mask.edge_alive[edge]);
  }
}

TEST_F(NetworkTest, CloneWithExtraCablesPreservesIds) {
  net_.set_cable_length_known(c1_, false);
  const InfrastructureNetwork copy = net_.clone_with_extra_cables("+x");
  EXPECT_EQ(copy.name(), net_.name() + "+x");
  ASSERT_EQ(copy.node_count(), net_.node_count());
  ASSERT_EQ(copy.cable_count(), net_.cable_count());
  for (NodeId n = 0; n < net_.node_count(); ++n) {
    EXPECT_EQ(copy.node(n).name, net_.node(n).name);
    EXPECT_EQ(copy.node(n).country_code, net_.node(n).country_code);
  }
  for (CableId c = 0; c < net_.cable_count(); ++c) {
    EXPECT_EQ(copy.cable(c).name, net_.cable(c).name);
    EXPECT_EQ(copy.cable(c).length_known, net_.cable(c).length_known);
    EXPECT_DOUBLE_EQ(copy.cable(c).total_length_km(),
                     net_.cable(c).total_length_km());
  }
  EXPECT_FALSE(copy.cable(c1_).length_known);
}

TEST_F(NetworkTest, CloneAppendsExtraCablesWithoutTouchingBase) {
  Cable extra;
  extra.name = "extra";
  extra.segments = {{b_, d_, 800.0}};
  std::vector<Cable> extras;
  extras.push_back(std::move(extra));
  const InfrastructureNetwork copy =
      net_.clone_with_extra_cables("+candidate", std::move(extras));
  ASSERT_EQ(copy.cable_count(), net_.cable_count() + 1);
  EXPECT_EQ(net_.cable_count(), 3u);  // base untouched
  const CableId added = copy.cable_count() - 1;
  EXPECT_EQ(copy.cable(added).name, "extra");
  EXPECT_EQ(copy.cables_at(d_).size(), 1u);
  EXPECT_EQ(net_.cables_at(d_).size(), 0u);
  // The copy's CSR is built fresh (no stale shared cache): the new edge is
  // present in the copy only.
  EXPECT_EQ(copy.csr().edge_count(), net_.csr().edge_count() + 1);
}

TEST_F(NetworkTest, CloneValidatesExtraCables) {
  Cable bad;
  bad.name = "bad";
  bad.segments = {{a_, static_cast<NodeId>(99), 500.0}};
  std::vector<Cable> extras;
  extras.push_back(std::move(bad));
  EXPECT_THROW(net_.clone_with_extra_cables("+bad", std::move(extras)),
               std::out_of_range);
}

}  // namespace
}  // namespace solarnet::topo
