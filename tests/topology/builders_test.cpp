#include "topology/builders.h"

#include <gtest/gtest.h>

namespace solarnet::topo {
namespace {

TEST(NetworkBuilder, NodeGetOrCreate) {
  NetworkBuilder b("t");
  const NodeId first = b.node("X", {1.0, 2.0}, NodeKind::kCity, "US");
  const NodeId again = b.node("X", {9.0, 9.0});  // different coords ignored
  EXPECT_EQ(first, again);
  EXPECT_EQ(b.network().node_count(), 1u);
  EXPECT_DOUBLE_EQ(b.network().node(first).location.lat_deg, 1.0);
  EXPECT_EQ(b.network().node(first).country_code, "US");
}

TEST(NetworkBuilder, SimpleCable) {
  NetworkBuilder b("t");
  const NodeId x = b.node("X", {0.0, 0.0});
  const NodeId y = b.node("Y", {0.0, 5.0});
  const CableId c = b.cable("XY", x, y, CableKind::kSubmarine, 700.0);
  EXPECT_EQ(b.network().cable(c).segments.size(), 1u);
  EXPECT_DOUBLE_EQ(b.network().cable(c).total_length_km(), 700.0);
  EXPECT_EQ(b.network().cable(c).kind, CableKind::kSubmarine);
}

TEST(NetworkBuilder, TrunkCable) {
  NetworkBuilder b("t");
  const NodeId x = b.node("X", {0.0, 0.0});
  const NodeId y = b.node("Y", {0.0, 5.0});
  const NodeId z = b.node("Z", {0.0, 10.0});
  const CableId c = b.trunk_cable("XYZ", {x, y, z}, CableKind::kSubmarine,
                                  {500.0, 600.0});
  EXPECT_EQ(b.network().cable(c).segments.size(), 2u);
  EXPECT_DOUBLE_EQ(b.network().cable(c).total_length_km(), 1100.0);
}

TEST(NetworkBuilder, TrunkComputesLengthsWhenOmitted) {
  NetworkBuilder b("t");
  const NodeId x = b.node("X", {0.0, 0.0});
  const NodeId y = b.node("Y", {0.0, 5.0});
  const CableId c = b.trunk_cable("XY", {x, y}, CableKind::kLandLongHaul);
  EXPECT_GT(b.network().cable(c).total_length_km(), 500.0);
}

TEST(NetworkBuilder, TrunkValidation) {
  NetworkBuilder b("t");
  const NodeId x = b.node("X", {0.0, 0.0});
  EXPECT_THROW(b.trunk_cable("bad", {x}, CableKind::kSubmarine),
               std::invalid_argument);
  const NodeId y = b.node("Y", {0.0, 5.0});
  EXPECT_THROW(b.trunk_cable("bad", {x, y}, CableKind::kSubmarine, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(NetworkBuilder, BranchedCable) {
  NetworkBuilder b("t");
  const NodeId x = b.node("X", {0.0, 0.0});
  const NodeId y = b.node("Y", {0.0, 5.0});
  const NodeId br = b.node("Branch", {2.0, 2.5});
  const CableId c = b.branched_cable("sys", {x, y}, {{y, br, 300.0}},
                                     CableKind::kSubmarine);
  EXPECT_EQ(b.network().cable(c).segments.size(), 2u);
  const auto eps = b.network().cable(c).endpoints();
  EXPECT_EQ(eps.size(), 3u);
}

TEST(NetworkBuilder, BranchedValidation) {
  NetworkBuilder b("t");
  const NodeId x = b.node("X", {0.0, 0.0});
  EXPECT_THROW(b.branched_cable("bad", {x}, {}, CableKind::kSubmarine),
               std::invalid_argument);
}

TEST(NetworkBuilder, TakeMovesNetworkOut) {
  NetworkBuilder b("moved");
  b.node("X", {0.0, 0.0});
  InfrastructureNetwork net = b.take();
  EXPECT_EQ(net.name(), "moved");
  EXPECT_EQ(net.node_count(), 1u);
}

}  // namespace
}  // namespace solarnet::topo
