#include "topology/cable.h"

#include <gtest/gtest.h>

namespace solarnet::topo {
namespace {

TEST(Cable, TotalLengthSumsSegments) {
  Cable c;
  c.segments = {{0, 1, 100.0}, {1, 2, 250.5}};
  EXPECT_DOUBLE_EQ(c.total_length_km(), 350.5);
}

TEST(Cable, EmptyCableHasZeroLength) {
  EXPECT_DOUBLE_EQ(Cable{}.total_length_km(), 0.0);
}

TEST(Cable, EndpointsDeduplicatedInOrder) {
  Cable c;
  c.segments = {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}};
  const auto eps = c.endpoints();
  EXPECT_EQ(eps, (std::vector<NodeId>{0, 1, 2}));
}

TEST(Cable, BranchEndpointsIncluded) {
  Cable c;
  c.segments = {{0, 1, 1.0}, {1, 5, 1.0}};  // branch to 5
  const auto eps = c.endpoints();
  EXPECT_EQ(eps, (std::vector<NodeId>{0, 1, 5}));
}

TEST(NodeKind, ToStringDistinct) {
  EXPECT_EQ(to_string(NodeKind::kLandingPoint), "landing-point");
  EXPECT_EQ(to_string(NodeKind::kCity), "city");
  EXPECT_EQ(to_string(NodeKind::kRouter), "router");
  EXPECT_EQ(to_string(NodeKind::kIxp), "ixp");
  EXPECT_EQ(to_string(NodeKind::kDnsRoot), "dns-root");
  EXPECT_EQ(to_string(NodeKind::kDataCenter), "data-center");
}

TEST(CableKind, ToStringDistinct) {
  EXPECT_EQ(to_string(CableKind::kSubmarine), "submarine");
  EXPECT_EQ(to_string(CableKind::kLandLongHaul), "land-long-haul");
  EXPECT_EQ(to_string(CableKind::kLandRegional), "land-regional");
}

TEST(Cable, DefaultLengthKnown) {
  EXPECT_TRUE(Cable{}.length_known);
}

}  // namespace
}  // namespace solarnet::topo
