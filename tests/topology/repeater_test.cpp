#include "topology/repeater.h"

#include <gtest/gtest.h>

#include "geo/distance.h"

namespace solarnet::topo {
namespace {

TEST(RepeaterCount, ShortRunsNeedNone) {
  EXPECT_EQ(repeater_count(0.0, 150.0), 0u);
  EXPECT_EQ(repeater_count(149.9, 150.0), 0u);
  EXPECT_EQ(repeater_count(150.0, 150.0), 0u);
}

TEST(RepeaterCount, ScalesWithLength) {
  EXPECT_EQ(repeater_count(151.0, 150.0), 1u);
  EXPECT_EQ(repeater_count(450.0, 150.0), 3u);
  EXPECT_EQ(repeater_count(9000.0, 150.0), 60u);
  // The paper's reference design: 9,000 km at ~70 km spacing => ~130.
  EXPECT_NEAR(static_cast<double>(repeater_count(9000.0, 69.0)), 130.0, 2.0);
}

TEST(RepeaterCount, SpacingMatters) {
  EXPECT_EQ(repeater_count(1000.0, 50.0), 20u);
  EXPECT_EQ(repeater_count(1000.0, 100.0), 10u);
  EXPECT_EQ(repeater_count(1000.0, 150.0), 6u);
}

TEST(RepeaterCount, RejectsBadInput) {
  EXPECT_THROW(repeater_count(100.0, 0.0), std::invalid_argument);
  EXPECT_THROW(repeater_count(100.0, -1.0), std::invalid_argument);
  EXPECT_THROW(repeater_count(-5.0, 100.0), std::invalid_argument);
}

TEST(CableRepeaterCount, SumsPerSegment) {
  Cable c;
  c.segments = {{0, 1, 140.0}, {1, 2, 320.0}};  // 0 + 2 repeaters
  EXPECT_EQ(cable_repeater_count(c, 150.0), 2u);
}

TEST(CableRepeaterCount, SegmentGranularityDiffersFromTotal) {
  // Two 100 km segments: no repeaters per segment even though total > 150.
  Cable c;
  c.segments = {{0, 1, 100.0}, {1, 2, 100.0}};
  EXPECT_EQ(cable_repeater_count(c, 150.0), 0u);
}

class RepeaterPositionTest : public ::testing::Test {
 protected:
  std::vector<Node> nodes_ = {
      {"A", {0.0, 0.0}, "", NodeKind::kLandingPoint, true},
      {"B", {0.0, 10.0}, "", NodeKind::kLandingPoint, true},  // ~1112 km
  };
};

TEST_F(RepeaterPositionTest, CountMatchesFormula) {
  Cable c;
  const double len = geo::haversine_km(nodes_[0].location, nodes_[1].location);
  c.segments = {{0, 1, len}};
  const auto reps = repeater_positions(c, 7, nodes_, 150.0);
  EXPECT_EQ(reps.size(), repeater_count(len, 150.0));
  for (const Repeater& r : reps) EXPECT_EQ(r.cable, 7u);
}

TEST_F(RepeaterPositionTest, PositionsLieOnPathInOrder) {
  Cable c;
  c.segments = {{0, 1, 1100.0}};
  const auto reps = repeater_positions(c, 0, nodes_, 150.0);
  ASSERT_GT(reps.size(), 1u);
  double prev_lon = 0.0;
  for (const Repeater& r : reps) {
    EXPECT_NEAR(r.location.lat_deg, 0.0, 1e-6);  // equatorial path
    EXPECT_GT(r.location.lon_deg, prev_lon);
    EXPECT_LT(r.location.lon_deg, 10.0);
    prev_lon = r.location.lon_deg;
  }
}

TEST_F(RepeaterPositionTest, ShortSegmentYieldsNone) {
  Cable c;
  c.segments = {{0, 1, 100.0}};
  EXPECT_TRUE(repeater_positions(c, 0, nodes_, 150.0).empty());
}

TEST_F(RepeaterPositionTest, BadNodeReferenceThrows) {
  Cable c;
  c.segments = {{0, 9, 500.0}};
  EXPECT_THROW(repeater_positions(c, 0, nodes_, 150.0), std::out_of_range);
}

TEST_F(RepeaterPositionTest, MultiSegmentAccumulates) {
  std::vector<Node> nodes = nodes_;
  nodes.push_back({"C", {0.0, 20.0}, "", NodeKind::kLandingPoint, true});
  Cable c;
  c.segments = {{0, 1, 1100.0}, {1, 2, 1100.0}};
  const auto reps = repeater_positions(c, 0, nodes, 150.0);
  EXPECT_EQ(reps.size(), 2 * repeater_count(1100.0, 150.0));
}

}  // namespace
}  // namespace solarnet::topo
