#include "solar/cycle.h"

#include <gtest/gtest.h>

#include <cmath>

namespace solarnet::solar {
namespace {

TEST(SolarCycleModel, PhaseWrapsEleven) {
  const SolarCycleModel m;
  EXPECT_NEAR(m.cycle_phase(2019.96), 0.0, 1e-9);
  EXPECT_NEAR(m.cycle_phase(2019.96 + 11.0), 0.0, 1e-9);
  EXPECT_NEAR(m.cycle_phase(2019.96 + 5.5), 0.5, 1e-9);
  EXPECT_NEAR(m.cycle_phase(2019.96 - 11.0), 0.0, 1e-9);
}

TEST(SolarCycleModel, SunspotsZeroAtMinimum) {
  const SolarCycleModel m;
  EXPECT_NEAR(m.sunspot_number(2019.96), 0.0, 1e-6);
  EXPECT_GT(m.sunspot_number(2019.96 + 5.0), 50.0);  // near cycle max
}

TEST(SolarCycleModel, GleissbergModulatesPeaks) {
  const SolarCycleModel m;
  // Reference epoch is a Gleissberg minimum; 44 years later is a maximum.
  EXPECT_NEAR(m.gleissberg_factor(2019.96), 0.0, 1e-9);
  EXPECT_NEAR(m.gleissberg_factor(2019.96 + 44.0), 1.0, 1e-9);
  // Peak sunspot number roughly doubles between the extremes (the paper's
  // "factor of 4" applies to extreme-event frequency, which goes superlinear
  // with SSN; our rate model is linear in SSN, so the peak ratio is ~2).
  const double weak_peak = m.sunspot_number(2019.96 + 5.5);
  const double strong_peak = m.sunspot_number(2019.96 + 44.0 + 5.5);
  EXPECT_GT(strong_peak, 1.5 * weak_peak);
}

TEST(SolarCycleModel, CycleTwentyFourWasWeak) {
  // §2.3: cycle 24 (2008-2019) peaked at 116; strong cycles reach 210-260.
  const SolarCycleModel m;
  double max_ssn = 0.0;
  for (double year = 2008.0; year < 2020.0; year += 0.1) {
    max_ssn = std::max(max_ssn, m.sunspot_number(year));
  }
  EXPECT_NEAR(max_ssn, 116.0, 25.0);
}

TEST(SolarCycleModel, RelativeRateAveragesToOne) {
  const SolarCycleModel m;
  double sum = 0.0;
  int n = 0;
  // Average over a full Gleissberg cycle.
  for (double year = 2020.0; year < 2020.0 + 88.0; year += 0.05) {
    sum += m.relative_event_rate(year);
    ++n;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(SolarCycleModel, RejectsBadParams) {
  CycleModelParams bad;
  bad.schwabe_period_years = 0.0;
  EXPECT_THROW(SolarCycleModel{bad}, std::invalid_argument);
  bad = CycleModelParams{};
  bad.peak_ssn_gleissberg_max = 50.0;  // below min
  EXPECT_THROW(SolarCycleModel{bad}, std::invalid_argument);
}

TEST(ExtremeEventRisk, BernoulliDecadeMatchesPaperFootnote) {
  // "probability of occurrence per decade of a once-in-a-100-years event
  // is 9%, assuming a Bernoulli distribution".
  EXPECT_NEAR(ExtremeEventRisk::bernoulli_decade_probability(100.0), 0.096,
              0.002);
  EXPECT_THROW(ExtremeEventRisk::bernoulli_decade_probability(0.0),
               std::invalid_argument);
}

TEST(ExtremeEventRisk, DirectImpactRateMatchesPaperRange) {
  // 2.6 - 5.2 direct impacts per century -> ~23-41% per decade
  // (homogeneous). Our default 3.9 sits in the middle.
  const ExtremeEventRisk risk{SolarCycleModel{}};
  const double p = risk.probability_of_event(2020.0, 10.0, false);
  EXPECT_GT(p, 0.23);
  EXPECT_LT(p, 0.41);
}

TEST(ExtremeEventRisk, CarringtonDecadeProbabilityInPaperRange) {
  // The paper cites 1.6% - 12% per decade for a Carrington-scale event.
  for (double events_per_century : {2.6, 3.9, 5.2}) {
    ExtremeEventRiskParams params;
    params.events_per_century = events_per_century;
    const ExtremeEventRisk risk{SolarCycleModel{}, params};
    const double p = risk.probability_of_carrington(2020.0, 10.0, false);
    EXPECT_GT(p, 0.016) << events_per_century;
    EXPECT_LT(p, 0.14) << events_per_century;
  }
}

TEST(ExtremeEventRisk, ModulationShiftsRiskTowardActiveDecades) {
  const ExtremeEventRisk risk{SolarCycleModel{}};
  // A decade straddling the coming Gleissberg maximum (2050s-2060s)
  // carries more risk than the minimum decade (2020s started at minimum).
  const double quiet = risk.probability_of_event(2019.96, 2.0, true);
  const double active = risk.probability_of_event(2060.0, 2.0, true);
  EXPECT_GT(active, quiet);
}

TEST(ExtremeEventRisk, ProbabilityMonotoneInHorizon) {
  const ExtremeEventRisk risk{SolarCycleModel{}};
  double prev = 0.0;
  for (double years : {1.0, 5.0, 10.0, 30.0, 100.0}) {
    const double p = risk.probability_of_event(2025.0, years, true);
    EXPECT_GT(p, prev);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(risk.probability_of_event(2025.0, 0.0), 0.0);
}

TEST(ExtremeEventRisk, SampledEventsMatchRate) {
  const ExtremeEventRisk risk{SolarCycleModel{}};
  util::Rng rng(99);
  double total_events = 0.0;
  constexpr int kRuns = 200;
  for (int i = 0; i < kRuns; ++i) {
    total_events +=
        static_cast<double>(risk.sample_event_years(2020.0, 100.0, rng).size());
  }
  // Long-run: ~3.9 events per century.
  EXPECT_NEAR(total_events / kRuns, 3.9, 0.5);
}

TEST(ExtremeEventRisk, SampledEventsInWindowAndSorted) {
  const ExtremeEventRisk risk{SolarCycleModel{}};
  util::Rng rng(7);
  const auto events = risk.sample_event_years(2030.0, 50.0, rng);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_GE(events[i], 2030.0);
    EXPECT_LT(events[i], 2080.0);
    if (i > 0) {
      EXPECT_GE(events[i], events[i - 1]);
    }
  }
}

}  // namespace
}  // namespace solarnet::solar
