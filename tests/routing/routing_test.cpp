#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "datasets/submarine.h"
#include "routing/assignment.h"
#include "routing/capacity.h"
#include "routing/demand.h"
#include "util/status.h"

namespace solarnet::routing {
namespace {

topo::Cable make_cable(topo::CableKind kind, double length) {
  topo::Cable c;
  c.kind = kind;
  c.segments = {{0, 1, length}};
  return c;
}

TEST(CapacityModel, SubmarineDecaysWithLength) {
  const CapacityModel m;
  const double short_cap =
      m.capacity_tbps(make_cable(topo::CableKind::kSubmarine, 500.0));
  const double long_cap =
      m.capacity_tbps(make_cable(topo::CableKind::kSubmarine, 20000.0));
  EXPECT_GT(short_cap, long_cap);
  EXPECT_GE(long_cap, m.submarine_floor_tbps);
}

TEST(CapacityModel, HalvingLength) {
  const CapacityModel m;
  const double c0 =
      m.capacity_tbps(make_cable(topo::CableKind::kSubmarine, 0.0));
  const double c9000 =
      m.capacity_tbps(make_cable(topo::CableKind::kSubmarine, 9000.0));
  EXPECT_NEAR(c9000 / c0, 0.5, 1e-9);
}

TEST(CapacityModel, LandKindsFixed) {
  const CapacityModel m;
  EXPECT_DOUBLE_EQ(
      m.capacity_tbps(make_cable(topo::CableKind::kLandLongHaul, 5000.0)),
      m.land_long_haul_tbps);
  EXPECT_DOUBLE_EQ(
      m.capacity_tbps(make_cable(topo::CableKind::kLandRegional, 100.0)),
      m.land_regional_tbps);
}

// A 4-node world: NY(NA) - Bude(EU) - Singapore(AS) - Sydney(OC) line.
class RoutingTest : public ::testing::Test {
 protected:
  RoutingTest() : net_("routing") {
    ny_ = add_node("NY", {40.7, -74.0}, "US");
    bude_ = add_node("Bude", {50.8, -4.5}, "GB");
    sg_ = add_node("Singapore", {1.35, 103.8}, "SG");
    syd_ = add_node("Sydney", {-33.9, 151.2}, "AU");
    atl_ = add_cable("atlantic", ny_, bude_, 6000.0);
    eur_asia_ = add_cable("eur-asia", bude_, sg_, 11000.0);
    asia_oc_ = add_cable("asia-oc", sg_, syd_, 6300.0);
    pacific_ = add_cable("pacific", ny_, syd_, 15000.0);
  }

  topo::NodeId add_node(const char* name, geo::GeoPoint p, const char* cc) {
    return net_.add_node({name, p, cc, topo::NodeKind::kLandingPoint, true});
  }
  topo::CableId add_cable(const char* name, topo::NodeId a, topo::NodeId b,
                          double len) {
    topo::Cable c;
    c.name = name;
    c.segments = {{a, b, len}};
    return net_.add_cable(std::move(c));
  }

  topo::InfrastructureNetwork net_;
  topo::NodeId ny_{}, bude_{}, sg_{}, syd_{};
  topo::CableId atl_{}, eur_asia_{}, asia_oc_{}, pacific_{};
};

TEST_F(RoutingTest, GravityDemandsCoverGatewayPairs) {
  DemandModelParams params;
  params.gateways_per_continent = 2;
  params.total_offered_tbps = 10.0;
  const auto demands = gravity_demands(net_, params);
  // 4 gateways (one per continent here) -> 6 pairs.
  EXPECT_EQ(demands.size(), 6u);
  double total = 0.0;
  for (const TrafficDemand& d : demands) {
    EXPECT_GT(d.gbps, 0.0);
    total += d.gbps;
  }
  EXPECT_NEAR(total, 10000.0, 1e-6);  // Tbps -> Gbps
}

TEST_F(RoutingTest, BaselineDeliversEverything) {
  const TrafficEngine engine(net_, gravity_demands(net_));
  const AssignmentResult r = engine.assign_baseline();
  EXPECT_DOUBLE_EQ(r.undeliverable_gbps, 0.0);
  EXPECT_DOUBLE_EQ(r.delivered_fraction(), 1.0);
  EXPECT_GT(r.delivered_gbps, 0.0);
  EXPECT_GT(r.mean_path_km, 1000.0);
}

TEST_F(RoutingTest, ShortestPathsChosen) {
  // One demand NY -> Singapore: via Bude (17,000 km) beats via Sydney
  // (21,300 km).
  const std::vector<TrafficDemand> demands = {{ny_, sg_, 100.0}};
  const TrafficEngine engine(net_, demands);
  const AssignmentResult r = engine.assign_baseline();
  EXPECT_DOUBLE_EQ(r.loads[atl_].load_gbps, 100.0);
  EXPECT_DOUBLE_EQ(r.loads[eur_asia_].load_gbps, 100.0);
  EXPECT_DOUBLE_EQ(r.loads[pacific_].load_gbps, 0.0);
  EXPECT_NEAR(r.mean_path_km, 17000.0, 1.0);
}

TEST_F(RoutingTest, FailureShiftsLoad) {
  const std::vector<TrafficDemand> demands = {{ny_, sg_, 100.0}};
  const TrafficEngine engine(net_, demands);
  const AssignmentResult baseline = engine.assign_baseline();
  std::vector<bool> dead(net_.cable_count(), false);
  dead[atl_] = true;
  const AssignmentResult after = engine.assign(dead);
  // Traffic reroutes over the Pacific.
  EXPECT_DOUBLE_EQ(after.loads[pacific_].load_gbps, 100.0);
  EXPECT_DOUBLE_EQ(after.loads[asia_oc_].load_gbps, 100.0);
  EXPECT_DOUBLE_EQ(after.undeliverable_gbps, 0.0);
  EXPECT_GT(after.mean_path_km, baseline.mean_path_km);
  const auto shift = TrafficEngine::load_shift(baseline, after);
  EXPECT_DOUBLE_EQ(shift[pacific_], 100.0);
  EXPECT_DOUBLE_EQ(shift[atl_], -100.0);
}

TEST_F(RoutingTest, DisconnectionIsUndeliverable) {
  const std::vector<TrafficDemand> demands = {{ny_, sg_, 100.0}};
  const TrafficEngine engine(net_, demands);
  std::vector<bool> dead(net_.cable_count(), false);
  dead[atl_] = true;
  dead[pacific_] = true;
  const AssignmentResult r = engine.assign(dead);
  EXPECT_DOUBLE_EQ(r.delivered_gbps, 0.0);
  EXPECT_DOUBLE_EQ(r.undeliverable_gbps, 100.0);
  EXPECT_DOUBLE_EQ(r.delivered_fraction(), 0.0);
}

TEST_F(RoutingTest, UtilizationAndOverload) {
  // Push more than the long submarine cable's capacity through it.
  const CapacityModel caps;
  const double pac_cap_gbps =
      1000.0 * caps.capacity_tbps(net_.cable(pacific_));
  const std::vector<TrafficDemand> demands = {
      {ny_, syd_, pac_cap_gbps * 1.5}};
  const TrafficEngine engine(net_, demands);
  const AssignmentResult r = engine.assign_baseline();
  EXPECT_GT(r.max_utilization, 1.0);
  EXPECT_EQ(r.overloaded_cables, 1u);
  EXPECT_NEAR(r.loads[pacific_].utilization(), 1.5, 1e-9);
}

TEST_F(RoutingTest, EngineValidatesDemands) {
  EXPECT_THROW(TrafficEngine(net_, {{99, sg_, 1.0}}), std::out_of_range);
  EXPECT_THROW(TrafficEngine(net_, {{ny_, sg_, -1.0}}),
               std::invalid_argument);
}

TEST_F(RoutingTest, LoadShiftValidatesSizes) {
  AssignmentResult a;
  a.loads.resize(2);
  AssignmentResult b;
  b.loads.resize(3);
  EXPECT_THROW(TrafficEngine::load_shift(a, b), std::invalid_argument);
}

TEST_F(RoutingTest, CapacityAwareSpillsOntoLongerPath) {
  const CapacityModel caps;
  const double atl_cap_gbps = 1000.0 * caps.capacity_tbps(net_.cable(atl_));
  // Two NY->Bude demands that together exceed the Atlantic cable: the
  // second (0.3 C, more than the 0.1 C residual) must spill onto the long
  // route via Sydney and Singapore.
  const std::vector<TrafficDemand> demands = {
      {ny_, bude_, atl_cap_gbps * 0.9},
      {ny_, bude_, atl_cap_gbps * 0.3},
  };
  const TrafficEngine engine(net_, demands);
  const AssignmentResult naive = engine.assign_baseline();
  EXPECT_EQ(naive.overloaded_cables, 1u);  // everything piles on atlantic

  const AssignmentResult aware = engine.assign_capacity_aware(
      std::vector<bool>(net_.cable_count(), false));
  EXPECT_DOUBLE_EQ(aware.undeliverable_gbps, 0.0);
  EXPECT_NEAR(aware.loads[atl_].utilization(), 0.9, 1e-9);
  EXPECT_GT(aware.loads[pacific_].load_gbps, 0.0);
  EXPECT_GT(aware.mean_path_km, naive.mean_path_km);
  EXPECT_EQ(aware.overloaded_cables, 0u);
  EXPECT_LE(aware.max_utilization, 1.0 + 1e-9);
}

TEST_F(RoutingTest, CapacityAwareBlocksWhenNothingLeft) {
  const CapacityModel caps;
  const double atl_cap = 1000.0 * caps.capacity_tbps(net_.cable(atl_));
  const double pac_cap = 1000.0 * caps.capacity_tbps(net_.cable(pacific_));
  const std::vector<TrafficDemand> demands = {
      {ny_, bude_, atl_cap},   // fills the Atlantic exactly
      {ny_, bude_, pac_cap},   // fills the Pacific detour exactly
      {ny_, bude_, 100.0},     // nowhere left to go
  };
  const TrafficEngine engine(net_, demands);
  const AssignmentResult r = engine.assign_capacity_aware(
      std::vector<bool>(net_.cable_count(), false));
  EXPECT_DOUBLE_EQ(r.undeliverable_gbps, 100.0);
  EXPECT_GT(r.delivered_gbps, 0.0);
  EXPECT_LE(r.max_utilization, 1.0 + 1e-9);
}

TEST_F(RoutingTest, CapacityAwareRespectsFailures) {
  const std::vector<TrafficDemand> demands = {{ny_, sg_, 50.0}};
  const TrafficEngine engine(net_, demands);
  std::vector<bool> dead(net_.cable_count(), false);
  dead[atl_] = true;
  const AssignmentResult r = engine.assign_capacity_aware(dead);
  EXPECT_DOUBLE_EQ(r.loads[atl_].load_gbps, 0.0);
  EXPECT_DOUBLE_EQ(r.loads[pacific_].load_gbps, 50.0);
}

// Expects `fn` to throw util::Error(kInvalidArgument) whose SourceContext
// names `field`.
template <typename Fn>
void expect_rejects_field(Fn fn, const char* field) {
  try {
    fn();
    FAIL() << "expected util::Error naming field " << field;
  } catch (const util::Error& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::kInvalidArgument);
    EXPECT_EQ(e.context().field, field);
  }
}

TEST(CapacityModelValidation, RejectsBadFieldsByName) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  expect_rejects_field(
      [&] {
        CapacityModel m;
        m.submarine_base_tbps = -1.0;
        validate(m);
      },
      "submarine_base_tbps");
  expect_rejects_field(
      [&] {
        CapacityModel m;
        m.submarine_floor_tbps = nan;
        validate(m);
      },
      "submarine_floor_tbps");
  expect_rejects_field(
      [&] {
        CapacityModel m;
        m.land_long_haul_tbps = inf;
        validate(m);
      },
      "land_long_haul_tbps");
  expect_rejects_field(
      [&] {
        CapacityModel m;
        m.land_regional_tbps = -0.5;
        validate(m);
      },
      "land_regional_tbps");
  expect_rejects_field(
      [&] {
        CapacityModel m;
        m.submarine_halving_length_km = 0.0;  // division by zero downstream
        validate(m);
      },
      "submarine_halving_length_km");
  validate(CapacityModel{});  // defaults are valid
}

TEST_F(RoutingTest, EngineValidatesCapacityModel) {
  CapacityModel bad;
  bad.submarine_base_tbps = std::numeric_limits<double>::quiet_NaN();
  expect_rejects_field(
      [&] { TrafficEngine(net_, {{ny_, sg_, 1.0}}, bad); },
      "submarine_base_tbps");
}

TEST(DemandParamsValidation, RejectsBadFieldsByName) {
  expect_rejects_field(
      [] {
        DemandModelParams p;
        p.gateways_per_continent = 0;
        validate(p);
      },
      "gateways_per_continent");
  expect_rejects_field(
      [] {
        DemandModelParams p;
        p.total_offered_tbps = -400.0;
        validate(p);
      },
      "total_offered_tbps");
  expect_rejects_field(
      [] {
        DemandModelParams p;
        p.distance_exponent = std::numeric_limits<double>::infinity();
        validate(p);
      },
      "distance_exponent");
  validate(DemandModelParams{});  // defaults are valid
}

TEST_F(RoutingTest, GravityDemandsValidateParams) {
  DemandModelParams p;
  p.total_offered_tbps = std::numeric_limits<double>::quiet_NaN();
  expect_rejects_field([&] { gravity_demands(net_, p); },
                       "total_offered_tbps");
}

TEST_F(RoutingTest, GravityHandlesFewerLandingNodesThanGateways) {
  // Every continent here has a single landing node; asking for 10 per
  // continent must take what exists, not read past the end.
  DemandModelParams params;
  params.gateways_per_continent = 10;
  params.total_offered_tbps = 8.0;
  const auto demands = gravity_demands(net_, params);
  EXPECT_EQ(demands.size(), 6u);  // 4 gateways -> 6 pairs
  double total = 0.0;
  for (const TrafficDemand& d : demands) total += d.gbps;
  EXPECT_NEAR(total, 8000.0, 1e-6);
}

TEST_F(RoutingTest, GravityIgnoresCablelessContinents) {
  // A continent whose only node has no cables contributes zero gateways
  // and must not perturb the matrix.
  add_node("Nairobi", {-1.3, 36.8}, "KE");  // Africa, no cables
  DemandModelParams params;
  params.gateways_per_continent = 2;
  const auto demands = gravity_demands(net_, params);
  EXPECT_EQ(demands.size(), 6u);  // still 4 gateways
  for (const TrafficDemand& d : demands) {
    EXPECT_FALSE(net_.cables_at(d.src).empty());
    EXPECT_FALSE(net_.cables_at(d.dst).empty());
  }
}

TEST(GravityDeterminism, InvariantUnderNodeIdPermutationWithDistinctDegrees) {
  // Same physical network built in two different node orders. Degrees are
  // distinct within each continent, so the degree sort alone must pin the
  // gateway choice — the demand matrix (resolved to node names) has to be
  // identical.
  struct Spec {
    const char* name;
    geo::GeoPoint at;
    const char* cc;
  };
  // Europe: Bude (degree 2) vs Lisbon (degree 1); NA: NY (degree 3).
  const std::vector<Spec> specs = {{"NY", {40.7, -74.0}, "US"},
                                   {"Bude", {50.8, -4.5}, "GB"},
                                   {"Lisbon", {38.7, -9.1}, "PT"},
                                   {"Singapore", {1.35, 103.8}, "SG"}};
  const auto build = [&](std::vector<std::size_t> order) {
    topo::InfrastructureNetwork net("perm");
    for (std::size_t i : order) {
      net.add_node({specs[i].name, specs[i].at, specs[i].cc,
                    topo::NodeKind::kLandingPoint, true});
    }
    const auto cable = [&](const char* a, const char* b, double km) {
      topo::Cable c;
      c.name = std::string(a) + "-" + b;
      c.segments = {{*net.find_node(a), *net.find_node(b), km}};
      net.add_cable(std::move(c));
    };
    cable("NY", "Bude", 6000.0);
    cable("NY", "Lisbon", 5500.0);
    cable("NY", "Singapore", 15000.0);
    cable("Bude", "Singapore", 11000.0);
    return net;
  };
  const auto named_demands = [](const topo::InfrastructureNetwork& net,
                                const std::vector<TrafficDemand>& demands) {
    std::vector<std::string> rows;
    for (const TrafficDemand& d : demands) {
      rows.push_back(net.node(d.src).name + ">" + net.node(d.dst).name + "@" +
                     std::to_string(d.gbps));
    }
    return rows;
  };
  DemandModelParams params;
  params.gateways_per_continent = 1;
  const auto a = build({0, 1, 2, 3});
  const auto b = build({3, 2, 1, 0});
  EXPECT_EQ(named_demands(a, gravity_demands(a, params)),
            named_demands(b, gravity_demands(b, params)));
}

TEST(GravityDeterminism, EqualDegreesTieBreakByLowestId) {
  // Two same-continent nodes with identical cable degree: the lower node
  // id must win the gateway slot.
  topo::InfrastructureNetwork net("tie");
  const auto ny = net.add_node(
      {"NY", {40.7, -74.0}, "US", topo::NodeKind::kLandingPoint, true});
  const auto boston = net.add_node(
      {"Boston", {42.4, -71.1}, "US", topo::NodeKind::kLandingPoint, true});
  const auto bude = net.add_node(
      {"Bude", {50.8, -4.5}, "GB", topo::NodeKind::kLandingPoint, true});
  const auto cable = [&](topo::NodeId a, topo::NodeId b, double km) {
    topo::Cable c;
    c.name = "c" + std::to_string(net.cable_count());
    c.segments = {{a, b, km}};
    net.add_cable(std::move(c));
  };
  cable(ny, bude, 6000.0);
  cable(boston, bude, 6100.0);  // NY and Boston both have degree 1
  DemandModelParams params;
  params.gateways_per_continent = 1;
  const auto demands = gravity_demands(net, params);
  ASSERT_EQ(demands.size(), 1u);
  EXPECT_EQ(std::min(demands[0].src, demands[0].dst), ny);
  EXPECT_NE(demands[0].src, boston);
  EXPECT_NE(demands[0].dst, boston);
}

TEST_F(RoutingTest, SampledNodeDemandsDeterministicAndNormalized) {
  const auto a = sampled_node_demands(net_, 1000, 40.0, 99);
  const auto b = sampled_node_demands(net_, 1000, 40.0, 99);
  ASSERT_EQ(a.size(), 1000u);
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].gbps, b[i].gbps);
    EXPECT_NE(a[i].src, a[i].dst);
    EXPECT_FALSE(net_.cables_at(a[i].src).empty());
    EXPECT_FALSE(net_.cables_at(a[i].dst).empty());
    total += a[i].gbps;
  }
  EXPECT_NEAR(total, 40000.0, 1e-6);
  // A different seed draws a different matrix.
  const auto c = sampled_node_demands(net_, 1000, 40.0, 100);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    any_diff = any_diff || c[i].src != a[i].src || c[i].dst != a[i].dst;
  }
  EXPECT_TRUE(any_diff);
  EXPECT_TRUE(sampled_node_demands(net_, 0, 40.0, 1).empty());
}

TEST(SampledNodeDemandsValidation, RejectsBadInput) {
  topo::InfrastructureNetwork lonely("lonely");
  lonely.add_node(
      {"solo", {0.0, 0.0}, "US", topo::NodeKind::kLandingPoint, true});
  try {
    sampled_node_demands(lonely, 10, 1.0, 7);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::kInvalidArgument);
  }
  topo::InfrastructureNetwork ok("two");
  const auto a = ok.add_node(
      {"a", {0.0, 0.0}, "US", topo::NodeKind::kLandingPoint, true});
  const auto b = ok.add_node(
      {"b", {1.0, 1.0}, "GB", topo::NodeKind::kLandingPoint, true});
  topo::Cable c;
  c.name = "ab";
  c.segments = {{a, b, 500.0}};
  ok.add_cable(std::move(c));
  try {
    sampled_node_demands(ok, 10, -1.0, 7);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.context().field, "total_offered_tbps");
  }
}

// Regression pin for the documented assign_capacity_aware tie caveat: with
// several *equal-length* shortest paths, the engine commits the whole
// demand to one of them (whichever the reused SSSP tree charged) instead
// of splitting — deterministically — and later demands spill onto the
// other path only once the first fills up.
TEST(CapacityAwareTies, EqualLengthDiamondPinsOnePathThenSpills) {
  topo::InfrastructureNetwork net("diamond");
  const auto s = net.add_node(
      {"s", {0.0, 0.0}, "US", topo::NodeKind::kLandingPoint, true});
  const auto a = net.add_node(
      {"a", {5.0, 5.0}, "US", topo::NodeKind::kLandingPoint, true});
  const auto b = net.add_node(
      {"b", {-5.0, 5.0}, "US", topo::NodeKind::kLandingPoint, true});
  const auto t = net.add_node(
      {"t", {0.0, 10.0}, "GB", topo::NodeKind::kLandingPoint, true});
  const auto add = [&](const char* name, topo::NodeId u, topo::NodeId v) {
    topo::Cable c;
    c.name = name;
    c.segments = {{u, v, 500.0}};
    return net.add_cable(std::move(c));
  };
  const auto sa = add("s-a", s, a);
  const auto at = add("a-t", a, t);
  const auto sb = add("s-b", s, b);
  const auto bt = add("b-t", b, t);
  const std::vector<bool> intact(net.cable_count(), false);

  // All four cables share one capacity (same kind, same length).
  const double cap =
      TrafficEngine(net, {{s, t, 1.0}}).assign_baseline().loads[sa]
          .capacity_gbps;
  ASSERT_GT(cap, 0.0);

  // One fitting demand: exactly ONE of the two equal-length paths carries
  // the whole volume, the other stays empty.
  const TrafficEngine engine(net, {{s, t, 100.0}});
  const AssignmentResult one = engine.assign_capacity_aware(intact);
  EXPECT_DOUBLE_EQ(one.delivered_gbps, 100.0);
  EXPECT_EQ(one.undeliverable_gbps, 0.0);
  const bool via_a =
      one.loads[sa].load_gbps > 0.0 && one.loads[at].load_gbps > 0.0;
  const bool via_b =
      one.loads[sb].load_gbps > 0.0 && one.loads[bt].load_gbps > 0.0;
  EXPECT_NE(via_a, via_b);  // one path, never a split
  const topo::CableId first = via_a ? sa : sb;
  const topo::CableId second = via_a ? at : bt;
  EXPECT_DOUBLE_EQ(one.loads[first].load_gbps, 100.0);
  EXPECT_DOUBLE_EQ(one.loads[second].load_gbps, 100.0);
  EXPECT_EQ(one.loads[via_a ? sb : sa].load_gbps, 0.0);
  EXPECT_EQ(one.loads[via_a ? bt : at].load_gbps, 0.0);

  // Deterministic: the same call charges the same path bit for bit.
  const AssignmentResult replay = engine.assign_capacity_aware(intact);
  for (std::size_t c = 0; c < one.loads.size(); ++c) {
    EXPECT_EQ(replay.loads[c].load_gbps, one.loads[c].load_gbps);
  }

  // Two path-filling demands: the second spills onto the other equal-length
  // path once the first is full.
  const TrafficEngine spill(net, {{s, t, cap}, {s, t, cap}});
  const AssignmentResult two = spill.assign_capacity_aware(intact);
  EXPECT_DOUBLE_EQ(two.delivered_gbps, 2.0 * cap);
  EXPECT_EQ(two.undeliverable_gbps, 0.0);
  for (const topo::CableId c : {sa, at, sb, bt}) {
    EXPECT_DOUBLE_EQ(two.loads[c].load_gbps, cap);
  }
  EXPECT_DOUBLE_EQ(two.max_utilization, 1.0);
  EXPECT_EQ(two.overloaded_cables, 0u);

  // A third demand finds both paths full and is blocked, not overloaded.
  const TrafficEngine jammed(net, {{s, t, cap}, {s, t, cap}, {s, t, cap}});
  const AssignmentResult three = jammed.assign_capacity_aware(intact);
  EXPECT_DOUBLE_EQ(three.delivered_gbps, 2.0 * cap);
  EXPECT_DOUBLE_EQ(three.undeliverable_gbps, cap);
  EXPECT_EQ(three.overloaded_cables, 0u);
}

TEST(RoutingDefault, GeneratedWorldBaselineMostlyDelivered) {
  const auto net = datasets::make_submarine_network({});
  const TrafficEngine engine(net, gravity_demands(net));
  const AssignmentResult r = engine.assign_baseline();
  EXPECT_GT(r.delivered_fraction(), 0.99);
  EXPECT_GT(r.loads.size(), 0u);
}

}  // namespace
}  // namespace solarnet::routing
