#include "routing/traffic_observer.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analysis/report.h"
#include "gic/failure_model.h"
#include "sim/monte_carlo.h"
#include "sim/pipeline.h"
#include "util/checkpoint.h"
#include "util/status.h"

namespace solarnet::routing {
namespace {

void expect_stats_eq(const util::RunningStats& a, const util::RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.sample_stddev(), b.sample_stddev());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void expect_sweeps_eq(const TrafficSweep& a, const TrafficSweep& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.demand_pairs, b.demand_pairs);
  EXPECT_EQ(a.offered_gbps, b.offered_gbps);
  expect_stats_eq(a.delivered_fraction, b.delivered_fraction);
  expect_stats_eq(a.stranded_gbps, b.stranded_gbps);
  expect_stats_eq(a.max_utilization, b.max_utilization);
  expect_stats_eq(a.overloaded_cables, b.overloaded_cables);
  expect_stats_eq(a.mean_path_km, b.mean_path_km);
}

// Captures every trial's cable_dead draw so a test can replay it through
// the one-shot TrafficEngine API. Registered alongside the traffic
// observer, it sees the identical draws.
class DrawRecorder final : public sim::TrialObserver {
 public:
  bool needs_components() const override { return false; }
  void begin_run(const sim::TrialPipeline&, std::size_t,
                 std::size_t chunks) override {
    draws_.assign(chunks * sim::TrialPipeline::kTrialChunk, {});
  }
  void observe(const sim::TrialView& view, std::size_t, std::size_t) override {
    std::vector<bool> dead(view.cable_dead->size());
    for (std::size_t c = 0; c < dead.size(); ++c) {
      dead[c] = view.cable_dead->test(c);
    }
    draws_[view.trial] = std::move(dead);
  }
  void end_run() override {}

  const std::vector<bool>& draw(std::size_t trial) const {
    return draws_[trial];
  }

 private:
  std::vector<std::vector<bool>> draws_;
};

// NY - Bude - Singapore - Sydney line plus a NY-Sydney pacific cable:
// failures disconnect endpoints or shift load onto the long way round.
class TrafficObserverTest : public ::testing::Test {
 protected:
  TrafficObserverTest() : net_("traffic") {
    ny_ = add_node("NY", {40.7, -74.0}, "US");
    bude_ = add_node("Bude", {50.8, -4.5}, "GB");
    sg_ = add_node("Singapore", {1.35, 103.8}, "SG");
    syd_ = add_node("Sydney", {-33.9, 151.2}, "AU");
    add_cable("atlantic", ny_, bude_, 6000.0);
    add_cable("eur-asia", bude_, sg_, 11000.0);
    add_cable("asia-oc", sg_, syd_, 6300.0);
    add_cable("pacific", ny_, syd_, 15000.0);
  }

  topo::NodeId add_node(const char* name, geo::GeoPoint p, const char* cc) {
    return net_.add_node({name, p, cc, topo::NodeKind::kLandingPoint, true});
  }
  void add_cable(const char* name, topo::NodeId a, topo::NodeId b,
                 double len) {
    topo::Cable c;
    c.name = name;
    c.segments = {{a, b, len}};
    net_.add_cable(std::move(c));
  }

  std::vector<TrafficDemand> demands() const {
    return {{ny_, sg_, 400.0}, {ny_, syd_, 300.0}, {bude_, syd_, 200.0},
            {sg_, bude_, 100.0}};
  }

  topo::InfrastructureNetwork net_;
  topo::NodeId ny_{}, bude_{}, sg_{}, syd_{};
};

TEST_F(TrafficObserverTest, MatchesOneShotAssignPerTrial) {
  const gic::UniformFailureModel model(0.35);
  sim::TrialConfig cfg;
  cfg.threads = 1;
  const sim::FailureSimulator simulator(net_, cfg);
  sim::TrialPipeline pipeline(simulator, model);

  const TrafficEngine engine(net_, demands());
  TrafficObserver observer(engine);
  DrawRecorder recorder;
  pipeline.add_observer(observer);
  pipeline.add_observer(recorder);
  const std::size_t trials = 100;
  pipeline.run(trials, 13);

  ASSERT_EQ(observer.result().trials, trials);
  EXPECT_EQ(observer.result().network, "traffic");
  EXPECT_EQ(observer.result().demand_pairs, demands().size());
  EXPECT_EQ(observer.result().offered_gbps, 1000.0);

  // Replay every recorded draw through the one-shot API with the
  // observer's chunk structure: per-chunk accumulators merged in ascending
  // order, which must reproduce the observer's statistics bit for bit.
  const std::size_t chunks = sim::TrialPipeline::chunk_count(trials);
  std::vector<util::RunningStats> delivered(chunks), stranded(chunks),
      max_util(chunks), overloaded(chunks), path_km(chunks);
  for (std::size_t t = 0; t < trials; ++t) {
    const AssignmentResult r = engine.assign(recorder.draw(t));
    const std::size_t chunk = t / sim::TrialPipeline::kTrialChunk;
    delivered[chunk].add(r.delivered_fraction());
    stranded[chunk].add(r.undeliverable_gbps);
    max_util[chunk].add(r.max_utilization);
    overloaded[chunk].add(static_cast<double>(r.overloaded_cables));
    path_km[chunk].add(r.mean_path_km);
  }
  TrafficSweep expected;
  for (std::size_t c = 0; c < chunks; ++c) {
    expected.delivered_fraction.merge(delivered[c]);
    expected.stranded_gbps.merge(stranded[c]);
    expected.max_utilization.merge(max_util[c]);
    expected.overloaded_cables.merge(overloaded[c]);
    expected.mean_path_km.merge(path_km[c]);
  }
  expect_stats_eq(observer.result().delivered_fraction,
                  expected.delivered_fraction);
  expect_stats_eq(observer.result().stranded_gbps, expected.stranded_gbps);
  expect_stats_eq(observer.result().max_utilization, expected.max_utilization);
  expect_stats_eq(observer.result().overloaded_cables,
                  expected.overloaded_cables);
  expect_stats_eq(observer.result().mean_path_km, expected.mean_path_km);
}

TEST_F(TrafficObserverTest, ThreadCountBitIdentity) {
  const auto model = gic::LatitudeBandFailureModel::s1();
  const TrafficEngine engine(net_, demands());

  const auto run_with = [&](std::size_t threads) {
    sim::TrialConfig cfg;
    cfg.threads = threads;
    const sim::FailureSimulator simulator(net_, cfg);
    sim::TrialPipeline pipeline(simulator, model);
    TrafficObserver observer(engine);
    pipeline.add_observer(observer);
    pipeline.run(200, 17, threads);
    return observer.result();
  };

  const TrafficSweep serial = run_with(1);
  expect_sweeps_eq(run_with(2), serial);
  expect_sweeps_eq(run_with(4), serial);
}

TEST_F(TrafficObserverTest, CheckpointRoundTripIsBitIdentical) {
  const gic::UniformFailureModel model(0.4);
  sim::TrialConfig cfg;
  cfg.threads = 1;
  const sim::FailureSimulator simulator(net_, cfg);
  sim::TrialPipeline pipeline(simulator, model);
  const TrafficEngine engine(net_, demands());

  // Drive run_trial manually (the bench/campaign idiom): accumulate two
  // chunks, save them, restore into a fresh observer, and require the
  // merged results to match bit for bit.
  const std::size_t trials = 2 * sim::TrialPipeline::kTrialChunk;
  const util::Rng base(23);
  TrafficObserver direct(engine);
  pipeline.add_observer(direct);
  direct.begin_run(pipeline, 1, 2);
  sim::PipelineScratch scratch;
  for (std::size_t t = 0; t < trials; ++t) {
    pipeline.run_trial(t, base, scratch, 0,
                       t / sim::TrialPipeline::kTrialChunk);
  }
  util::ByteWriter chunk0, chunk1;
  direct.save_chunk(0, chunk0);
  direct.save_chunk(1, chunk1);
  direct.end_run();

  TrafficObserver restored(engine);
  restored.begin_run(pipeline, 1, 2);
  util::ByteReader r0(chunk0.data()), r1(chunk1.data());
  restored.load_chunk(0, r0);
  restored.load_chunk(1, r1);
  restored.end_run();
  expect_sweeps_eq(restored.result(), direct.result());
}

TEST_F(TrafficObserverTest, ChunkSlotLifecycleIsGuarded) {
  const TrafficEngine engine(net_, demands());
  TrafficObserver observer(engine);
  // No begin_run yet: every slot access is a lifecycle violation.
  util::ByteWriter out;
  try {
    observer.save_chunk(0, out);
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::kInvalidArgument);
    EXPECT_NE(std::string(e.what()).find("TrafficObserver"),
              std::string::npos);
  }
}

TEST_F(TrafficObserverTest, CheckpointIdCarriesConfiguration) {
  const TrafficEngine engine(net_, demands());
  const TrafficEngine other(net_, {{ny_, sg_, 400.0}});
  EXPECT_NE(TrafficObserver(engine).checkpoint_id(),
            TrafficObserver(other).checkpoint_id());
  EXPECT_NE(TrafficObserver(engine).checkpoint_id().find("traffic/v1/"),
            std::string::npos);
}

TEST_F(TrafficObserverTest, ZeroTrialsYieldsEmptySweep) {
  const gic::UniformFailureModel model(0.5);
  const sim::FailureSimulator simulator(net_, {});
  sim::TrialPipeline pipeline(simulator, model);
  const TrafficEngine engine(net_, demands());
  TrafficObserver observer(engine);
  pipeline.add_observer(observer);
  pipeline.run(0, 7);
  EXPECT_EQ(observer.result().trials, 0u);
  EXPECT_TRUE(observer.result().delivered_fraction.empty());
}

TEST_F(TrafficObserverTest, ReportRendersTrafficSection) {
  const gic::UniformFailureModel model(0.3);
  sim::TrialConfig cfg;
  cfg.threads = 1;
  const sim::FailureSimulator simulator(net_, cfg);
  sim::TrialPipeline pipeline(simulator, model);
  const TrafficEngine engine(net_, demands());
  TrafficObserver observer(engine);
  pipeline.add_observer(observer);
  pipeline.run(50, 19);

  analysis::ResilienceReport report;
  report.title = "traffic render test";
  report.traffic.push_back(observer.result());
  const std::string text = report.render();
  EXPECT_NE(text.find("Post-failure traffic routing"), std::string::npos);
  EXPECT_NE(text.find("traffic"), std::string::npos);
  EXPECT_NE(text.find("stranded Gbps"), std::string::npos);
}

}  // namespace
}  // namespace solarnet::routing
