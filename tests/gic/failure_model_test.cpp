#include "gic/failure_model.h"

#include <gtest/gtest.h>

namespace solarnet::gic {
namespace {

RepeaterContext ctx(double lat, double cable_max = 0.0) {
  return {{lat, 0.0}, cable_max == 0.0 ? std::abs(lat) : cable_max};
}

TEST(UniformModel, ConstantProbability) {
  const UniformFailureModel m(0.25);
  EXPECT_DOUBLE_EQ(m.failure_probability(ctx(0.0)), 0.25);
  EXPECT_DOUBLE_EQ(m.failure_probability(ctx(80.0)), 0.25);
  EXPECT_NE(m.name().find("0.25"), std::string::npos);
}

TEST(UniformModel, RejectsOutOfRange) {
  EXPECT_THROW(UniformFailureModel(-0.1), std::invalid_argument);
  EXPECT_THROW(UniformFailureModel(1.1), std::invalid_argument);
  EXPECT_NO_THROW(UniformFailureModel(0.0));
  EXPECT_NO_THROW(UniformFailureModel(1.0));
}

TEST(BandModel, S1MatchesPaper) {
  // S1 = [1, 0.1, 0.01] over bands (>60, 40-60, <40) keyed on the cable's
  // highest-|latitude| endpoint.
  const auto m = LatitudeBandFailureModel::s1();
  EXPECT_DOUBLE_EQ(m.failure_probability(ctx(0.0, 65.0)), 1.0);
  EXPECT_DOUBLE_EQ(m.failure_probability(ctx(0.0, 50.0)), 0.1);
  EXPECT_DOUBLE_EQ(m.failure_probability(ctx(0.0, 30.0)), 0.01);
}

TEST(BandModel, S2MatchesPaper) {
  const auto m = LatitudeBandFailureModel::s2();
  EXPECT_DOUBLE_EQ(m.failure_probability(ctx(0.0, 65.0)), 0.1);
  EXPECT_DOUBLE_EQ(m.failure_probability(ctx(0.0, 50.0)), 0.01);
  EXPECT_DOUBLE_EQ(m.failure_probability(ctx(0.0, 30.0)), 0.001);
}

TEST(BandModel, UsesCableLatitudeNotRepeaterLatitude) {
  const auto m = LatitudeBandFailureModel::s1();
  // Repeater at the equator, but the cable tops out at 65: high band.
  RepeaterContext c;
  c.location = {0.0, 0.0};
  c.cable_max_abs_lat_deg = 65.0;
  EXPECT_DOUBLE_EQ(m.failure_probability(c), 1.0);
}

TEST(BandModel, BoundariesAreStrict) {
  const auto m = LatitudeBandFailureModel::s1();
  EXPECT_DOUBLE_EQ(m.failure_probability(ctx(0.0, 40.0)), 0.01);  // L <= 40
  EXPECT_DOUBLE_EQ(m.failure_probability(ctx(0.0, 40.0001)), 0.1);
  EXPECT_DOUBLE_EQ(m.failure_probability(ctx(0.0, 60.0)), 0.1);  // L <= 60
  EXPECT_DOUBLE_EQ(m.failure_probability(ctx(0.0, 60.0001)), 1.0);
}

TEST(BandModel, RejectsBadProbabilities) {
  EXPECT_THROW(LatitudeBandFailureModel("bad", {1.5, 0.1, 0.01}),
               std::invalid_argument);
}

TEST(PerRepeaterModel, UsesRepeaterLatitude) {
  const PerRepeaterBandModel m("per-repeater", {1.0, 0.1, 0.01});
  RepeaterContext c;
  c.location = {0.0, 0.0};
  c.cable_max_abs_lat_deg = 65.0;  // ignored by this model
  EXPECT_DOUBLE_EQ(m.failure_probability(c), 0.01);
  c.location = {65.0, 0.0};
  c.cable_max_abs_lat_deg = 0.0;
  EXPECT_DOUBLE_EQ(m.failure_probability(c), 1.0);
}

TEST(FieldDrivenModel, MonotoneInLatitude) {
  // Disable land/ocean classification so the pure latitude profile shows
  // through (the meridian crosses land and ocean alternately).
  FieldModelParams params;
  params.classify_ocean_by_country_box = false;
  const FieldDrivenFailureModel m{
      GeoelectricFieldModel(carrington_1859(), params)};
  double prev = -1.0;
  for (double lat = 0.0; lat <= 80.0; lat += 10.0) {
    const double p = m.failure_probability(ctx(lat));
    EXPECT_GE(p, prev - 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(FieldDrivenModel, OceanRepeatersAtHigherRisk) {
  const FieldDrivenFailureModel m{GeoelectricFieldModel(carrington_1859())};
  RepeaterContext land;
  land.location = {50.5, 9.0};  // Germany
  RepeaterContext ocean;
  ocean.location = {50.5, -35.0};  // mid-Atlantic, same latitude
  EXPECT_GT(m.failure_probability(ocean), m.failure_probability(land));
}

TEST(FieldDrivenModel, StrongStormKillsHighLatitudes) {
  const FieldDrivenFailureModel m{GeoelectricFieldModel(carrington_1859())};
  EXPECT_GT(m.failure_probability(ctx(70.0)), 0.5);
  EXPECT_LT(m.failure_probability(ctx(0.0)), 0.2);
}

TEST(FieldDrivenModel, WeakStormMostlyHarmless) {
  const FieldDrivenFailureModel m{GeoelectricFieldModel(moderate_storm())};
  EXPECT_LT(m.failure_probability(ctx(30.0)), 0.05);
}

TEST(FieldDrivenModel, RejectsBadParams) {
  FieldDrivenFailureModel::Params bad;
  bad.overload_at_half = 0.0;
  EXPECT_THROW(
      FieldDrivenFailureModel(GeoelectricFieldModel(quebec_1989()), bad),
      std::invalid_argument);
}

TEST(FieldDrivenModel, NameMentionsStorm) {
  const FieldDrivenFailureModel m{GeoelectricFieldModel(quebec_1989())};
  EXPECT_NE(m.name().find("Quebec"), std::string::npos);
}

TEST(Factories, ProduceWorkingModels) {
  EXPECT_DOUBLE_EQ(make_uniform(0.5)->failure_probability(ctx(0.0)), 0.5);
  EXPECT_DOUBLE_EQ(make_s1()->failure_probability(ctx(0.0, 70.0)), 1.0);
  EXPECT_DOUBLE_EQ(make_s2()->failure_probability(ctx(0.0, 70.0)), 0.1);
}

}  // namespace
}  // namespace solarnet::gic
