#include "gic/induction.h"

#include <gtest/gtest.h>

#include "geo/distance.h"

namespace solarnet::gic {
namespace {

class InductionTest : public ::testing::Test {
 protected:
  InductionTest() : net_("t") {
    // High-latitude east-west cable (Oslo-ish to Helsinki-ish) and an
    // equatorial cable of equal great-circle span.
    n_oslo_ = net_.add_node(
        {"Oslo", {60.0, 10.0}, "NO", topo::NodeKind::kLandingPoint, true});
    n_hel_ = net_.add_node(
        {"Helsinki", {60.0, 25.0}, "FI", topo::NodeKind::kLandingPoint, true});
    // The equatorial pair spans half the longitude so its great-circle
    // length matches the 60N pair (cos 60 = 0.5) — same length, different
    // latitude, which is exactly what the comparison tests need.
    n_eq_a_ = net_.add_node(
        {"EqA", {0.0, 10.0}, "", topo::NodeKind::kLandingPoint, true});
    n_eq_b_ = net_.add_node(
        {"EqB", {0.0, 17.5}, "", topo::NodeKind::kLandingPoint, true});
    topo::Cable north;
    north.name = "north";
    north.segments = {{n_oslo_, n_hel_, 0.0}};
    north.segments[0].length_km =
        geo::haversine_km(net_.node(n_oslo_).location,
                          net_.node(n_hel_).location);
    north_ = net_.add_cable(std::move(north));
    topo::Cable eq;
    eq.name = "equator";
    eq.segments = {{n_eq_a_, n_eq_b_, 0.0}};
    eq_ = net_.add_cable(std::move(eq));
  }

  topo::InfrastructureNetwork net_;
  topo::NodeId n_oslo_{}, n_hel_{}, n_eq_a_{}, n_eq_b_{};
  topo::CableId north_{}, eq_{};
};

TEST_F(InductionTest, HighLatitudeCableSeesMorePotential) {
  const GeoelectricFieldModel field(carrington_1859());
  const auto north = compute_cable_induction(net_, north_, field);
  const auto eq = compute_cable_induction(net_, eq_, field);
  EXPECT_GT(north.total_potential_v, 3.0 * eq.total_potential_v);
  EXPECT_GT(north.peak_gic_amp, eq.peak_gic_amp);
}

TEST_F(InductionTest, PotentialScalesWithField) {
  const GeoelectricFieldModel weak(quebec_1989());
  const GeoelectricFieldModel strong(carrington_1859());
  const auto w = compute_cable_induction(net_, north_, weak);
  const auto s = compute_cable_induction(net_, north_, strong);
  EXPECT_GT(s.total_potential_v, w.total_potential_v);
  // Field ratio is 10x; potential ratio should be in the same ballpark
  // (boundary shapes differ slightly).
  EXPECT_NEAR(s.total_potential_v / w.total_potential_v, 10.0, 3.5);
}

TEST_F(InductionTest, PeakGicNearFieldOverResistance) {
  // For a uniform field E over a section, I = E / R per km — length cancels.
  const GeoelectricFieldModel field(carrington_1859());
  const auto r = compute_cable_induction(net_, north_, field);
  const double e_mid =
      field.field_v_per_km(geo::interpolate(net_.node(n_oslo_).location,
                                            net_.node(n_hel_).location, 0.5));
  EXPECT_NEAR(r.peak_gic_amp, e_mid / 0.8, 0.35 * e_mid / 0.8);
}

TEST_F(InductionTest, CarringtonOverloadIsTensToHundredFold) {
  // §3.2: storm GIC ~100x the 1.1 A operating current. Our default params
  // should land in the tens-to-hundreds range at high latitude.
  const GeoelectricFieldModel field(carrington_1859());
  const auto r = compute_cable_induction(net_, north_, field);
  EXPECT_GT(r.overload_factor, 10.0);
  EXPECT_LT(r.overload_factor, 300.0);
}

TEST_F(InductionTest, GroundingIntervalLimitsSectionPotential) {
  const GeoelectricFieldModel field(carrington_1859());
  InductionParams coarse;
  coarse.grounding_interval_km = 10000.0;  // one section
  InductionParams fine;
  fine.grounding_interval_km = 100.0;  // many sections
  const auto c = compute_cable_induction(net_, north_, field, coarse);
  const auto f = compute_cable_induction(net_, north_, field, fine);
  EXPECT_GT(c.max_section_potential_v, f.max_section_potential_v);
  // Total potential is a path integral — independent of grounding.
  EXPECT_NEAR(c.total_potential_v, f.total_potential_v, 1e-6);
}

TEST_F(InductionTest, MeanderStretchIncreasesPotential) {
  // A cable whose stated length is twice the great circle integrates twice
  // the potential.
  topo::Cable stretched;
  stretched.name = "stretched";
  const double gc = geo::haversine_km(net_.node(n_oslo_).location,
                                      net_.node(n_hel_).location);
  stretched.segments = {{n_oslo_, n_hel_, 2.0 * gc}};
  const topo::CableId id = net_.add_cable(std::move(stretched));
  const GeoelectricFieldModel field(carrington_1859());
  const auto base = compute_cable_induction(net_, north_, field);
  const auto stretched_r = compute_cable_induction(net_, id, field);
  EXPECT_NEAR(stretched_r.total_potential_v / base.total_potential_v, 2.0,
              0.1);
}

TEST_F(InductionTest, InvalidParamsThrow) {
  const GeoelectricFieldModel field(quebec_1989());
  InductionParams bad;
  bad.integration_step_km = 0.0;
  EXPECT_THROW(compute_cable_induction(net_, north_, field, bad),
               std::invalid_argument);
  bad = InductionParams{};
  bad.grounding_interval_km = -1.0;
  EXPECT_THROW(compute_cable_induction(net_, north_, field, bad),
               std::invalid_argument);
}

TEST_F(InductionTest, NetworkWideComputation) {
  const GeoelectricFieldModel field(carrington_1859());
  const auto all = compute_network_induction(net_, field);
  EXPECT_EQ(all.size(), net_.cable_count());
  EXPECT_GT(all[north_].total_potential_v, 0.0);
}

}  // namespace
}  // namespace solarnet::gic
