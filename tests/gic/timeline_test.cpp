#include "gic/timeline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "util/status.h"

namespace solarnet::gic {
namespace {

TEST(StormIntensity, PhaseShape) {
  const StormPhaseProfile p;  // onset 2h, main 10h, tau 18h, total 72h
  EXPECT_DOUBLE_EQ(storm_intensity_at(p, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(storm_intensity_at(p, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(storm_intensity_at(p, 1.0), 0.5);   // mid-onset
  EXPECT_DOUBLE_EQ(storm_intensity_at(p, 2.0), 1.0);   // onset done
  EXPECT_DOUBLE_EQ(storm_intensity_at(p, 7.0), 1.0);   // main phase
  EXPECT_DOUBLE_EQ(storm_intensity_at(p, 12.0), 1.0);  // main phase end
  EXPECT_NEAR(storm_intensity_at(p, 12.0 + 18.0), std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(storm_intensity_at(p, 100.0), 0.0);  // past the end
}

TEST(StormIntensity, RejectsBadProfile) {
  StormPhaseProfile bad;
  bad.recovery_tau_hours = 0.0;
  EXPECT_THROW(storm_intensity_at(bad, 1.0), std::invalid_argument);
  bad = StormPhaseProfile{};
  bad.total_hours = -1.0;
  EXPECT_THROW(storm_dose_hours(bad, 1.0), std::invalid_argument);
}

TEST(StormDose, MatchesClosedForms) {
  const StormPhaseProfile p;
  EXPECT_DOUBLE_EQ(storm_dose_hours(p, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(storm_dose_hours(p, 2.0), 1.0);  // triangle: 0.5*2*1
  EXPECT_DOUBLE_EQ(storm_dose_hours(p, 12.0), 11.0);  // + 10h plateau
  // Recovery adds tau*(1-e^{-t/tau}).
  EXPECT_NEAR(storm_dose_hours(p, 30.0), 11.0 + 18.0 * (1.0 - std::exp(-1.0)),
              1e-9);
}

TEST(StormDose, MonotoneAndSaturating) {
  const StormPhaseProfile p;
  double prev = -1.0;
  for (double h = 0.0; h <= 80.0; h += 4.0) {
    const double d = storm_dose_hours(p, h);
    EXPECT_GE(d, prev);
    prev = d;
  }
  EXPECT_DOUBLE_EQ(storm_dose_hours(p, 72.0), storm_dose_hours(p, 500.0));
}

TEST(DamageFraction, ZeroToOne) {
  const StormPhaseProfile p;
  EXPECT_DOUBLE_EQ(damage_fraction_by(p, 0.0), 0.0);
  EXPECT_NEAR(damage_fraction_by(p, p.total_hours), 1.0, 1e-12);
  // Most damage lands in the onset+main window: by hour 12, the dose is
  // 11 of ~28.2 peak-equivalent hours.
  EXPECT_NEAR(damage_fraction_by(p, 12.0), 11.0 / storm_dose_hours(p, 72.0),
              1e-12);
}

class TimelineSimTest : public ::testing::Test {
 protected:
  TimelineSimTest() : net_("tl") {
    const auto a = net_.add_node(
        {"A", {55.0, 0.0}, "", topo::NodeKind::kLandingPoint, true});
    const auto b = net_.add_node(
        {"B", {55.0, 20.0}, "", topo::NodeKind::kLandingPoint, true});
    const auto c = net_.add_node(
        {"C", {10.0, 0.0}, "", topo::NodeKind::kLandingPoint, true});
    const auto d = net_.add_node(
        {"D", {10.0, 20.0}, "", topo::NodeKind::kLandingPoint, true});
    topo::Cable hi;
    hi.name = "hi";
    hi.segments = {{a, b, 2000.0}};
    net_.add_cable(std::move(hi));
    topo::Cable lo;
    lo.name = "lo";
    lo.segments = {{c, d, 2000.0}};
    net_.add_cable(std::move(lo));
  }
  topo::InfrastructureNetwork net_;
};

TEST_F(TimelineSimTest, SeriesEndsAtAnalyticExpectation) {
  const sim::FailureSimulator simulator(net_, {});
  const auto s1 = LatitudeBandFailureModel::s1();
  const StormPhaseProfile profile;
  const auto series = failure_time_series(simulator, s1, profile, 2.0);
  ASSERT_GE(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.front().expected_cables_failed, 0.0);
  double analytic = 0.0;
  for (topo::CableId c = 0; c < net_.cable_count(); ++c) {
    analytic += simulator.cable_death_probability(c, s1);
  }
  EXPECT_NEAR(series.back().expected_cables_failed, analytic, 1e-9);
  EXPECT_NEAR(series.back().fraction_of_final, 1.0, 1e-9);
}

TEST_F(TimelineSimTest, SeriesIsMonotone) {
  const sim::FailureSimulator simulator(net_, {});
  const UniformFailureModel m(0.05);
  const auto series =
      failure_time_series(simulator, m, StormPhaseProfile{}, 1.0);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].expected_cables_failed,
              series[i - 1].expected_cables_failed);
  }
}

TEST_F(TimelineSimTest, MostDamageInMainPhase) {
  const sim::FailureSimulator simulator(net_, {});
  const UniformFailureModel m(0.05);
  const StormPhaseProfile profile;
  const auto series = failure_time_series(simulator, m, profile, 1.0);
  // By the end of the main phase (hour 12 of 72), well over a third of the
  // final expected damage has landed.
  double at12 = 0.0;
  for (const auto& pt : series) {
    if (pt.hours == 12.0) at12 = pt.fraction_of_final;
  }
  EXPECT_GT(at12, 0.35);
}

TEST_F(TimelineSimTest, StepValidation) {
  const sim::FailureSimulator simulator(net_, {});
  const UniformFailureModel m(0.05);
  EXPECT_THROW(failure_time_series(simulator, m, StormPhaseProfile{}, 0.0),
               std::invalid_argument);
}

TEST(KpDose, ShareIsNormalizedAndMonotone) {
  // The Gannon-storm shape: quiet lead-in, G5 peak, slow decay.
  const std::vector<double> hours = {0.0, 3.0, 6.0, 9.0, 12.0, 15.0};
  const std::vector<double> kp = {4.33, 8.0, 9.0, 8.0, 6.33, 4.0};
  const std::vector<double> share = dose_share_from_kp(hours, kp);
  ASSERT_EQ(share.size(), hours.size());
  EXPECT_EQ(share.front(), 0.0);  // first interval starts the integral
  EXPECT_EQ(share.back(), 1.0);   // exactly — TimelineConfig requires it
  for (std::size_t i = 1; i < share.size(); ++i) {
    EXPECT_GE(share[i], share[i - 1]);
    EXPECT_GE(share[i], 0.0);
    EXPECT_LE(share[i], 1.0);
  }
  // Most of the dose lands around the Kp 9 peak, not the quiet tail.
  EXPECT_GT(share[3], 0.75);
}

TEST(KpDose, QuietSamplesContributeNothing) {
  // Kp at or below quiet_kp has zero intensity: the share is flat across
  // the quiet prefix and only rises once the storm threshold is crossed.
  const std::vector<double> hours = {0.0, 3.0, 6.0, 9.0};
  const std::vector<double> kp = {2.0, 4.0, 9.0, 2.0};
  const std::vector<double> share = dose_share_from_kp(hours, kp);
  EXPECT_EQ(share[0], 0.0);
  EXPECT_EQ(share[1], 0.0);  // both endpoints of [0,3] are quiet
  EXPECT_GT(share[2], 0.0);
}

TEST(KpDose, RejectsBadInputs) {
  const std::vector<double> hours = {0.0, 3.0, 6.0};
  const std::vector<double> kp = {5.0, 9.0, 5.0};

  const auto expect_error = [](auto&& fn, util::ErrorCode code,
                               const std::string& field) {
    try {
      fn();
      ADD_FAILURE() << "expected util::Error, field " << field;
    } catch (const util::Error& e) {
      EXPECT_EQ(e.code(), code);
      EXPECT_EQ(e.context().field, field);
    }
  };

  KpDoseParams bad_quiet;
  bad_quiet.quiet_kp = 9.0;
  expect_error([&] { dose_share_from_kp(hours, kp, bad_quiet); },
               util::ErrorCode::kInvalidArgument, "quiet_kp");
  bad_quiet.quiet_kp = -1.0;
  expect_error([&] { dose_share_from_kp(hours, kp, bad_quiet); },
               util::ErrorCode::kInvalidArgument, "quiet_kp");

  KpDoseParams bad_exponent;
  bad_exponent.exponent = 0.0;
  expect_error([&] { dose_share_from_kp(hours, kp, bad_exponent); },
               util::ErrorCode::kInvalidArgument, "exponent");

  const std::vector<double> short_kp = {5.0, 9.0};
  EXPECT_THROW(dose_share_from_kp(hours, short_kp, {}), util::Error);

  const std::vector<double> one_hour = {0.0};
  const std::vector<double> one_kp = {9.0};
  EXPECT_THROW(dose_share_from_kp(one_hour, one_kp, {}), util::Error);

  const std::vector<double> backwards = {0.0, 3.0, 2.0};
  expect_error([&] { dose_share_from_kp(backwards, kp, {}); },
               util::ErrorCode::kInvalidData, "hours");

  const std::vector<double> out_of_range = {5.0, 9.5, 5.0};
  expect_error([&] { dose_share_from_kp(hours, out_of_range, {}); },
               util::ErrorCode::kInvalidData, "kp");

  // All-quiet series: nothing to normalize against.
  const std::vector<double> calm = {1.0, 2.0, 1.0};
  expect_error([&] { dose_share_from_kp(hours, calm, {}); },
               util::ErrorCode::kInvalidData, "kp");
}

}  // namespace
}  // namespace solarnet::gic
