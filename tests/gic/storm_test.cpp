#include "gic/storm.h"

#include <gtest/gtest.h>

namespace solarnet::gic {
namespace {

TEST(StormPresets, RelativeStrengthsMatchHistory) {
  const StormScenario carrington = carrington_1859();
  const StormScenario railroad = ny_railroad_1921();
  const StormScenario quebec = quebec_1989();
  const StormScenario moderate = moderate_storm();

  // 1989 was roughly one-tenth of the 1921 storm (§4.3.4 / §2.2).
  EXPECT_NEAR(quebec.peak_field_v_per_km / railroad.peak_field_v_per_km, 0.1,
              0.05);
  // Carrington and 1921 are comparable, both far above 1989.
  EXPECT_GT(carrington.peak_field_v_per_km,
            5.0 * quebec.peak_field_v_per_km);
  EXPECT_GT(quebec.peak_field_v_per_km, moderate.peak_field_v_per_km);
}

TEST(StormPresets, CarringtonReachesLowLatitudes) {
  // §3.1: Carrington-strength fields extended as low as 20 deg; the 1989
  // event dropped an order of magnitude below 40 deg.
  EXPECT_NEAR(carrington_1859().boundary_deg, 20.0, 1.0);
  EXPECT_GE(quebec_1989().boundary_deg, 40.0);
}

TEST(StormPresets, NamesAreSet) {
  EXPECT_FALSE(carrington_1859().name.empty());
  EXPECT_NE(carrington_1859().name, quebec_1989().name);
}

TEST(StormScaled, ScalesFieldOnly) {
  const StormScenario base = quebec_1989();
  const StormScenario twice = base.scaled(2.0);
  EXPECT_DOUBLE_EQ(twice.peak_field_v_per_km, 2.0 * base.peak_field_v_per_km);
  EXPECT_DOUBLE_EQ(twice.boundary_deg, base.boundary_deg);
  EXPECT_NE(twice.name, base.name);
}

TEST(StormPresets, FloorsAreSmallFractions) {
  for (const StormScenario& s :
       {carrington_1859(), ny_railroad_1921(), quebec_1989(),
        moderate_storm()}) {
    EXPECT_GE(s.equatorial_floor, 0.0);
    EXPECT_LT(s.equatorial_floor, 0.1);
    EXPECT_GT(s.falloff_width_deg, 0.0);
  }
}

}  // namespace
}  // namespace solarnet::gic
