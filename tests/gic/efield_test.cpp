#include "gic/efield.h"

#include <gtest/gtest.h>

namespace solarnet::gic {
namespace {

TEST(LatitudeFactor, MonotoneInAbsLatitude) {
  const GeoelectricFieldModel model(carrington_1859());
  double prev = 0.0;
  for (double lat = 0.0; lat <= 90.0; lat += 5.0) {
    const double f = model.latitude_factor(lat);
    EXPECT_GE(f, prev - 1e-12);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST(LatitudeFactor, SymmetricAcrossEquator) {
  const GeoelectricFieldModel model(ny_railroad_1921());
  for (double lat : {10.0, 35.0, 55.0, 70.0}) {
    EXPECT_DOUBLE_EQ(model.latitude_factor(lat),
                     model.latitude_factor(-lat));
  }
}

TEST(LatitudeFactor, HalfAtBoundary) {
  const StormScenario storm = quebec_1989();
  const GeoelectricFieldModel model(storm);
  const double at_boundary = model.latitude_factor(storm.boundary_deg);
  const double expected =
      storm.equatorial_floor + (1.0 - storm.equatorial_floor) * 0.5;
  EXPECT_NEAR(at_boundary, expected, 1e-9);
}

TEST(LatitudeFactor, EquatorNearFloor) {
  const StormScenario storm = carrington_1859();
  const GeoelectricFieldModel model(storm);
  // Small but non-zero equatorial GIC (the ramp tail adds a little to the
  // floor because Carrington's boundary sits at only 20 deg).
  EXPECT_GT(model.latitude_factor(0.0), 0.0);
  EXPECT_LT(model.latitude_factor(0.0), 0.15);
  // A high-boundary storm's equator sits essentially at the floor.
  const StormScenario far = moderate_storm();
  const GeoelectricFieldModel far_model(far);
  EXPECT_NEAR(far_model.latitude_factor(0.0), far.equatorial_floor, 1e-4);
}

TEST(Field, ScalesWithPeak) {
  const GeoelectricFieldModel weak(quebec_1989());
  const GeoelectricFieldModel strong(carrington_1859());
  const geo::GeoPoint oslo{59.9, 10.7};
  EXPECT_GT(strong.field_v_per_km_land(oslo), weak.field_v_per_km_land(oslo));
}

TEST(Field, OceanBoostApplied) {
  const GeoelectricFieldModel model(carrington_1859());
  const geo::GeoPoint mid_atlantic{45.0, -35.0};  // open ocean
  const geo::GeoPoint germany{50.5, 9.0};         // land
  const double ocean = model.field_v_per_km(mid_atlantic);
  const double ocean_land_only = model.field_v_per_km_land(mid_atlantic);
  EXPECT_NEAR(ocean / ocean_land_only, 1.8, 1e-9);
  EXPECT_NEAR(model.field_v_per_km(germany),
              model.field_v_per_km_land(germany), 1e-12);
}

TEST(Field, OceanBoostConfigurable) {
  FieldModelParams params;
  params.ocean_boost = 3.0;
  const GeoelectricFieldModel model(carrington_1859(), params);
  const geo::GeoPoint ocean{45.0, -35.0};
  EXPECT_NEAR(model.field_v_per_km(ocean) / model.field_v_per_km_land(ocean),
              3.0, 1e-9);
}

TEST(Field, OceanClassificationCanBeDisabled) {
  FieldModelParams params;
  params.classify_ocean_by_country_box = false;
  const GeoelectricFieldModel model(carrington_1859(), params);
  const geo::GeoPoint ocean{45.0, -35.0};
  EXPECT_NEAR(model.field_v_per_km(ocean), model.field_v_per_km_land(ocean),
              1e-12);
}

TEST(Field, HighLatitudeApproachesPeak) {
  const StormScenario storm = carrington_1859();
  const GeoelectricFieldModel model(storm);
  EXPECT_NEAR(model.field_v_per_km_land({75.0, 20.0}),
              storm.peak_field_v_per_km, 0.05 * storm.peak_field_v_per_km);
}

TEST(Field, StormAccessor) {
  const GeoelectricFieldModel model(quebec_1989());
  EXPECT_EQ(model.storm().name, quebec_1989().name);
}

}  // namespace
}  // namespace solarnet::gic
