// Property-based sweeps (TEST_P) over the simulation engine and the graph
// substrate: invariants that must hold for every (spacing, model,
// probability, seed) combination, and randomized cross-checks between
// independent implementations (union-find components vs BFS reachability,
// Dijkstra vs BFS on unit weights, analytic death probability vs sampled
// frequency).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/country.h"
#include "topology/repeater.h"
#include "datasets/submarine.h"
#include "graph/components.h"
#include "graph/cut.h"
#include "graph/traversal.h"
#include "sim/monte_carlo.h"
#include "util/rng.h"

namespace solarnet {
namespace {

// ---------------------------------------------------------------------------
// Engine invariants across (spacing x probability).
// ---------------------------------------------------------------------------
struct SweepCase {
  double spacing_km;
  double probability;
};

class EngineInvariantTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  static const topo::InfrastructureNetwork& net() {
    static const auto n = [] {
      datasets::SubmarineConfig cfg;
      cfg.total_cables = 150;
      cfg.target_landing_points = 380;
      cfg.cables_without_length = 5;
      return datasets::make_submarine_network(cfg);
    }();
    return n;
  }
};

TEST_P(EngineInvariantTest, TrialOutputsAreConsistent) {
  const auto [spacing, p] = GetParam();
  sim::TrialConfig cfg;
  cfg.repeater_spacing_km = spacing;
  const sim::FailureSimulator simulator(net(), cfg);
  const gic::UniformFailureModel model(p);
  util::Rng rng(static_cast<std::uint64_t>(spacing * 1000 + p * 1e6));
  const sim::TrialResult r = simulator.run_trial(model, rng);

  // Counts match flags.
  std::size_t dead = 0;
  for (bool d : r.cable_dead) dead += d ? 1 : 0;
  EXPECT_EQ(dead, r.cables_failed);
  // Percentages in range and consistent with counts.
  EXPECT_GE(r.cables_failed_pct, 0.0);
  EXPECT_LE(r.cables_failed_pct, 100.0);
  EXPECT_GE(r.nodes_unreachable_pct, 0.0);
  EXPECT_LE(r.nodes_unreachable_pct, 100.0);
  // Unreachable nodes recomputed from the network agree.
  EXPECT_EQ(net().unreachable_nodes(r.cable_dead).size(),
            r.nodes_unreachable);
  // Repeaterless cables never die.
  for (topo::CableId c = 0; c < net().cable_count(); ++c) {
    if (topo::cable_repeater_count(net().cable(c), spacing) == 0) {
      EXPECT_FALSE(r.cable_dead[c]);
    }
  }
}

TEST_P(EngineInvariantTest, DeathProbabilityBounds) {
  const auto [spacing, p] = GetParam();
  sim::TrialConfig cfg;
  cfg.repeater_spacing_km = spacing;
  const sim::FailureSimulator simulator(net(), cfg);
  const gic::UniformFailureModel model(p);
  for (topo::CableId c = 0; c < net().cable_count(); ++c) {
    const double death = simulator.cable_death_probability(c, model);
    EXPECT_GE(death, 0.0);
    EXPECT_LE(death, 1.0);
    const std::size_t reps =
        topo::cable_repeater_count(net().cable(c), spacing);
    if (reps == 0) {
      EXPECT_DOUBLE_EQ(death, 0.0);
    } else {
      // Union bound from above, single-repeater bound from below.
      EXPECT_LE(death, std::min(1.0, static_cast<double>(reps) * p) + 1e-12);
      if (p > 0.0) {
        EXPECT_GE(death, p - 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SpacingXProbability, EngineInvariantTest,
    ::testing::Values(SweepCase{50.0, 0.001}, SweepCase{50.0, 0.05},
                      SweepCase{50.0, 0.5}, SweepCase{100.0, 0.01},
                      SweepCase{100.0, 0.2}, SweepCase{150.0, 0.001},
                      SweepCase{150.0, 0.05}, SweepCase{150.0, 1.0}));

// ---------------------------------------------------------------------------
// Monotonicity in probability for fixed seeds (coupling argument: higher p
// can only raise the per-cable death probability, so mean failure rates
// over many trials must be non-decreasing within noise).
// ---------------------------------------------------------------------------
class MonotonicityTest : public ::testing::TestWithParam<double> {};

TEST_P(MonotonicityTest, MeanFailuresIncreaseWithProbability) {
  const double spacing = GetParam();
  datasets::SubmarineConfig cfg;
  cfg.total_cables = 120;
  cfg.target_landing_points = 300;
  cfg.cables_without_length = 0;
  const auto net = datasets::make_submarine_network(cfg);
  sim::TrialConfig trial_cfg;
  trial_cfg.repeater_spacing_km = spacing;
  const sim::FailureSimulator simulator(net, trial_cfg);
  double prev = -1.0;
  for (double p : {0.001, 0.01, 0.1, 1.0}) {
    const gic::UniformFailureModel model(p);
    const auto agg = simulator.run_trials(model, 40, 9);
    EXPECT_GE(agg.cables_failed_pct.mean(), prev - 1.5) << "p=" << p;
    prev = agg.cables_failed_pct.mean();
  }
}

INSTANTIATE_TEST_SUITE_P(Spacings, MonotonicityTest,
                         ::testing::Values(50.0, 100.0, 150.0));

// ---------------------------------------------------------------------------
// Analytic death probability matches sampled frequency (the product
// shortcut vs the Bernoulli draw) for a band model.
// ---------------------------------------------------------------------------
TEST(AnalyticVsSampled, BandModelFrequencies) {
  datasets::SubmarineConfig cfg;
  cfg.total_cables = 60;
  cfg.target_landing_points = 150;
  cfg.cables_without_length = 0;
  const auto net = datasets::make_submarine_network(cfg);
  const sim::FailureSimulator simulator(net, {});
  const auto s2 = gic::LatitudeBandFailureModel::s2();

  util::Rng rng(12345);
  constexpr int kTrials = 4000;
  std::vector<int> deaths(net.cable_count(), 0);
  for (int t = 0; t < kTrials; ++t) {
    const auto dead = simulator.sample_cable_failures(s2, rng);
    for (topo::CableId c = 0; c < net.cable_count(); ++c) {
      deaths[c] += dead[c] ? 1 : 0;
    }
  }
  for (topo::CableId c = 0; c < net.cable_count(); ++c) {
    const double analytic = simulator.cable_death_probability(c, s2);
    const double sampled =
        static_cast<double>(deaths[c]) / static_cast<double>(kTrials);
    // 4000 trials: ~4-sigma tolerance.
    const double sigma = std::sqrt(analytic * (1.0 - analytic) / kTrials);
    EXPECT_NEAR(sampled, analytic, 4.0 * sigma + 0.005)
        << net.cable(c).name;
  }
}

// ---------------------------------------------------------------------------
// Randomized graph cross-checks.
// ---------------------------------------------------------------------------
graph::Graph random_graph(util::Rng& rng, std::size_t vertices,
                          std::size_t edges) {
  graph::Graph g(vertices);
  for (std::size_t e = 0; e < edges; ++e) {
    const auto u = static_cast<graph::VertexId>(rng.uniform_below(vertices));
    const auto v = static_cast<graph::VertexId>(rng.uniform_below(vertices));
    g.add_edge(u, v, 1.0);
  }
  return g;
}

class RandomGraphTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphTest, ComponentsAgreeWithReachability) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto g = random_graph(rng, 60, 70);
  const auto mask = graph::AliveMask::all_alive(g);
  const auto cc = graph::connected_components(g, mask);
  for (graph::VertexId src : {0u, 7u, 31u}) {
    const auto reach = graph::reachable_from(g, mask, src);
    for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
      EXPECT_EQ(reach[v], cc.same_component(src, v))
          << "src=" << src << " v=" << v;
    }
  }
}

TEST_P(RandomGraphTest, DijkstraMatchesBfsOnUnitWeights) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const auto g = random_graph(rng, 50, 90);
  const auto mask = graph::AliveMask::all_alive(g);
  const auto sp = graph::dijkstra(g, mask, 0);
  const auto hops = graph::bfs_hops(g, mask, 0);
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
    if (hops[v] == graph::kUnreachableHops) {
      EXPECT_EQ(sp.distance[v], graph::kUnreachable);
    } else {
      EXPECT_DOUBLE_EQ(sp.distance[v], static_cast<double>(hops[v]));
    }
  }
}

TEST_P(RandomGraphTest, RemovingBridgeSplitsComponent) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const auto g = random_graph(rng, 40, 45);
  const auto mask = graph::AliveMask::all_alive(g);
  const auto cuts = graph::find_cuts(g, mask);
  const auto before = graph::connected_components(g, mask);
  for (graph::EdgeId bridge : cuts.bridges) {
    auto masked = mask;
    masked.edge_alive.reset(bridge);
    const auto after = graph::connected_components(g, masked);
    EXPECT_EQ(after.component_count(), before.component_count() + 1)
        << "bridge " << bridge;
  }
  // And removing a non-bridge must NOT split.
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    if (std::find(cuts.bridges.begin(), cuts.bridges.end(), e) !=
        cuts.bridges.end()) {
      continue;
    }
    auto masked = mask;
    masked.edge_alive.reset(e);
    const auto after = graph::connected_components(g, masked);
    EXPECT_EQ(after.component_count(), before.component_count())
        << "edge " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 21, 34, 55));

// ---------------------------------------------------------------------------
// Corridor probability consistency: the analytic all-fail probability of a
// corridor equals the sampled frequency of "every corridor cable dead".
// ---------------------------------------------------------------------------
TEST(AnalyticVsSampled, CorridorAllFailFrequency) {
  datasets::SubmarineConfig cfg;
  cfg.total_cables = 120;
  cfg.target_landing_points = 300;
  cfg.cables_without_length = 0;
  const auto net = datasets::make_submarine_network(cfg);
  const sim::FailureSimulator simulator(net, {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const auto corridor = analysis::corridor_cables(
      net, {"US", "CA"}, {"GB", "IE", "FR", "NL", "DE", "DK", "NO"});
  ASSERT_GE(corridor.size(), 2u);
  const double analytic =
      analysis::all_fail_probability(simulator, s1, corridor);

  util::Rng rng(777);
  constexpr int kTrials = 3000;
  int all_dead = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto dead = simulator.sample_cable_failures(s1, rng);
    bool all = true;
    for (topo::CableId c : corridor) {
      if (!dead[c]) {
        all = false;
        break;
      }
    }
    all_dead += all ? 1 : 0;
  }
  const double sampled =
      static_cast<double>(all_dead) / static_cast<double>(kTrials);
  const double sigma = std::sqrt(analytic * (1.0 - analytic) / kTrials);
  EXPECT_NEAR(sampled, analytic, 4.0 * sigma + 0.01);
}

// ---------------------------------------------------------------------------
// Generator calibration is seed-robust: key statistics hold across seeds.
// ---------------------------------------------------------------------------
class SeedRobustnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedRobustnessTest, SubmarineCalibrationHolds) {
  datasets::SubmarineConfig cfg;
  cfg.seed = GetParam();
  const auto net = datasets::make_submarine_network(cfg);
  EXPECT_EQ(net.cable_count(), 470u);
  auto lengths = net.cable_lengths();
  std::sort(lengths.begin(), lengths.end());
  EXPECT_NEAR(util::quantile(lengths, 0.5), 775.0, 400.0);
  EXPECT_NEAR(lengths.back(), 39000.0, 500.0);
  std::size_t above = 0;
  const auto lats = net.node_latitudes();
  for (double lat : lats) {
    if (std::abs(lat) > 40.0) ++above;
  }
  const double frac =
      static_cast<double>(above) / static_cast<double>(lats.size());
  EXPECT_GT(frac, 0.22);
  EXPECT_LT(frac, 0.40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustnessTest,
                         ::testing::Values(1859u, 7u, 42u, 1921u, 2024u));

}  // namespace
}  // namespace solarnet
