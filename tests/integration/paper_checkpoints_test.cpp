// Quantitative checkpoints from the paper's evaluation (§4), asserted on
// the default (full-size) generated world. Tolerances are deliberately
// generous — our datasets are calibrated substitutes, not the originals —
// but every *ordering* claim is asserted strictly.
#include <gtest/gtest.h>

#include "analysis/connectivity.h"
#include "analysis/country.h"
#include "analysis/distribution.h"
#include "analysis/lengths.h"
#include "datasets/land.h"
#include "datasets/population.h"
#include "datasets/submarine.h"
#include "sim/monte_carlo.h"

namespace solarnet {
namespace {

const topo::InfrastructureNetwork& submarine() {
  static const auto net = datasets::make_submarine_network({});
  return net;
}
const topo::InfrastructureNetwork& intertubes() {
  static const auto net = datasets::make_intertubes_network({});
  return net;
}
const topo::InfrastructureNetwork& itu() {
  static const auto net = datasets::make_itu_network({});
  return net;
}

sim::FailureSimulator make_sim(const topo::InfrastructureNetwork& net,
                               double spacing) {
  sim::TrialConfig cfg;
  cfg.repeater_spacing_km = spacing;
  return sim::FailureSimulator(net, cfg);
}

// §4.3.1: average repeaters per cable at 150 km — 22.3 submarine,
// 1.7 Intertubes, 0.63 ITU.
TEST(PaperCheckpoints, AverageRepeatersPerCable) {
  EXPECT_NEAR(make_sim(submarine(), 150.0).average_repeaters_per_cable(),
              22.3, 6.0);
  EXPECT_NEAR(make_sim(intertubes(), 150.0).average_repeaters_per_cable(),
              1.7, 0.6);
  EXPECT_NEAR(make_sim(itu(), 150.0).average_repeaters_per_cable(), 0.63,
              0.2);
}

// §4.3.2 headline: at p=0.01, spacing 150 km — 14.9% submarine cables fail
// and 11.7% endpoints unreachable, vs 1.7%/0.07% (Intertubes) and
// 0.6%/0.1% (ITU).
TEST(PaperCheckpoints, UniformFailureHeadlineNumbers) {
  const gic::UniformFailureModel m(0.01);
  const auto sub = make_sim(submarine(), 150.0).run_trials(m, 10, 42);
  const auto land = make_sim(intertubes(), 150.0).run_trials(m, 10, 42);
  const auto itu_r = make_sim(itu(), 150.0).run_trials(m, 10, 42);

  EXPECT_NEAR(sub.cables_failed_pct.mean(), 14.9, 6.0);
  EXPECT_NEAR(sub.nodes_unreachable_pct.mean(), 11.7, 6.0);
  EXPECT_NEAR(land.cables_failed_pct.mean(), 1.7, 1.5);
  EXPECT_LT(land.nodes_unreachable_pct.mean(), 2.0);
  EXPECT_NEAR(itu_r.cables_failed_pct.mean(), 0.6, 0.6);
  EXPECT_LT(itu_r.nodes_unreachable_pct.mean(), 1.0);

  // Strict ordering: submarine >> US land >= ITU.
  EXPECT_GT(sub.cables_failed_pct.mean(),
            3.0 * land.cables_failed_pct.mean());
  EXPECT_GT(land.cables_failed_pct.mean(), itu_r.cables_failed_pct.mean());
}

// §4.3.2 catastrophic end: at p=1, ~80% submarine cables affected vs 52%
// cables / 17% nodes on the US land network.
TEST(PaperCheckpoints, CatastrophicUniformFailure) {
  const gic::UniformFailureModel m(1.0);
  const auto sub = make_sim(submarine(), 150.0).run_trials(m, 5, 7);
  const auto land = make_sim(intertubes(), 150.0).run_trials(m, 5, 7);
  EXPECT_NEAR(sub.cables_failed_pct.mean(), 80.0, 12.0);
  EXPECT_NEAR(land.cables_failed_pct.mean(), 52.0, 12.0);
  EXPECT_GT(sub.cables_failed_pct.mean(), land.cables_failed_pct.mean());
  EXPECT_LT(land.nodes_unreachable_pct.mean(), 40.0);
}

// §4.3.3 / Figure 8: S1 kills ~43% of submarine cables; S2 leaves ~10% of
// submarine cables/nodes vulnerable; Intertubes stays near zero under S2.
TEST(PaperCheckpoints, NonUniformStates) {
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const auto s2 = gic::LatitudeBandFailureModel::s2();
  const auto sub_s1 = make_sim(submarine(), 150.0).run_trials(s1, 10, 3);
  const auto sub_s2 = make_sim(submarine(), 150.0).run_trials(s2, 10, 3);
  const auto land_s2 = make_sim(intertubes(), 150.0).run_trials(s2, 10, 3);

  EXPECT_NEAR(sub_s1.cables_failed_pct.mean(), 43.0, 15.0);
  EXPECT_NEAR(sub_s2.cables_failed_pct.mean(), 10.0, 7.0);
  EXPECT_LT(land_s2.cables_failed_pct.mean(), 3.0);
  // Order-of-magnitude gap between submarine and land (paper's phrasing).
  EXPECT_GT(sub_s2.cables_failed_pct.mean(),
            3.0 * land_s2.cables_failed_pct.mean());
}

// Figure 6/7 shape: failures increase monotonically with probability and
// with tighter repeater spacing.
TEST(PaperCheckpoints, SweepShape) {
  const std::vector<double> probs = {0.001, 0.01, 0.1, 1.0};
  const auto sim150 = make_sim(submarine(), 150.0);
  const auto sweep = analysis::uniform_failure_sweep(sim150, probs, 5, 11);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].cables_failed_mean_pct,
              sweep[i - 1].cables_failed_mean_pct - 2.0);
  }
  const auto sim50 = make_sim(submarine(), 50.0);
  const std::vector<double> one_prob = {probs[1]};
  const auto sweep50 = analysis::uniform_failure_sweep(sim50, one_prob, 5, 11);
  EXPECT_GE(sweep50[0].cables_failed_mean_pct,
            sweep[1].cables_failed_mean_pct - 2.0);
}

// §4.2.2: infrastructure skew — 31% submarine endpoints above 40 vs 16% of
// population; one-hop closure adds roughly another 14 points.
TEST(PaperCheckpoints, InfrastructureSkew) {
  const auto lats = submarine().node_latitudes();
  std::size_t above = 0;
  for (double lat : lats) {
    if (std::abs(lat) > 40.0) ++above;
  }
  const double endpoint_frac =
      static_cast<double>(above) / static_cast<double>(lats.size());
  datasets::PopulationConfig pop_cfg;
  pop_cfg.cell_deg = 5.0;
  const auto population = datasets::make_population_grid(pop_cfg);
  const double pop_frac = population.fraction_above_abs_latitude(40.0);
  EXPECT_GT(endpoint_frac, 1.5 * pop_frac);  // the skew itself
  EXPECT_NEAR(endpoint_frac, 0.31, 0.07);
  EXPECT_NEAR(pop_frac, 0.16, 0.03);
}

// §4.3.4, US East coast: the transatlantic corridor (US/CA <-> northern
// Europe) dies with high probability under S1 and remains at risk under S2,
// while the Brazil <-> Europe corridor survives far more often.
TEST(PaperCheckpoints, CorridorOrdering) {
  const auto simulator = make_sim(submarine(), 150.0);
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const auto s2 = gic::LatitudeBandFailureModel::s2();
  // The paper's "North East (and Canada) to Europe" corridor: the northern
  // transatlantic systems (excluding the single Florida-Iberia route).
  const std::vector<std::string> north_europe = {"GB", "IE", "FR", "NL", "BE",
                                                 "DE", "DK", "NO"};
  const auto us_ne_eu = analysis::corridor_cables(submarine(), {"US", "CA"},
                                                  north_europe);
  ASSERT_GE(us_ne_eu.size(), 8u);  // a dense corridor
  const auto us_eu_all = analysis::corridor_cables(
      submarine(), {"US", "CA"}, {"GB", "IE", "FR", "NL", "BE", "DE", "DK",
                                  "NO", "ES", "PT"});
  const auto br_eu = analysis::corridor_cables(submarine(), {"BR"},
                                               {"PT", "ES", "FR"});
  ASSERT_GE(br_eu.size(), 1u);

  const double us_ne_s1 =
      analysis::all_fail_probability(simulator, s1, us_ne_eu);
  const double us_all_s1 =
      analysis::all_fail_probability(simulator, s1, us_eu_all);
  const double br_eu_s1 =
      analysis::all_fail_probability(simulator, s1, br_eu);
  EXPECT_GT(us_ne_s1, 0.5);       // the NE corridor dies w.h.p. under S1
  EXPECT_GT(us_all_s1, 0.2);      // even counting the Iberia route
  EXPECT_LT(br_eu_s1, us_ne_s1);  // Brazil keeps Europe more often
  const double us_ne_s2 =
      analysis::all_fail_probability(simulator, s2, us_ne_eu);
  EXPECT_LT(us_ne_s2, us_ne_s1);  // S2 strictly milder
}

// §4.3.4: Singapore retains many cables even under S1 (expected surviving
// international cables well above 1); Shanghai loses everything.
TEST(PaperCheckpoints, SingaporeHubVsShanghai) {
  const auto simulator = make_sim(submarine(), 150.0);
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const auto sg = analysis::cables_at_named_node(submarine(), "Singapore");
  ASSERT_GE(sg.size(), 4u);
  EXPECT_GT(analysis::expected_survivors(simulator, s1, sg), 1.0);

  const auto shanghai =
      analysis::cables_at_named_node(submarine(), "Shanghai");
  ASSERT_GE(shanghai.size(), 1u);
  EXPECT_GT(analysis::all_fail_probability(simulator, s1, shanghai), 0.95);
}

// §4.3.4: Mumbai and Chennai keep some connectivity even under S1.
TEST(PaperCheckpoints, IndianCitiesResilient) {
  const auto simulator = make_sim(submarine(), 150.0);
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  for (const char* cityname : {"Mumbai", "Chennai"}) {
    const auto cables = analysis::cables_at_named_node(submarine(), cityname);
    ASSERT_GE(cables.size(), 1u) << cityname;
    EXPECT_LT(analysis::all_fail_probability(simulator, s1, cables), 0.9)
        << cityname;
  }
}

// §4.3.4: Alaska keeps only its British Columbia link under S1 — the
// Juneau-Prince Rupert cable survives far more often than AKORN.
TEST(PaperCheckpoints, AlaskaKeepsBritishColumbiaLink) {
  const auto simulator = make_sim(submarine(), 150.0);
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const auto all = submarine();
  topo::CableId akorn = topo::kInvalidCable;
  topo::CableId bc = topo::kInvalidCable;
  for (topo::CableId c = 0; c < all.cable_count(); ++c) {
    if (all.cable(c).name == "AKORN") akorn = c;
    if (all.cable(c).name == "Juneau-Prince Rupert") bc = c;
  }
  ASSERT_NE(akorn, topo::kInvalidCable);
  ASSERT_NE(bc, topo::kInvalidCable);
  EXPECT_GT(simulator.cable_death_probability(akorn, s1),
            simulator.cable_death_probability(bc, s1));
}

// §4.2.2: "another 14% of submarine endpoints have a direct link to these
// nodes" — the one-hop closure at 40 deg sits roughly 14 points above the
// direct share.
TEST(PaperCheckpoints, OneHopClosureGap) {
  const double direct = analysis::one_hop_fraction_above(submarine(), 90.1);
  (void)direct;  // nothing above 90: closure of empty set is empty
  std::size_t above = 0;
  const auto lats = submarine().node_latitudes();
  for (double lat : lats) {
    if (std::abs(lat) > 40.0) ++above;
  }
  const double direct_frac =
      static_cast<double>(above) / static_cast<double>(lats.size());
  const double one_hop = analysis::one_hop_fraction_above(submarine(), 40.0);
  const double gap = one_hop - direct_frac;
  EXPECT_GT(gap, 0.05);
  EXPECT_LT(gap, 0.25);
  EXPECT_NEAR(gap, 0.14, 0.08);
}

// Figure 5: submarine lengths are an order of magnitude above land lengths.
TEST(PaperCheckpoints, LengthOrderOfMagnitude) {
  const auto sub = analysis::summarize_lengths(submarine());
  const auto land = analysis::summarize_lengths(intertubes());
  const auto itu_s = analysis::summarize_lengths(itu());
  EXPECT_GT(sub.median_km, 3.0 * land.median_km);
  EXPECT_GT(sub.median_km, 3.0 * itu_s.median_km);
  EXPECT_GT(sub.max_km, 10.0 * land.max_km);
}

}  // namespace
}  // namespace solarnet
