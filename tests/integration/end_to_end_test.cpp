// End-to-end flows across module boundaries: generate → simulate → analyze
// → plan, plus the CSV round-trip into the simulator.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "analysis/connectivity.h"
#include "analysis/country.h"
#include "analysis/distribution.h"
#include "core/partition.h"
#include "core/planner.h"
#include "core/scenario.h"
#include "core/shutdown.h"
#include "core/world.h"
#include "datasets/loaders.h"
#include "gic/induction.h"

namespace solarnet {
namespace {

core::WorldConfig small_world_config() {
  core::WorldConfig cfg;
  cfg.submarine.total_cables = 200;
  cfg.submarine.target_landing_points = 500;
  cfg.submarine.cables_without_length = 10;
  cfg.intertubes.total_links = 200;
  cfg.intertubes.target_nodes = 110;
  cfg.intertubes.short_links = 95;
  cfg.itu.total_links = 600;
  cfg.itu.target_nodes = 580;
  cfg.itu.short_links = 430;
  cfg.routers.router_count = 10000;
  cfg.routers.as_count = 800;
  cfg.population.cell_deg = 5.0;
  return cfg;
}

const core::World& small_world() {
  static const core::World w = core::World::generate(small_world_config());
  return w;
}

TEST(EndToEnd, StormScenarioThroughFacade) {
  const core::ScenarioRunner runner(small_world());
  core::ScenarioOptions opts;
  opts.trials = 5;
  const auto report = runner.run_storm(gic::carrington_1859(), opts);
  const std::string text = report.render();
  EXPECT_NE(text.find("Carrington"), std::string::npos);
  EXPECT_NE(text.find("submarine"), std::string::npos);
  EXPECT_NE(text.find("Country connectivity"), std::string::npos);
}

TEST(EndToEnd, CsvRoundTripFeedsSimulator) {
  const std::string nodes =
      (std::filesystem::temp_directory_path() / "e2e_nodes.csv").string();
  const std::string cables =
      (std::filesystem::temp_directory_path() / "e2e_cables.csv").string();
  datasets::write_network_csv(small_world().submarine(), nodes, cables);
  const auto loaded = datasets::load_network_csv("submarine", nodes, cables);
  std::remove(nodes.c_str());
  std::remove(cables.c_str());

  const sim::FailureSimulator original_sim(small_world().submarine(), {});
  const sim::FailureSimulator loaded_sim(loaded, {});
  // Lengths round-trip at micro-precision; a repeater count can only move
  // if a segment length sits exactly on a spacing multiple.
  EXPECT_NEAR(static_cast<double>(loaded_sim.total_repeaters()),
              static_cast<double>(original_sim.total_repeaters()), 2.0);
  const gic::UniformFailureModel m(0.01);
  const auto a = original_sim.run_trials(m, 10, 5);
  const auto b = loaded_sim.run_trials(m, 10, 5);
  EXPECT_NEAR(a.cables_failed_pct.mean(), b.cables_failed_pct.mean(), 1.5);
}

TEST(EndToEnd, InductionFeedsFieldDrivenSimulation) {
  const auto& net = small_world().submarine();
  const gic::GeoelectricFieldModel field(gic::carrington_1859());
  const auto inductions = gic::compute_network_induction(net, field);
  ASSERT_EQ(inductions.size(), net.cable_count());
  // At least one long high-latitude cable must see a dangerous overload.
  bool any_overload = false;
  for (const auto& i : inductions) {
    if (i.overload_factor > 10.0) any_overload = true;
  }
  EXPECT_TRUE(any_overload);

  const gic::FieldDrivenFailureModel model(field);
  const sim::FailureSimulator simulator(net, {});
  const auto agg = simulator.run_trials(model, 10, 3);
  EXPECT_GT(agg.cables_failed_pct.mean(), 0.0);
  EXPECT_LT(agg.cables_failed_pct.mean(), 100.0);
}

TEST(EndToEnd, PartitionAfterSevereStorm) {
  const auto& net = small_world().submarine();
  const sim::FailureSimulator simulator(net, {});
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  util::Rng rng(17);
  const auto dead = simulator.sample_cable_failures(s1, rng);
  const core::PartitionReport report = core::analyze_partition(net, dead);
  // A severe storm fragments the network: multiple components and/or many
  // isolated landing points.
  EXPECT_GT(report.components + report.isolated_nodes, 2u);
  EXPECT_FALSE(core::render_partition(report).empty());
}

TEST(EndToEnd, PlannerImprovesUsEuropeCorridorOnGeneratedWorld) {
  sim::TrialConfig cfg;
  const core::TopologyPlanner planner(small_world().submarine(), cfg);
  const auto s1 = gic::LatitudeBandFailureModel::s1();
  const std::vector<std::string> europe = {"GB", "FR", "PT", "ES", "IE",
                                           "NL", "BE", "DE", "DK", "NO"};
  const auto eval = planner.evaluate({"Miami", "Tenerife", 0.0}, s1, {"US"},
                                     europe);
  EXPECT_LE(eval.corridor_cutoff_after, eval.corridor_cutoff_before);
}

TEST(EndToEnd, ShutdownOnGeneratedSubmarineNetwork) {
  const auto s2 = gic::LatitudeBandFailureModel::s2();
  const auto outcome =
      core::evaluate_shutdown(small_world().submarine(), s2, {});
  EXPECT_GT(outcome.cables_shut_down, 0u);
  EXPECT_GE(outcome.expected_cables_saved(), 0.0);
}

TEST(EndToEnd, DistributionAnalysesRunOnWorld) {
  const auto thresholds = analysis::default_thresholds();
  const auto sub_lats = small_world().submarine().node_latitudes();
  const auto curve = analysis::percent_above_thresholds(sub_lats, thresholds);
  ASSERT_EQ(curve.size(), thresholds.size());
  EXPECT_DOUBLE_EQ(curve.front(), 100.0);
  const auto one_hop = analysis::one_hop_percent_above_thresholds(
      small_world().submarine(), thresholds);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    EXPECT_GE(one_hop[i] + 1e-9, curve[i]) << "one-hop closure is a superset";
  }
}

}  // namespace
}  // namespace solarnet
