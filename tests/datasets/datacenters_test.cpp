#include "datasets/datacenters.h"

#include <gtest/gtest.h>

#include <set>

namespace solarnet::datasets {
namespace {

TEST(DataCenters, BothOperatorsPresent) {
  const auto google = datacenters_of(DataCenterOperator::kGoogle);
  const auto facebook = datacenters_of(DataCenterOperator::kFacebook);
  EXPECT_GE(google.size(), 15u);
  EXPECT_GE(facebook.size(), 12u);
}

TEST(DataCenters, ValidLocations) {
  for (const DataCenter& d : hyperscale_datacenters()) {
    EXPECT_TRUE(geo::is_valid(d.location)) << d.site;
    EXPECT_FALSE(d.site.empty());
  }
}

TEST(DataCenters, GoogleCoversSouthAmericaAndAsia) {
  // §4.4.2: Google has Chile (South America) and Singapore/Taiwan (Asia).
  std::set<geo::Continent> continents;
  for (const DataCenter& d : datacenters_of(DataCenterOperator::kGoogle)) {
    continents.insert(geo::continent_at(d.location));
  }
  EXPECT_TRUE(continents.count(geo::Continent::kSouthAmerica));
  EXPECT_TRUE(continents.count(geo::Continent::kAsia));
  EXPECT_TRUE(continents.count(geo::Continent::kEurope));
  EXPECT_TRUE(continents.count(geo::Continent::kNorthAmerica));
}

TEST(DataCenters, FacebookHasNoAfricaOrSouthAmerica) {
  // §4.4.2: "Facebook does not operate any hyperscale data centers in
  // Africa or South America, unlike Google."
  for (const DataCenter& d : datacenters_of(DataCenterOperator::kFacebook)) {
    const geo::Continent c = geo::continent_at(d.location);
    EXPECT_NE(c, geo::Continent::kAfrica) << d.site;
    EXPECT_NE(c, geo::Continent::kSouthAmerica) << d.site;
  }
}

TEST(DataCenters, FacebookIsMoreNorthern) {
  auto northern_share = [](DataCenterOperator op) {
    const auto sites = datacenters_of(op);
    std::size_t above = 0;
    for (const DataCenter& d : sites) {
      if (d.location.lat_deg > 40.0) ++above;
    }
    return static_cast<double>(above) / static_cast<double>(sites.size());
  };
  EXPECT_GT(northern_share(DataCenterOperator::kFacebook),
            northern_share(DataCenterOperator::kGoogle));
}

TEST(DataCenters, OperatorToString) {
  EXPECT_EQ(to_string(DataCenterOperator::kGoogle), "Google");
  EXPECT_EQ(to_string(DataCenterOperator::kFacebook), "Facebook");
}

TEST(DataCenters, KnownSitesPresent) {
  bool hamina = false;
  bool lulea = false;
  for (const DataCenter& d : hyperscale_datacenters()) {
    if (d.site.find("Hamina") != std::string::npos) hamina = true;
    if (d.site.find("Lulea") != std::string::npos) lulea = true;
  }
  EXPECT_TRUE(hamina);  // Google Finland (high latitude)
  EXPECT_TRUE(lulea);   // Facebook Sweden (65.6N — the most exposed site)
}

}  // namespace
}  // namespace solarnet::datasets
