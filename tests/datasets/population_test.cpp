#include "datasets/population.h"

#include <gtest/gtest.h>

#include <numeric>

namespace solarnet::datasets {
namespace {

const geo::LatLonGrid& default_grid() {
  static const geo::LatLonGrid grid = make_population_grid({});
  return grid;
}

TEST(PopulationShares, NormalizedAndShaped) {
  const auto& shares = population_latitude_shares();
  double total = 0.0;
  for (double s : shares) {
    EXPECT_GE(s, 0.0);
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PopulationShares, PeaksInNorthernSubtropics) {
  const auto& shares = population_latitude_shares();
  // The densest 5-degree band must lie in 20N..40N.
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < shares.size(); ++i) {
    if (shares[i] > shares[argmax]) argmax = i;
  }
  const double band_lo = -90.0 + 5.0 * static_cast<double>(argmax);
  EXPECT_GE(band_lo, 20.0);
  EXPECT_LT(band_lo, 40.0);
}

TEST(PopulationShares, PolesEmpty) {
  const auto& shares = population_latitude_shares();
  EXPECT_DOUBLE_EQ(shares.front(), 0.0);
  EXPECT_DOUBLE_EQ(shares.back(), 0.0);
}

TEST(PopulationGrid, TotalMatchesConfig) {
  EXPECT_NEAR(default_grid().total(), 7.8e9, 0.05e9);
}

TEST(PopulationGrid, PaperShareAbove40) {
  // The paper: only 16% of the world population lives above |40 deg|.
  EXPECT_NEAR(default_grid().fraction_above_abs_latitude(40.0), 0.16, 0.025);
}

TEST(PopulationGrid, MostPopulationInNorthernHemisphere) {
  const double north = default_grid().latitude_band_total(0.0, 90.0);
  EXPECT_GT(north / default_grid().total(), 0.80);
}

TEST(PopulationGrid, OceanMostlyEmpty) {
  // Remote-ocean cells (beyond the 2,500 km city-gravity radius) carry no
  // mass; near-coast ocean cells carry only a vanishing share.
  EXPECT_DOUBLE_EQ(default_grid().at({-40.0, -120.0}), 0.0);  // S Pacific
  EXPECT_DOUBLE_EQ(default_grid().at({-35.0, 80.0}), 0.0);    // S Indian
  EXPECT_LT(default_grid().at({0.0, -35.0}),                  // mid-Atlantic
            1e-4 * default_grid().total());
}

TEST(PopulationGrid, MajorMetrosPopulated) {
  EXPECT_GT(default_grid().at({19.0, 72.8}), 0.0);    // Mumbai
  EXPECT_GT(default_grid().at({40.7, -74.0}), 0.0);   // New York
  EXPECT_GT(default_grid().at({31.2, 121.5}), 0.0);   // Shanghai
}

TEST(PopulationGrid, ConfigurableCellSize) {
  PopulationConfig cfg;
  cfg.cell_deg = 5.0;
  cfg.total_population = 1000.0;
  const auto grid = make_population_grid(cfg);
  EXPECT_EQ(grid.rows(), 36u);
  EXPECT_NEAR(grid.total(), 1000.0, 1.0);
}

TEST(PopulationGrid, LatitudeSamplesCoverMass) {
  const auto samples = default_grid().latitude_samples();
  const double mass = std::accumulate(
      samples.begin(), samples.end(), 0.0,
      [](double acc, const auto& p) { return acc + p.second; });
  EXPECT_NEAR(mass, default_grid().total(), 1.0);
}

}  // namespace
}  // namespace solarnet::datasets
