#include "datasets/submarine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "datasets/cities.h"
#include "topology/repeater.h"
#include "util/stats.h"

namespace solarnet::datasets {
namespace {

const topo::InfrastructureNetwork& default_net() {
  static const topo::InfrastructureNetwork net = make_submarine_network({});
  return net;
}

TEST(AnchorCables, AllStopsResolveToCities) {
  for (const AnchorCable& a : anchor_cables()) {
    EXPECT_GE(a.stops.size(), 2u) << a.name;
    for (const std::string& stop : a.stops) {
      EXPECT_NO_THROW(city(stop)) << a.name << " stop " << stop;
    }
    for (const auto& [from, to] : a.branches) {
      EXPECT_NO_THROW(city(from)) << a.name;
      EXPECT_NO_THROW(city(to)) << a.name;
    }
  }
}

TEST(AnchorCables, NamesUnique) {
  std::vector<std::string> names;
  for (const AnchorCable& a : anchor_cables()) names.push_back(a.name);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(AnchorCables, IncludesPaperNamedSystems) {
  // Systems the paper references explicitly: EllaLink (6,200 km Brazil-
  // Portugal), the ~9,833 km Florida-Portugal/Spain cable, Equiano with
  // branching units, and the longest system at 39,000 km.
  bool ella = false, columbus = false, equiano = false, smw3 = false;
  for (const AnchorCable& a : anchor_cables()) {
    if (a.name == "EllaLink") {
      ella = true;
      EXPECT_NEAR(a.stated_length_km, 6200.0, 1.0);
    }
    if (a.name == "Columbus-III") {
      columbus = true;
      EXPECT_NEAR(a.stated_length_km, 9833.0, 1.0);
    }
    if (a.name == "Equiano") {
      equiano = true;
      EXPECT_FALSE(a.branches.empty());
    }
    if (a.name == "SEA-ME-WE-3") {
      smw3 = true;
      EXPECT_NEAR(a.stated_length_km, 39000.0, 1.0);
    }
  }
  EXPECT_TRUE(ella);
  EXPECT_TRUE(columbus);
  EXPECT_TRUE(equiano);
  EXPECT_TRUE(smw3);
}

TEST(SubmarineNetwork, MatchesPaperCounts) {
  const auto& net = default_net();
  // TeleGeography: 470 cables, 1241 landing points, 441 with lengths.
  EXPECT_EQ(net.cable_count(), 470u);
  EXPECT_NEAR(static_cast<double>(net.node_count()), 1241.0, 150.0);
  EXPECT_EQ(net.cable_lengths().size(), 441u);
}

TEST(SubmarineNetwork, LengthDistributionMatchesPaper) {
  auto lengths = default_net().cable_lengths();
  std::sort(lengths.begin(), lengths.end());
  // Paper: median 775 km, p99 28,000 km, max 39,000 km.
  EXPECT_NEAR(util::quantile(lengths, 0.5), 775.0, 350.0);
  EXPECT_NEAR(util::quantile(lengths, 0.99), 28000.0, 6000.0);
  EXPECT_NEAR(lengths.back(), 39000.0, 500.0);
}

TEST(SubmarineNetwork, RepeaterStatisticsMatchPaper) {
  const auto& net = default_net();
  // Paper: 82/441 cables need no repeater at 150 km; average 22.3
  // repeaters per cable.
  std::size_t norep = 0;
  std::size_t total = 0;
  for (const topo::Cable& c : net.cables()) {
    const std::size_t r = topo::cable_repeater_count(c, 150.0);
    if (r == 0) ++norep;
    total += r;
  }
  EXPECT_NEAR(static_cast<double>(norep), 82.0, 45.0);
  EXPECT_NEAR(static_cast<double>(total) /
                  static_cast<double>(net.cable_count()),
              22.3, 6.0);
}

TEST(SubmarineNetwork, LatitudeSkewMatchesPaper) {
  // Paper: 31% of submarine endpoints above |40 deg|.
  const auto lats = default_net().node_latitudes();
  std::size_t above = 0;
  for (double lat : lats) {
    if (std::abs(lat) > 40.0) ++above;
  }
  const double frac = static_cast<double>(above) /
                      static_cast<double>(lats.size());
  EXPECT_GT(frac, 0.24);
  EXPECT_LT(frac, 0.38);
}

TEST(SubmarineNetwork, DeterministicForSeed) {
  const auto n1 = make_submarine_network({});
  const auto n2 = make_submarine_network({});
  ASSERT_EQ(n1.node_count(), n2.node_count());
  ASSERT_EQ(n1.cable_count(), n2.cable_count());
  for (topo::NodeId i = 0; i < n1.node_count(); ++i) {
    EXPECT_EQ(n1.node(i).name, n2.node(i).name);
    EXPECT_DOUBLE_EQ(n1.node(i).location.lat_deg, n2.node(i).location.lat_deg);
  }
}

TEST(SubmarineNetwork, DifferentSeedsDiffer) {
  SubmarineConfig cfg;
  cfg.seed = 999;
  const auto other = make_submarine_network(cfg);
  // Same counts (calibration), different synthetic layout.
  EXPECT_EQ(other.cable_count(), default_net().cable_count());
  bool any_diff = false;
  const std::size_t n = std::min(other.node_count(), default_net().node_count());
  for (topo::NodeId i = 0; i < n && !any_diff; ++i) {
    any_diff = other.node(i).name != default_net().node(i).name ||
               other.node(i).location.lat_deg !=
                   default_net().node(i).location.lat_deg;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SubmarineNetwork, PaperNarrativeStructure) {
  const auto& net = default_net();
  // Shanghai connects only to very long cables (>= 28,000 km) — the
  // property behind "Shanghai loses all its long-distance connectivity".
  const auto shanghai = net.find_node("Shanghai");
  ASSERT_TRUE(shanghai.has_value());
  for (topo::CableId c : net.cables_at(*shanghai)) {
    EXPECT_GE(net.cable(c).total_length_km(), 27000.0)
        << net.cable(c).name;
  }
  // Singapore is a hub with many cables.
  const auto singapore = net.find_node("Singapore");
  ASSERT_TRUE(singapore.has_value());
  EXPECT_GE(net.cables_at(*singapore).size(), 6u);
}

TEST(SubmarineNetwork, AnchorsCanBeDisabled) {
  SubmarineConfig cfg;
  cfg.include_anchors = false;
  cfg.total_cables = 50;
  cfg.target_landing_points = 120;
  cfg.cables_without_length = 0;
  const auto net = make_submarine_network(cfg);
  EXPECT_EQ(net.cable_count(), 50u);
  EXPECT_FALSE(net.find_node("Shanghai").has_value() &&
               !net.cables_at(*net.find_node("Shanghai")).empty() &&
               net.cable(net.cables_at(*net.find_node("Shanghai"))[0]).name ==
                   "SEA-ME-WE-3");
}

TEST(SubmarineNetwork, ConfigurableSize) {
  SubmarineConfig cfg;
  cfg.total_cables = 150;
  cfg.target_landing_points = 400;
  cfg.cables_without_length = 5;
  const auto net = make_submarine_network(cfg);
  EXPECT_EQ(net.cable_count(), 150u);
  EXPECT_EQ(net.cable_lengths().size(), 145u);
}

TEST(SubmarineNetwork, AllCablesAreSubmarineKind) {
  for (const topo::Cable& c : default_net().cables()) {
    EXPECT_EQ(c.kind, topo::CableKind::kSubmarine);
  }
}

TEST(SubmarineNetwork, SegmentsHavePositiveLengths) {
  for (const topo::Cable& c : default_net().cables()) {
    for (const topo::CableSegment& s : c.segments) {
      EXPECT_GT(s.length_km, 0.0) << c.name;
    }
  }
}

}  // namespace
}  // namespace solarnet::datasets
