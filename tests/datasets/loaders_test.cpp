#include "datasets/loaders.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "datasets/land.h"
#include "datasets/submarine.h"
#include "util/csv.h"

namespace solarnet::datasets {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class LoadersTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string track(std::string p) {
    cleanup_.push_back(p);
    return p;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(LoadersTest, NetworkRoundTrip) {
  SubmarineConfig cfg;
  cfg.total_cables = 60;
  cfg.target_landing_points = 150;
  cfg.cables_without_length = 3;
  const auto original = make_submarine_network(cfg);

  const std::string nodes = track(temp_path("solarnet_nodes.csv"));
  const std::string cables = track(temp_path("solarnet_cables.csv"));
  write_network_csv(original, nodes, cables);
  const auto loaded = load_network_csv("submarine", nodes, cables);

  ASSERT_EQ(loaded.node_count(), original.node_count());
  ASSERT_EQ(loaded.cable_count(), original.cable_count());
  for (topo::NodeId i = 0; i < loaded.node_count(); ++i) {
    EXPECT_EQ(loaded.node(i).name, original.node(i).name);
    EXPECT_NEAR(loaded.node(i).location.lat_deg,
                original.node(i).location.lat_deg, 1e-5);
    EXPECT_EQ(loaded.node(i).country_code, original.node(i).country_code);
    EXPECT_EQ(loaded.node(i).kind, original.node(i).kind);
  }
  for (topo::CableId c = 0; c < loaded.cable_count(); ++c) {
    EXPECT_EQ(loaded.cable(c).name, original.cable(c).name);
    EXPECT_EQ(loaded.cable(c).segments.size(),
              original.cable(c).segments.size());
    EXPECT_EQ(loaded.cable(c).length_known, original.cable(c).length_known);
    EXPECT_NEAR(loaded.cable(c).total_length_km(),
                original.cable(c).total_length_km(), 0.1);
  }
}

TEST_F(LoadersTest, IntertubesRoundTripPreservesKind) {
  IntertubesConfig cfg;
  cfg.total_links = 40;
  cfg.target_nodes = 30;
  cfg.short_links = 20;
  const auto original = make_intertubes_network(cfg);
  const std::string nodes = track(temp_path("solarnet_it_nodes.csv"));
  const std::string cables = track(temp_path("solarnet_it_cables.csv"));
  write_network_csv(original, nodes, cables);
  const auto loaded = load_network_csv("intertubes", nodes, cables);
  EXPECT_EQ(loaded.cable(0).kind, topo::CableKind::kLandLongHaul);
}

TEST_F(LoadersTest, NetworkLoadRejectsUnknownNode) {
  const std::string nodes = track(temp_path("solarnet_badn.csv"));
  const std::string cables = track(temp_path("solarnet_badc.csv"));
  util::write_csv_file(
      nodes, {{"name", "lat", "lon", "country", "kind",
               "coords_authoritative"},
              {"A", "0", "0", "US", "landing-point", "1"}});
  util::write_csv_file(
      cables, {{"cable", "kind", "node_a", "node_b", "length_km",
                "length_known"},
               {"X", "submarine", "A", "GHOST", "100", "1"}});
  EXPECT_THROW(load_network_csv("bad", nodes, cables), std::runtime_error);
}

TEST_F(LoadersTest, NetworkLoadRejectsBadCoordinates) {
  const std::string cables = track(temp_path("solarnet_okc.csv"));
  util::write_csv_file(cables, {{"cable", "kind", "node_a", "node_b",
                                 "length_km", "length_known"}});
  const struct {
    const char* lat;
    const char* lon;
  } bad[] = {
      {"nan", "0"},      // NaN latitude
      {"0", "nan"},      // NaN longitude
      {"91", "0"},       // out of range (longitudes merely normalize)
      {"oops", "0"},     // not a number at all
  };
  for (const auto& b : bad) {
    const std::string nodes = track(temp_path("solarnet_badcoord.csv"));
    util::write_csv_file(
        nodes, {{"name", "lat", "lon", "country", "kind",
                 "coords_authoritative"},
                {"A", b.lat, b.lon, "US", "landing-point", "1"}});
    try {
      load_network_csv("bad", nodes, cables);
      FAIL() << "expected Error for lat=" << b.lat << " lon=" << b.lon;
    } catch (const util::Error& e) {
      // Data row is physical line 2: the diagnostic must say so.
      EXPECT_NE(std::string(e.what()).find(nodes + ":2"), std::string::npos)
          << e.what();
    }
  }
}

TEST_F(LoadersTest, NetworkLoadRejectsDuplicateNodeWithLocation) {
  const std::string nodes = track(temp_path("solarnet_dupn.csv"));
  const std::string cables = track(temp_path("solarnet_dupc.csv"));
  util::write_csv_file(
      nodes, {{"name", "lat", "lon", "country", "kind",
               "coords_authoritative"},
              {"A", "0", "0", "US", "landing-point", "1"},
              {"A", "1", "1", "US", "landing-point", "1"}});
  util::write_csv_file(cables, {{"cable", "kind", "node_a", "node_b",
                                 "length_km", "length_known"}});
  try {
    load_network_csv("bad", nodes, cables);
    FAIL() << "expected Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
    EXPECT_NE(std::string(e.what()).find(nodes + ":3"), std::string::npos)
        << e.what();
  }
}

TEST_F(LoadersTest, NetworkLoadRejectsNonConsecutiveDuplicateCable) {
  const std::string nodes = track(temp_path("solarnet_ncn.csv"));
  const std::string cables = track(temp_path("solarnet_ncc.csv"));
  util::write_csv_file(
      nodes, {{"name", "lat", "lon", "country", "kind",
               "coords_authoritative"},
              {"A", "0", "0", "US", "landing-point", "1"},
              {"B", "1", "1", "GB", "landing-point", "1"}});
  // Cable X's rows are split by cable Y: silently merging them would hide
  // a duplicate-cable data bug.
  util::write_csv_file(
      cables,
      {{"cable", "kind", "node_a", "node_b", "length_km", "length_known"},
       {"X", "submarine", "A", "B", "100", "1"},
       {"Y", "submarine", "A", "B", "200", "1"},
       {"X", "submarine", "B", "A", "300", "1"}});
  try {
    load_network_csv("bad", nodes, cables);
    FAIL() << "expected Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
    const std::string what = e.what();
    EXPECT_NE(what.find("non-consecutive"), std::string::npos);
    EXPECT_NE(what.find(cables + ":4"), std::string::npos) << what;
  }
}

TEST_F(LoadersTest, NetworkLoadRejectsBadCableLength) {
  const std::string nodes = track(temp_path("solarnet_bln.csv"));
  const std::string cables = track(temp_path("solarnet_blc.csv"));
  util::write_csv_file(
      nodes, {{"name", "lat", "lon", "country", "kind",
               "coords_authoritative"},
              {"A", "0", "0", "US", "landing-point", "1"},
              {"B", "1", "1", "GB", "landing-point", "1"}});
  for (const char* length : {"-5", "nan", "inf"}) {
    util::write_csv_file(
        cables,
        {{"cable", "kind", "node_a", "node_b", "length_km", "length_known"},
         {"X", "submarine", "A", "B", length, "1"}});
    try {
      load_network_csv("bad", nodes, cables);
      FAIL() << "expected Error for length " << length;
    } catch (const util::Error& e) {
      EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData) << length;
      EXPECT_EQ(e.context().field, "length_km") << length;
    }
  }
}

TEST_F(LoadersTest, NetworkLoadUnknownNodeErrorNamesTheNode) {
  const std::string nodes = track(temp_path("solarnet_unn.csv"));
  const std::string cables = track(temp_path("solarnet_unc.csv"));
  util::write_csv_file(
      nodes, {{"name", "lat", "lon", "country", "kind",
               "coords_authoritative"},
              {"A", "0", "0", "US", "landing-point", "1"}});
  util::write_csv_file(
      cables,
      {{"cable", "kind", "node_a", "node_b", "length_km", "length_known"},
       {"X", "submarine", "A", "GHOST", "100", "1"}});
  try {
    load_network_csv("bad", nodes, cables);
    FAIL() << "expected Error";
  } catch (const util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("GHOST"), std::string::npos);
    EXPECT_NE(what.find(cables + ":2"), std::string::npos) << what;
    EXPECT_EQ(e.context().field, "node_b");
  }
}

TEST_F(LoadersTest, RouterLoadRejectsNegativeAsId) {
  const std::string path = track(temp_path("solarnet_negasn.csv"));
  util::write_csv_file(path, {{"lat", "lon", "as_id"}, {"0", "0", "-3"}});
  try {
    load_router_csv(path);
    FAIL() << "expected Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
    EXPECT_EQ(e.context().field, "as_id");
    EXPECT_EQ(e.context().line, 2u);
  }
}

TEST_F(LoadersTest, MalformedBooleanGetsStructuredError) {
  const std::string nodes = track(temp_path("solarnet_bbn.csv"));
  const std::string cables = track(temp_path("solarnet_bbc.csv"));
  util::write_csv_file(
      nodes, {{"name", "lat", "lon", "country", "kind",
               "coords_authoritative"},
              {"A", "0", "0", "US", "landing-point", "maybe"}});
  util::write_csv_file(cables, {{"cable", "kind", "node_a", "node_b",
                                 "length_km", "length_known"}});
  try {
    load_network_csv("bad", nodes, cables);
    FAIL() << "expected Error";
  } catch (const util::Error& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::kParseError);
    EXPECT_NE(std::string(e.what()).find("maybe"), std::string::npos);
    EXPECT_EQ(e.context().field, "coords_authoritative");
  }
}

TEST_F(LoadersTest, ParseKindHelpers) {
  EXPECT_EQ(parse_node_kind("landing-point"), topo::NodeKind::kLandingPoint);
  EXPECT_EQ(parse_node_kind("dns-root"), topo::NodeKind::kDnsRoot);
  EXPECT_THROW(parse_node_kind("wat"), std::invalid_argument);
  EXPECT_EQ(parse_cable_kind("submarine"), topo::CableKind::kSubmarine);
  EXPECT_THROW(parse_cable_kind("wat"), std::invalid_argument);
}

TEST_F(LoadersTest, RouterRoundTrip) {
  RouterConfig cfg;
  cfg.router_count = 500;
  cfg.as_count = 50;
  const RouterDataset original = make_router_dataset(cfg);
  const std::string path = track(temp_path("solarnet_routers.csv"));
  write_router_csv(original, path);
  const RouterDataset loaded = load_router_csv(path);
  ASSERT_EQ(loaded.router_count(), original.router_count());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(loaded.routers()[i].location.lat_deg,
                original.routers()[i].location.lat_deg, 1e-5);
    EXPECT_EQ(loaded.routers()[i].as_id, original.routers()[i].as_id);
  }
}

TEST_F(LoadersTest, PointsRoundTrip) {
  IxpConfig cfg;
  cfg.count = 30;
  const auto original = make_ixp_dataset(cfg);
  const std::string path = track(temp_path("solarnet_points.csv"));
  write_points_csv(original, path);
  const auto loaded = load_points_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].name, original[i].name);
    EXPECT_EQ(loaded[i].country_code, original[i].country_code);
    EXPECT_NEAR(loaded[i].location.lon_deg, original[i].location.lon_deg,
                1e-5);
  }
}

TEST_F(LoadersTest, DnsRoundTrip) {
  DnsConfig cfg;
  cfg.instance_count = 40;
  const auto original = make_dns_dataset(cfg);
  const std::string path = track(temp_path("solarnet_dns.csv"));
  write_dns_csv(original, path);
  const auto loaded = load_dns_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].root_letter, original[i].root_letter);
    EXPECT_EQ(loaded[i].country_code, original[i].country_code);
  }
}

TEST_F(LoadersTest, DnsLoadRejectsBadLetter) {
  const std::string path = track(temp_path("solarnet_dns_bad.csv"));
  util::write_csv_file(path, {{"letter", "lat", "lon", "country"},
                              {"z", "0", "0", "US"}});
  EXPECT_THROW(load_dns_csv(path), std::invalid_argument);
}

}  // namespace
}  // namespace solarnet::datasets
