#include "datasets/space_weather.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "util/status.h"

namespace solarnet::datasets {
namespace {

// Parses an expected-bad document and hands back the structured error for
// inspection. Every loader rejection must carry file:line:field provenance
// (the PR 6 loader contract).
util::Error capture(std::string_view text) {
  try {
    parse_space_weather_json(text, "feed.json");
  } catch (const util::Error& e) {
    return e;
  }
  ADD_FAILURE() << "document unexpectedly parsed";
  return util::Error(util::ErrorCode::kOk, "no error");
}

TEST(SpaceWeatherTest, ParsesDonkiDocument) {
  const std::string_view doc = R"([
  {"flrID": "FLR-1", "beginTime": "2024-05-10T06:27Z", "classType": "X3.9",
   "sourceLocation": "S17W45", "link": null},
  {"activityID": "CME-1", "startTime": "2024-05-08T22:36Z", "speed": 1109,
   "instruments": [{"displayName": "SOHO"}]},
  {"gstID": "GST-1", "startTime": "2024-05-10T15:00Z",
   "allKpIndex": [
     {"observedTime": "2024-05-10T15:00Z", "kpIndex": 7, "source": "NOAA"},
     {"observedTime": "2024-05-10T18:00Z", "kpIndex": "8.67"}
   ],
   "linkedEvents": [{"activityID": "CME-1"}]}
])";
  const SpaceWeatherTimeline timeline =
      parse_space_weather_json(doc, "donki.json");
  EXPECT_EQ(timeline.source, "donki.json");
  EXPECT_EQ(timeline.start_time, "2024-05-10T15:00Z");

  ASSERT_EQ(timeline.kp.size(), 2u);
  EXPECT_EQ(timeline.kp[0].hours, 0.0);
  EXPECT_EQ(timeline.kp[0].kp, 7.0);
  EXPECT_NEAR(timeline.kp[1].hours, 3.0, 1e-9);
  EXPECT_NEAR(timeline.kp[1].kp, 8.67, 1e-12);
  EXPECT_NEAR(timeline.duration_hours(), 3.0, 1e-9);

  // Events keep file order; hours are relative to the first Kp sample, so
  // the flare and the CME that precede the geomagnetic storm go negative.
  ASSERT_EQ(timeline.events.size(), 3u);
  EXPECT_EQ(timeline.events[0].kind, SpaceWeatherEventKind::kFlare);
  EXPECT_EQ(timeline.events[0].id, "FLR-1");
  EXPECT_EQ(timeline.events[0].detail, "X3.9");
  EXPECT_NEAR(timeline.events[0].hours, -(8.0 + 33.0 / 60.0), 1e-9);
  EXPECT_EQ(timeline.events[1].kind, SpaceWeatherEventKind::kCme);
  EXPECT_EQ(timeline.events[1].id, "CME-1");
  EXPECT_EQ(timeline.events[1].detail, "1109 km/s");
  EXPECT_NEAR(timeline.events[1].hours, -(40.0 + 24.0 / 60.0), 1e-9);
  EXPECT_EQ(timeline.events[2].kind,
            SpaceWeatherEventKind::kGeomagneticStorm);
  EXPECT_EQ(timeline.events[2].hours, 0.0);
}

TEST(SpaceWeatherTest, ParsesNoaaPlanetaryKpDocument) {
  // NOAA SWPC shape: space-separated timestamps, Kp as number or numeric
  // string, "estimated_kp" as the fallback field name.
  const std::string_view doc = R"([
  {"time_tag": "2024-05-10 15:00:00", "kp_index": 7},
  {"time_tag": "2024-05-10 18:00:00", "estimated_kp": "6.33"}
])";
  const SpaceWeatherTimeline timeline =
      parse_space_weather_json(doc, "noaa.json");
  ASSERT_EQ(timeline.kp.size(), 2u);
  EXPECT_EQ(timeline.kp[0].kp, 7.0);
  EXPECT_NEAR(timeline.kp[1].kp, 6.33, 1e-12);
  EXPECT_NEAR(timeline.kp[1].hours, 3.0, 1e-9);
  EXPECT_TRUE(timeline.events.empty());
}

TEST(SpaceWeatherTest, RejectsEmptyDocument) {
  const util::Error e = capture("   \n ");
  EXPECT_EQ(e.code(), util::ErrorCode::kParseError);
  EXPECT_EQ(e.context().file, "feed.json");
  EXPECT_NE(e.status().message().find("empty document"), std::string::npos);
}

TEST(SpaceWeatherTest, RejectsTruncatedDocument) {
  const util::Error e = capture("[ {");
  EXPECT_EQ(e.code(), util::ErrorCode::kParseError);
  EXPECT_NE(e.status().message().find("unexpected end of document"),
            std::string::npos);
}

TEST(SpaceWeatherTest, RejectsUnterminatedString) {
  const util::Error e = capture("[{\"time_tag\": \"2024");
  EXPECT_EQ(e.code(), util::ErrorCode::kParseError);
  EXPECT_NE(e.status().message().find("unterminated string"),
            std::string::npos);
}

TEST(SpaceWeatherTest, RejectsUnicodeEscapes) {
  const util::Error e = capture("[{\"time_tag\": \"a\\u0041\"}]");
  EXPECT_EQ(e.code(), util::ErrorCode::kParseError);
  EXPECT_NE(e.status().message().find("unsupported escape"),
            std::string::npos);
}

TEST(SpaceWeatherTest, RejectsTrailingContent) {
  const util::Error e = capture("[] extra");
  EXPECT_EQ(e.code(), util::ErrorCode::kParseError);
  EXPECT_NE(e.status().message().find("trailing content"),
            std::string::npos);
}

TEST(SpaceWeatherTest, RejectsDocumentWithoutKpSamples) {
  // Well-formed, but only a flare — there is no Kp axis to build.
  const util::Error e = capture(
      R"([{"flrID": "F", "beginTime": "2024-05-10T06:27Z"}])");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
  EXPECT_EQ(e.context().field, "allKpIndex");
  EXPECT_NE(e.status().message().find("no Kp samples"), std::string::npos);
}

TEST(SpaceWeatherTest, RejectsUnknownRecordShape) {
  const util::Error e = capture("[\n  {\"foo\": 1}\n]");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
  EXPECT_EQ(e.context().line, 2u);  // the record's '{' line
  EXPECT_NE(e.status().message().find("unrecognized record"),
            std::string::npos);
}

TEST(SpaceWeatherTest, RejectsGstMissingStartTime) {
  const util::Error e = capture(
      R"([{"gstID": "G",
  "allKpIndex": [{"observedTime": "2024-05-10T15:00Z", "kpIndex": 5}]}])");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
  EXPECT_EQ(e.context().field, "startTime");
  EXPECT_EQ(e.context().line, 1u);
}

TEST(SpaceWeatherTest, RejectsGstMissingAllKpIndex) {
  const util::Error e =
      capture(R"([{"gstID": "G", "startTime": "2024-05-10T15:00Z"}])");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
  EXPECT_EQ(e.context().field, "allKpIndex");
}

TEST(SpaceWeatherTest, RejectsFlareMissingBeginTime) {
  const util::Error e = capture(R"([{"flrID": "F", "classType": "X1.0"}])");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
  EXPECT_EQ(e.context().field, "beginTime");
}

TEST(SpaceWeatherTest, RejectsCmeMissingStartTime) {
  const util::Error e = capture(R"([{"activityID": "C", "speed": 900}])");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
  EXPECT_EQ(e.context().field, "startTime");
}

TEST(SpaceWeatherTest, RejectsKpEntryMissingObservedTime) {
  const util::Error e = capture(
      R"([{"gstID": "G", "startTime": "2024-05-10T15:00Z",
  "allKpIndex": [{"kpIndex": 5}]}])");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
  EXPECT_EQ(e.context().field, "observedTime");
  EXPECT_EQ(e.context().line, 2u);
}

TEST(SpaceWeatherTest, RejectsKpEntryMissingKpIndex) {
  const util::Error e = capture(
      R"([{"gstID": "G", "startTime": "2024-05-10T15:00Z",
  "allKpIndex": [{"observedTime": "2024-05-10T15:00Z"}]}])");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
  EXPECT_EQ(e.context().field, "kpIndex");
}

TEST(SpaceWeatherTest, RejectsKpRecordMissingKpIndex) {
  const util::Error e = capture(R"([{"time_tag": "2024-05-10T15:00:00Z"}])");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
  EXPECT_EQ(e.context().field, "kp_index");
}

TEST(SpaceWeatherTest, RejectsKpOutsideValidRange) {
  const util::Error e = capture(
      "[\n  {\"time_tag\": \"2024-05-10T15:00Z\",\n   \"kp_index\": 9.5}\n]");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
  EXPECT_EQ(e.context().file, "feed.json");
  EXPECT_EQ(e.context().field, "kp_index");
  EXPECT_EQ(e.context().line, 3u);  // the line the value appeared on
  EXPECT_NE(e.status().message().find("Kp index outside [0, 9]"),
            std::string::npos);
  const util::Error negative = capture(
      R"([{"time_tag": "2024-05-10T15:00Z", "kp_index": -1}])");
  EXPECT_EQ(negative.code(), util::ErrorCode::kInvalidData);
}

TEST(SpaceWeatherTest, RejectsNonNumericKpString) {
  const util::Error e = capture(
      R"([{"time_tag": "2024-05-10T15:00Z", "kp_index": "abc"}])");
  EXPECT_EQ(e.code(), util::ErrorCode::kParseError);
  EXPECT_EQ(e.context().field, "kp_index");
  EXPECT_NE(e.status().message().find("not a Kp number"), std::string::npos);
}

TEST(SpaceWeatherTest, RejectsNonMonotoneTimestamps) {
  const util::Error e = capture(
      "[\n"
      "  {\"time_tag\": \"2024-05-10T15:00Z\", \"kp_index\": 5},\n"
      "  {\"time_tag\": \"2024-05-10T15:00Z\", \"kp_index\": 6}\n"
      "]");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
  EXPECT_EQ(e.context().field, "time_tag");
  EXPECT_EQ(e.context().line, 3u);  // the sample that fails to advance
  EXPECT_NE(e.status().message().find("non-monotone"), std::string::npos);
}

TEST(SpaceWeatherTest, RejectsMalformedTimestamp) {
  const util::Error e = capture(
      R"([{"time_tag": "2024-05-10", "kp_index": 5}])");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
  EXPECT_EQ(e.context().field, "time_tag");
  EXPECT_NE(e.status().message().find("malformed timestamp"),
            std::string::npos);
}

TEST(SpaceWeatherTest, RejectsTimestampOutsideCalendarRange) {
  const util::Error e = capture(
      R"([{"time_tag": "2024-13-10T15:00Z", "kp_index": 5}])");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
  EXPECT_EQ(e.context().field, "time_tag");
  EXPECT_NE(e.status().message().find("out of calendar range"),
            std::string::npos);
}

TEST(SpaceWeatherTest, LeapDayIsAValidTimestamp) {
  const std::string_view doc = R"([
  {"time_tag": "2024-02-29T00:00Z", "kp_index": 4},
  {"time_tag": "2024-03-01T00:00Z", "kp_index": 5}
])";
  const SpaceWeatherTimeline timeline =
      parse_space_weather_json(doc, "leap.json");
  ASSERT_EQ(timeline.kp.size(), 2u);
  EXPECT_NEAR(timeline.kp[1].hours, 24.0, 1e-9);
  const util::Error e = capture(
      R"([{"time_tag": "2023-02-29T00:00Z", "kp_index": 4}])");
  EXPECT_EQ(e.code(), util::ErrorCode::kInvalidData);
}

}  // namespace
}  // namespace solarnet::datasets
