#include "datasets/infra_points.h"

#include <gtest/gtest.h>

#include <set>

namespace solarnet::datasets {
namespace {

const std::vector<InfraPoint>& ixps() {
  static const std::vector<InfraPoint> v = make_ixp_dataset({});
  return v;
}

const std::vector<DnsRootInstance>& dns() {
  static const std::vector<DnsRootInstance> v = make_dns_dataset({});
  return v;
}

double fraction_above_40(const std::vector<InfraPoint>& pts) {
  std::size_t n = 0;
  for (const InfraPoint& p : pts) {
    if (p.location.abs_lat() > 40.0) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(pts.size());
}

TEST(Ixps, CountMatchesPch) {
  EXPECT_EQ(ixps().size(), 1026u);  // PCH directory size
}

TEST(Ixps, LatitudeShareMatchesPaper) {
  // Paper: 43% of IXPs above |40 deg|.
  EXPECT_NEAR(fraction_above_40(ixps()), 0.43, 0.07);
}

TEST(Ixps, ValidPoints) {
  for (const InfraPoint& p : ixps()) {
    EXPECT_TRUE(geo::is_valid(p.location));
    EXPECT_FALSE(p.name.empty());
    EXPECT_EQ(p.country_code.size(), 2u);
  }
}

TEST(Ixps, Deterministic) {
  const auto again = make_ixp_dataset({});
  ASSERT_EQ(again.size(), ixps().size());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(again[i].name, ixps()[i].name);
  }
}

TEST(Ixps, ConfigurableCount) {
  IxpConfig cfg;
  cfg.count = 100;
  EXPECT_EQ(make_ixp_dataset(cfg).size(), 100u);
}

TEST(Dns, CountMatchesRootServerDirectory) {
  EXPECT_EQ(dns().size(), 1076u);  // root-servers.org instance count
}

TEST(Dns, AllThirteenLettersPresent) {
  std::set<char> letters;
  for (const DnsRootInstance& d : dns()) {
    EXPECT_GE(d.root_letter, 'a');
    EXPECT_LE(d.root_letter, 'm');
    letters.insert(d.root_letter);
  }
  EXPECT_EQ(letters.size(), 13u);
}

TEST(Dns, EveryMajorContinentCovered) {
  std::set<geo::Continent> continents;
  for (const DnsRootInstance& d : dns()) continents.insert(d.continent);
  EXPECT_GE(continents.size(), 6u);
}

TEST(Dns, LatitudeShareMatchesPaper) {
  // Paper: 39% of DNS root instances above |40 deg|.
  std::size_t above = 0;
  for (const DnsRootInstance& d : dns()) {
    if (d.location.abs_lat() > 40.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / static_cast<double>(dns().size()),
              0.39, 0.08);
}

TEST(Dns, AfricaHasRoughlyHalfOfNorthAmerica) {
  // §4.4.3: Africa has nearly half the number of instances North America
  // has despite more Internet users.
  std::size_t africa = 0;
  std::size_t north_america = 0;
  for (const DnsRootInstance& d : dns()) {
    if (d.continent == geo::Continent::kAfrica) ++africa;
    if (d.continent == geo::Continent::kNorthAmerica) ++north_america;
  }
  EXPECT_GT(africa, 0u);
  EXPECT_LT(static_cast<double>(africa),
            0.75 * static_cast<double>(north_america));
}

TEST(Dns, ContinentSharesNormalized) {
  double total = 0.0;
  for (const auto& [cont, share] : dns_continent_shares()) {
    EXPECT_GT(share, 0.0);
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Dns, Deterministic) {
  const auto again = make_dns_dataset({});
  ASSERT_EQ(again.size(), dns().size());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(again[i].root_letter, dns()[i].root_letter);
    EXPECT_DOUBLE_EQ(again[i].location.lat_deg, dns()[i].location.lat_deg);
  }
}

}  // namespace
}  // namespace solarnet::datasets
