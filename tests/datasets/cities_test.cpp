#include "datasets/cities.h"

#include <gtest/gtest.h>

#include <set>

#include "geo/coords.h"
#include "geo/regions.h"

namespace solarnet::datasets {
namespace {

TEST(WorldCities, HasSubstantialCoverage) {
  EXPECT_GE(world_cities().size(), 200u);
}

TEST(WorldCities, AllCoordinatesValid) {
  for (const City& c : world_cities()) {
    EXPECT_TRUE(geo::is_valid(c.location)) << c.name;
    EXPECT_GT(c.population_m, 0.0) << c.name;
    EXPECT_FALSE(c.name.empty());
    EXPECT_EQ(c.country_code.size(), 2u) << c.name;
  }
}

TEST(WorldCities, NamesAreUnique) {
  std::set<std::string> names;
  for (const City& c : world_cities()) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate: " << c.name;
  }
}

TEST(WorldCities, CountryBoxesAgreeWithCityTags) {
  // For cities in countries the registry knows, the box classifier should
  // agree with the curated tag (sanity link between the two datasets).
  std::size_t checked = 0;
  std::size_t agreed = 0;
  for (const City& c : world_cities()) {
    const auto code = geo::country_code_at(c.location);
    if (!code) continue;
    ++checked;
    if (*code == c.country_code) ++agreed;
  }
  ASSERT_GT(checked, 150u);
  // Coarse boxes overlap at borders; demand 85% agreement.
  EXPECT_GT(static_cast<double>(agreed) / static_cast<double>(checked), 0.85);
}

TEST(WorldCities, EveryContinentRepresented) {
  std::set<geo::Continent> continents;
  for (const City& c : world_cities()) {
    continents.insert(geo::continent_at(c.location));
  }
  EXPECT_GE(continents.size(), 6u);
}

TEST(CoastalCities, SubsetAndNonEmpty) {
  const auto coast = coastal_cities();
  EXPECT_GE(coast.size(), 120u);
  EXPECT_LT(coast.size(), world_cities().size());
  for (const City& c : coast) EXPECT_TRUE(c.coastal);
}

TEST(CitiesInCountry, FiltersByCode) {
  const auto us = cities_in_country("US");
  EXPECT_GE(us.size(), 40u);
  for (const City& c : us) EXPECT_EQ(c.country_code, "US");
  EXPECT_TRUE(cities_in_country("XX").empty());
}

TEST(CityLookup, ByName) {
  const City& sg = city("Singapore");
  EXPECT_EQ(sg.country_code, "SG");
  EXPECT_NEAR(sg.location.lat_deg, 1.35, 0.2);
  EXPECT_THROW(city("Atlantis"), std::out_of_range);
}

TEST(CityLookup, PaperCountryCitiesExist) {
  // Cities the §4.3.4 narrative depends on.
  for (const char* name :
       {"Shanghai", "Mumbai", "Chennai", "Singapore", "Perth", "Auckland",
        "Fortaleza", "Lisbon", "Virginia Beach", "Honolulu", "Anchorage",
        "Juneau", "Prince Rupert BC", "Melkbosstrand", "Mogadishu"}) {
    EXPECT_NO_THROW(city(name)) << name;
  }
}

}  // namespace
}  // namespace solarnet::datasets
