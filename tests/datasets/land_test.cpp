#include "datasets/land.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datasets/cities.h"
#include "topology/repeater.h"

namespace solarnet::datasets {
namespace {

const topo::InfrastructureNetwork& intertubes() {
  static const topo::InfrastructureNetwork net = make_intertubes_network({});
  return net;
}

const topo::InfrastructureNetwork& itu() {
  static const topo::InfrastructureNetwork net = make_itu_network({});
  return net;
}

TEST(BackbonePairs, AllCitiesExist) {
  for (const auto& [a, b] : us_backbone_pairs()) {
    EXPECT_NO_THROW(city(a)) << a;
    EXPECT_NO_THROW(city(b)) << b;
    EXPECT_NE(a, b);
  }
  EXPECT_GE(us_backbone_pairs().size(), 60u);
}

TEST(Intertubes, MatchesPaperCounts) {
  // Intertubes: 542 links; 258 need no repeater at 150 km.
  EXPECT_EQ(intertubes().cable_count(), 542u);
  std::size_t norep = 0;
  for (const topo::Cable& c : intertubes().cables()) {
    if (topo::cable_repeater_count(c, 150.0) == 0) ++norep;
  }
  EXPECT_NEAR(static_cast<double>(norep), 258.0, 20.0);
}

TEST(Intertubes, NodeCountNearTarget) {
  EXPECT_NEAR(static_cast<double>(intertubes().node_count()), 273.0, 40.0);
}

TEST(Intertubes, AverageRepeatersMatchesPaper) {
  // Paper: 1.7 repeaters per cable at 150 km.
  std::size_t total = 0;
  for (const topo::Cable& c : intertubes().cables()) {
    total += topo::cable_repeater_count(c, 150.0);
  }
  EXPECT_NEAR(static_cast<double>(total) /
                  static_cast<double>(intertubes().cable_count()),
              1.7, 0.6);
}

TEST(Intertubes, LatitudeShareMatchesPaper) {
  // Paper: 40% of Intertubes endpoints above 40 deg N.
  const auto lats = intertubes().node_latitudes();
  std::size_t above = 0;
  for (double lat : lats) {
    if (std::abs(lat) > 40.0) ++above;
  }
  const double frac =
      static_cast<double>(above) / static_cast<double>(lats.size());
  EXPECT_GT(frac, 0.32);
  EXPECT_LT(frac, 0.48);
}

TEST(Intertubes, AllNodesInUs) {
  for (const topo::Node& n : intertubes().nodes()) {
    EXPECT_EQ(n.country_code, "US") << n.name;
    EXPECT_TRUE(n.coords_authoritative);
  }
}

TEST(Intertubes, AllCablesAreLandLongHaul) {
  for (const topo::Cable& c : intertubes().cables()) {
    EXPECT_EQ(c.kind, topo::CableKind::kLandLongHaul);
  }
}

TEST(Intertubes, Deterministic) {
  const auto n2 = make_intertubes_network({});
  ASSERT_EQ(n2.node_count(), intertubes().node_count());
  for (topo::NodeId i = 0; i < n2.node_count(); ++i) {
    EXPECT_EQ(n2.node(i).name, intertubes().node(i).name);
  }
}

TEST(Itu, MatchesPaperCounts) {
  // ITU: 11,737 links, 11,314 nodes, 8,443 under 150 km.
  EXPECT_EQ(itu().cable_count(), 11737u);
  EXPECT_NEAR(static_cast<double>(itu().node_count()), 11314.0, 60.0);
  std::size_t norep = 0;
  for (const topo::Cable& c : itu().cables()) {
    if (topo::cable_repeater_count(c, 150.0) == 0) ++norep;
  }
  EXPECT_NEAR(static_cast<double>(norep), 8443.0, 350.0);
}

TEST(Itu, AverageRepeatersMatchesPaper) {
  // Paper: 0.63 repeaters per link at 150 km.
  std::size_t total = 0;
  for (const topo::Cable& c : itu().cables()) {
    total += topo::cable_repeater_count(c, 150.0);
  }
  EXPECT_NEAR(static_cast<double>(total) /
                  static_cast<double>(itu().cable_count()),
              0.63, 0.2);
}

TEST(Itu, CoordinatesAreNonAuthoritative) {
  // The ITU map has no public coordinates; the generator mirrors that.
  EXPECT_TRUE(itu().node_latitudes().empty());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_FALSE(itu().node(static_cast<topo::NodeId>(i)).coords_authoritative);
  }
}

TEST(Itu, AllCablesAreRegionalKind) {
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(itu().cable(static_cast<topo::CableId>(i)).kind,
              topo::CableKind::kLandRegional);
  }
}

TEST(Itu, ConfigurableScale) {
  ItuConfig cfg;
  cfg.total_links = 500;
  cfg.target_nodes = 480;
  cfg.short_links = 350;
  const auto net = make_itu_network(cfg);
  EXPECT_EQ(net.cable_count(), 500u);
  EXPECT_NEAR(static_cast<double>(net.node_count()), 480.0, 40.0);
}

TEST(Itu, LinkLengthsPositiveAndBounded) {
  for (std::size_t i = 0; i < 500; ++i) {
    const double len =
        itu().cable(static_cast<topo::CableId>(i)).total_length_km();
    EXPECT_GT(len, 0.0);
    EXPECT_LT(len, 3000.0);
  }
}

}  // namespace
}  // namespace solarnet::datasets
