#include "datasets/routers.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace solarnet::datasets {
namespace {

const RouterDataset& default_ds() {
  static const RouterDataset ds = make_router_dataset({});
  return ds;
}

TEST(RouterDataset, CountsMatchConfig) {
  EXPECT_EQ(default_ds().router_count(), 200000u);
  EXPECT_EQ(default_ds().as_count(), 12000u);
}

TEST(RouterDataset, EveryAsHasAtLeastOneRouter) {
  for (const AsSummary& s : default_ds().as_summaries()) {
    EXPECT_GE(s.router_count, 1u);
  }
}

TEST(RouterDataset, SummariesConsistentWithRecords) {
  std::size_t total = 0;
  for (const AsSummary& s : default_ds().as_summaries()) {
    total += s.router_count;
    EXPECT_LE(s.min_lat, s.max_lat);
    EXPECT_GE(s.latitude_spread(), 0.0);
  }
  EXPECT_EQ(total, default_ds().router_count());
}

TEST(RouterDataset, SpreadQuantilesMatchPaper) {
  // Paper (§4.4.1): median spread 1.723 deg, p90 18.263 deg.
  const auto spreads = default_ds().as_spreads();
  EXPECT_NEAR(util::quantile_unsorted(spreads, 0.5), 1.723, 0.5);
  EXPECT_NEAR(util::quantile_unsorted(spreads, 0.9), 18.263, 4.0);
}

TEST(RouterDataset, AsPresenceMatchesPaper) {
  // Paper: 57% of ASes have a router above |40 deg|.
  EXPECT_NEAR(default_ds().as_fraction_with_presence_above(40.0), 0.57, 0.06);
}

TEST(RouterDataset, RouterShareAbove40NearPaper) {
  // Paper: 38% of routers above |40 deg|. Generator lands within a few
  // points (documented in EXPERIMENTS.md).
  EXPECT_NEAR(default_ds().router_fraction_above(40.0), 0.38, 0.08);
}

TEST(RouterDataset, ReachCurveMonotone) {
  double prev = 1.0;
  for (double t = 0.0; t <= 90.0; t += 10.0) {
    const double f = default_ds().as_fraction_with_presence_above(t);
    EXPECT_LE(f, prev + 1e-12);
    prev = f;
  }
  EXPECT_NEAR(default_ds().as_fraction_with_presence_above(90.0), 0.0, 1e-9);
}

TEST(RouterDataset, ValidCoordinates) {
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(geo::is_valid(default_ds().routers()[i].location));
  }
}

TEST(RouterDataset, Deterministic) {
  const RouterDataset d2 = make_router_dataset({});
  ASSERT_EQ(d2.router_count(), default_ds().router_count());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(d2.routers()[i].location.lat_deg,
                     default_ds().routers()[i].location.lat_deg);
    EXPECT_EQ(d2.routers()[i].as_id, default_ds().routers()[i].as_id);
  }
}

TEST(RouterDataset, ConfigurableScale) {
  RouterConfig cfg;
  cfg.router_count = 5000;
  cfg.as_count = 500;
  cfg.seed = 3;
  const RouterDataset ds = make_router_dataset(cfg);
  EXPECT_EQ(ds.router_count(), 5000u);
  EXPECT_EQ(ds.as_count(), 500u);
}

TEST(RouterDataset, RejectsBadConfig) {
  RouterConfig cfg;
  cfg.router_count = 10;
  cfg.as_count = 0;
  EXPECT_THROW(make_router_dataset(cfg), std::invalid_argument);
  cfg.as_count = 100;
  EXPECT_THROW(make_router_dataset(cfg), std::invalid_argument);
}

TEST(RouterDataset, ConstructorComputesSummaries) {
  std::vector<RouterRecord> records = {
      {{10.0, 0.0}, 0}, {{20.0, 5.0}, 0}, {{-5.0, 0.0}, 1}};
  const RouterDataset ds(std::move(records), 2);
  ASSERT_EQ(ds.as_count(), 2u);
  const AsSummary& as0 = ds.as_summaries()[0];
  EXPECT_EQ(as0.router_count, 2u);
  EXPECT_DOUBLE_EQ(as0.latitude_spread(), 10.0);
  EXPECT_DOUBLE_EQ(as0.max_abs_lat, 20.0);
  EXPECT_TRUE(as0.presence_above(15.0));
  EXPECT_FALSE(as0.presence_above(25.0));
  const AsSummary& as1 = ds.as_summaries()[1];
  EXPECT_DOUBLE_EQ(as1.latitude_spread(), 0.0);
}

TEST(RouterDataset, FractionHelpersOnSmallData) {
  std::vector<RouterRecord> records = {
      {{50.0, 0.0}, 0}, {{-50.0, 0.0}, 1}, {{0.0, 0.0}, 2}, {{10.0, 0.0}, 2}};
  const RouterDataset ds(std::move(records), 3);
  EXPECT_DOUBLE_EQ(ds.router_fraction_above(40.0), 0.5);
  EXPECT_DOUBLE_EQ(ds.as_fraction_with_presence_above(40.0), 2.0 / 3.0);
}

}  // namespace
}  // namespace solarnet::datasets
